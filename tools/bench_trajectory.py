"""Record a performance-trajectory run into a ``BENCH_<n>.json`` file.

The repo's benchmarks (``benchmarks/bench_perf_scaling.py``) measure the
solver hot paths and the batch/cluster throughput, but a bench run that
is not *recorded* cannot prove a speedup or catch a regression.  This
runner executes a selection of those benchmarks under pytest-benchmark,
lowers the result to a schema-versioned *trajectory record* -- per-bench
wall seconds, a machine fingerprint, the git revision -- and merges it
into a ``BENCH_<n>.json`` file at the repo root, one labelled run per
measurement campaign (e.g. ``before`` / ``after`` an optimization PR).

``tools/check_bench_regression.py`` consumes the same file: CI re-runs
the suite and compares fresh numbers against the committed trajectory.
See ``docs/BENCHMARKS.md`` for the full workflow.

Usage::

    python tools/bench_trajectory.py --label after            # default -k
    python tools/bench_trajectory.py --label before -k solver
    python tools/bench_trajectory.py --label ci --output /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any

#: Version of the trajectory record layout; bump on breaking changes.
TRAJECTORY_SCHEMA = 1

#: The default bench selection: the solver hot-path micro-suite, the
#: cold EXP-S1 grid (the end-to-end number the solvers feed), the
#: compile-service latency benches (whose p50/p95/p99 SLO numbers ride
#: along in ``extra_info``), and the cluster scheduling-policy benches
#: (whose trace-derived makespan/utilization ride along the same way).
DEFAULT_SELECTION = "solver or stats_grid_cold or bench_serve or sched"

#: The bench module every trajectory run executes.
BENCH_FILE = "benchmarks/bench_perf_scaling.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_fingerprint() -> dict:
    """A stable identification of the machine a run was measured on.

    Trajectory comparisons across different fingerprints are still
    possible (wall-clock ratios transfer roughly), but the gate warns,
    and regenerating the committed trajectory on the CI machine class
    is the supported way to tighten tolerances.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def git_revision(repo_root: Path = REPO_ROOT) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def run_benchmarks(selection: str,
                   repo_root: Path = REPO_ROOT,
                   bench_file: str = BENCH_FILE) -> dict:
    """Run the bench suite under pytest-benchmark, return its JSON.

    Raises ``RuntimeError`` when pytest fails or selects nothing.
    """
    env = dict(os.environ)
    src = str(repo_root / "src")
    benches = str(repo_root / "benchmarks")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, benches] + ([existing] if existing else []))

    with tempfile.TemporaryDirectory(prefix="bench-trajectory-") as tmp:
        report = Path(tmp) / "benchmark.json"
        command = [
            sys.executable, "-m", "pytest", bench_file,
            "-o", "python_files=bench_*.py",
            "-o", "python_functions=bench_*",
            "--benchmark-only", "-q", "-p", "no:cacheprovider",
            f"--benchmark-json={report}",
            "-k", selection,
        ]
        proc = subprocess.run(command, cwd=repo_root, env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0 or not report.exists():
            raise RuntimeError(
                f"benchmark run failed (exit {proc.returncode}):\n"
                f"{proc.stdout}\n{proc.stderr}")
        data = json.loads(report.read_text(encoding="utf-8"))
    if not data.get("benchmarks"):
        raise RuntimeError(
            f"selection {selection!r} matched no benchmarks")
    return data


def entries_from_pytest_benchmark(data: dict) -> dict[str, dict]:
    """Lower a pytest-benchmark JSON report to trajectory entries.

    One entry per bench, keyed by the parametrized bench name; wall
    times are seconds.  ``seconds`` (the per-round minimum) is what the
    regression gate compares -- it is the most machine-noise-resistant
    single number pytest-benchmark reports.  A bench's ``extra_info``
    (e.g. the serve SLO's p50/p95/p99 milliseconds) is carried through
    verbatim so the committed trajectory archives it.
    """
    entries: dict[str, dict] = {}
    for bench in data["benchmarks"]:
        stats = bench["stats"]
        entry = {
            "seconds": stats["min"],
            "mean_seconds": stats["mean"],
            "rounds": stats["rounds"],
        }
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        entries[bench["name"]] = entry
    return dict(sorted(entries.items()))


def build_run(label: str, entries: dict[str, dict], *,
              selection: str,
              note: str | None = None,
              repo_root: Path = REPO_ROOT) -> dict:
    """Assemble one labelled trajectory run record."""
    run = {
        "label": label,
        "created": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_rev": git_revision(repo_root),
        "selection": selection,
        "machine": machine_fingerprint(),
        "entries": entries,
    }
    if note:
        run["note"] = note
    return run


def empty_trajectory() -> dict:
    """A fresh trajectory record with no runs."""
    return {"schema": TRAJECTORY_SCHEMA,
            "suite": Path(BENCH_FILE).stem, "runs": []}


def load_trajectory(path: Path) -> dict:
    """Load and schema-check a trajectory file."""
    record = json.loads(path.read_text(encoding="utf-8"))
    schema = record.get("schema")
    if schema != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: unsupported trajectory schema {schema!r} "
            f"(this tool speaks schema {TRAJECTORY_SCHEMA})")
    if not isinstance(record.get("runs"), list):
        raise ValueError(f"{path}: malformed trajectory (no runs list)")
    return record


def save_trajectory(path: Path, record: dict) -> None:
    """Write a trajectory record as stable, diff-friendly JSON."""
    text = json.dumps(record, indent=1, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")


def upsert_run(record: dict, run: dict) -> dict:
    """Insert a run, replacing any previous run with the same label."""
    runs = [r for r in record["runs"] if r.get("label") != run["label"]]
    runs.append(run)
    record["runs"] = runs
    return record


def get_run(record: dict, label: str | None = None) -> dict:
    """Fetch a run by label (or the last run when ``label`` is None)."""
    runs = record["runs"]
    if not runs:
        raise ValueError("trajectory contains no runs")
    if label is None:
        return runs[-1]
    for run in runs:
        if run.get("label") == label:
            return run
    known = ", ".join(sorted(str(r.get("label")) for r in runs))
    raise ValueError(f"no run labelled {label!r} (have: {known})")


def default_trajectory_path(repo_root: Path = REPO_ROOT) -> Path:
    """The highest-numbered ``BENCH_<n>.json`` at the repo root.

    Falls back to ``BENCH_6.json`` (the first PR that had a committed
    trajectory) when none exists yet.
    """
    best: tuple[int, Path] | None = None
    for candidate in repo_root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", candidate.name)
        if match and (best is None or int(match.group(1)) > best[0]):
            best = (int(match.group(1)), candidate)
    return best[1] if best else repo_root / "BENCH_6.json"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="record a labelled benchmark run into the perf "
                    "trajectory (BENCH_<n>.json)")
    parser.add_argument("--label", required=True,
                        help="run label (e.g. before, after, ci)")
    parser.add_argument("-k", "--selection", default=DEFAULT_SELECTION,
                        help=f"pytest -k bench selection "
                             f"(default: {DEFAULT_SELECTION!r})")
    parser.add_argument("--output", type=Path, default=None,
                        help="trajectory file (default: the highest-"
                             "numbered BENCH_<n>.json at the repo root)")
    parser.add_argument("--fresh", action="store_true",
                        help="start a new trajectory file instead of "
                             "merging into an existing one")
    parser.add_argument("--note", default=None,
                        help="free-form annotation stored on the run")
    args = parser.parse_args(argv)

    output: Path = args.output if args.output is not None \
        else default_trajectory_path()
    print(f"running: pytest {BENCH_FILE} -k {args.selection!r} ...")
    data = run_benchmarks(args.selection)
    entries = entries_from_pytest_benchmark(data)
    run = build_run(args.label, entries, selection=args.selection,
                    note=args.note)

    if output.exists() and not args.fresh:
        record = load_trajectory(output)
    else:
        record = empty_trajectory()
    upsert_run(record, run)
    save_trajectory(output, record)

    width = max(len(name) for name in entries)
    print(f"\ntrajectory run {args.label!r} "
          f"({len(entries)} benches) -> {output}")
    for name, entry in entries.items():
        print(f"  {name:<{width}}  {entry['seconds'] * 1000:10.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
