"""Smoke-test a running ``repro-agu serve`` endpoint.

Fires one concurrent wave of compile requests at the endpoint, then
repeats the identical wave, and asserts the serving contract end to
end:

* every request in both waves succeeds;
* the repeat wave is answered entirely from cache (``cached: true``)
  with **zero additional compiles** in the server's counters;
* every repeat response is bit-identical to its first-wave answer
  (same digest, same result payload).

Exit code 0 on success, 1 with a diagnostic on any violation -- CI
runs this against a backgrounded ``repro-agu serve``.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py tcp://127.0.0.1:8743
"""

from __future__ import annotations

import argparse
import sys
import threading

#: The kernel-library rotation the smoke requests (distinct digests).
KERNELS = ("fir8", "saxpy", "energy", "vector_add", "dot_product",
           "moving_average4", "convolution8", "goertzel")


def fire_wave(client, n_requests: int) -> list:
    """``n_requests`` concurrent compile requests; returns the answers
    in request order (an Exception instance in a failed slot)."""
    answers: list = [None] * n_requests

    def request(slot: int) -> None:
        try:
            answers[slot] = client.compile(
                kernel=KERNELS[slot % len(KERNELS)], iterations=8)
        # The thread must capture, not die: the main thread turns
        # whatever happened into the process exit code.
        except Exception as error:  # noqa: BLE001
            answers[slot] = error

    threads = [threading.Thread(target=request, args=(slot,))
               for slot in range(n_requests)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    return answers


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="smoke-test a running repro-agu serve endpoint "
                    "(concurrent wave + cache-hot repeat)")
    parser.add_argument("endpoint",
                        help="the serve endpoint, e.g. "
                             "tcp://127.0.0.1:8743")
    parser.add_argument("--requests", type=int, default=16,
                        help="requests per wave (default: 16)")
    args = parser.parse_args(argv)

    from repro.batch.serving import ServeClient

    client = ServeClient(args.endpoint, timeout=300.0,
                         pool_size=8, busy_retries=10)
    if not client.ping():
        print(f"FAIL: no serve endpoint answering at {args.endpoint}")
        return 1

    first = fire_wave(client, args.requests)
    failures = [answer for answer in first
                if isinstance(answer, Exception)]
    if failures:
        print(f"FAIL: {len(failures)} first-wave request(s) failed; "
              f"first error: {failures[0]}")
        return 1
    compiled_after_first = client.server_stats()["compiled"]

    repeat = fire_wave(client, args.requests)
    stats = client.server_stats()
    for slot, (cold, warm) in enumerate(zip(first, repeat)):
        if isinstance(warm, Exception):
            print(f"FAIL: repeat request #{slot} failed: {warm}")
            return 1
        if not warm.cached:
            print(f"FAIL: repeat request #{slot} was not served from "
                  f"cache")
            return 1
        if warm.digest != cold.digest:
            print(f"FAIL: repeat request #{slot} changed digest "
                  f"({cold.digest} -> {warm.digest})")
            return 1
        if warm.result.payload() != cold.result.payload():
            print(f"FAIL: repeat request #{slot} answered a different "
                  f"result payload")
            return 1
    if stats["compiled"] != compiled_after_first:
        print(f"FAIL: the repeat wave recompiled "
              f"({compiled_after_first} -> {stats['compiled']} "
              f"compile(s))")
        return 1

    print(f"serve smoke OK: {args.requests} requests/wave, "
          f"{stats['compiled']} compiled, {stats['served_warm']} warm, "
          f"{stats['batches']} micro-batch(es), "
          f"{stats['busy_rejections']} busy-rejected; repeat wave was "
          f"100% cache-hot and bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
