#!/usr/bin/env python
"""repro-lint front door.

The framework lives in the ``tools/lint`` package; this script only
puts ``tools/`` on ``sys.path`` and dispatches, so it works from any
working directory without installation::

    python tools/run_lint.py                      # lint src tools benchmarks examples
    python tools/run_lint.py --format json        # machine-readable report
    python tools/run_lint.py --list-rules         # rule catalogue
    python tools/run_lint.py src/repro/batch      # narrow the target
    python tools/run_lint.py --select LOCK-ORDER,WIRE-PROTOCOL \\
        src/repro/batch                           # one analysis, fast

Exit codes: 0 clean, 1 findings, 2 usage errors -- including a
``--select``/``--rule`` naming an unknown rule id, which prints the
registered ids to stderr and exits 2 without scanning anything.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
suppression policy.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint.runner import main  # noqa: E402  (path bootstrap first)

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
