"""Gate the committed perf trajectory against a fresh benchmark run.

Two modes over the ``BENCH_<n>.json`` files that
``tools/bench_trajectory.py`` writes:

* **gate** (default): compare a freshly measured run against the
  committed trajectory's baseline run; any bench slower than
  ``tolerance x`` its committed wall time fails the check.  This is the
  CI regression gate: it keeps the trajectory honest without flaking on
  machine noise (the default tolerance is deliberately loose; tighten
  it once the trajectory is regenerated on the CI machine class).

* **compare** (``--compare A B``): print the per-bench speedup between
  two labelled runs of one trajectory file (e.g. ``before`` vs
  ``after``), optionally enforcing a minimum geometric-mean speedup
  over a name filter -- how this repo proves "the solver micro-suite
  got >= 3x faster" in CI rather than in prose.

See ``docs/BENCHMARKS.md`` for the workflow.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from bench_trajectory import get_run, load_trajectory

#: Default slowdown factor tolerated before the gate fails.  Generous
#: on purpose: CI machines are noisy and heterogenous; real hot-path
#: regressions are well above this.
DEFAULT_TOLERANCE = 3.0


def compare_entries(baseline: dict[str, dict], current: dict[str, dict],
                    tolerance: float,
                    require_all: bool = False) -> tuple[list[str], list[str]]:
    """Compare two entry maps; returns ``(report_lines, failures)``.

    A bench fails when ``current / baseline > tolerance``.  Benches
    missing from the current run fail only under ``require_all``;
    benches new in the current run are reported but never fail (they
    have no baseline yet).
    """
    lines: list[str] = []
    failures: list[str] = []
    names = sorted(set(baseline) | set(current))
    width = max((len(name) for name in names), default=4)
    for name in names:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            lines.append(f"  {name:<{width}}  (new bench, no baseline)")
            continue
        if cur is None:
            message = f"  {name:<{width}}  missing from current run"
            if require_all:
                failures.append(f"{name}: missing from current run")
                message += "  FAIL"
            lines.append(message)
            continue
        ratio = cur["seconds"] / base["seconds"] \
            if base["seconds"] > 0 else math.inf
        verdict = "ok"
        if ratio > tolerance:
            verdict = f"FAIL (> {tolerance:g}x)"
            failures.append(
                f"{name}: {cur['seconds'] * 1000:.3f} ms vs committed "
                f"{base['seconds'] * 1000:.3f} ms ({ratio:.2f}x)")
        lines.append(
            f"  {name:<{width}}  {base['seconds'] * 1000:10.3f} ms -> "
            f"{cur['seconds'] * 1000:10.3f} ms  {ratio:6.2f}x  {verdict}")
    return lines, failures


def speedup_report(baseline: dict[str, dict], current: dict[str, dict],
                   match: str | None = None) -> tuple[list[str], float]:
    """Per-bench speedup lines plus the geometric-mean speedup.

    ``speedup = baseline_seconds / current_seconds`` (>1 is faster).
    ``match`` filters bench names by substring before aggregating.
    """
    names = [name for name in sorted(set(baseline) & set(current))
             if match is None or match in name]
    if not names:
        raise ValueError(
            f"no common benches match {match!r} between the two runs")
    lines = []
    log_sum = 0.0
    width = max(len(name) for name in names)
    for name in names:
        speedup = baseline[name]["seconds"] / current[name]["seconds"]
        log_sum += math.log(speedup)
        lines.append(
            f"  {name:<{width}}  "
            f"{baseline[name]['seconds'] * 1000:10.3f} ms -> "
            f"{current[name]['seconds'] * 1000:10.3f} ms  "
            f"{speedup:6.2f}x")
    return lines, math.exp(log_sum / len(names))


def _warn_on_machine_mismatch(baseline_run: dict, current_run: dict) -> None:
    base, cur = baseline_run.get("machine"), current_run.get("machine")
    if base and cur and base != cur:
        print("warning: machine fingerprints differ between runs; "
              "wall-clock comparisons are approximate", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 pass, 1 fail)."""
    parser = argparse.ArgumentParser(
        description="compare benchmark trajectory runs and gate "
                    "regressions")
    parser.add_argument("--trajectory", type=Path, required=True,
                        help="the committed BENCH_<n>.json")
    parser.add_argument("--baseline-label", default=None,
                        help="baseline run label inside --trajectory "
                             "(default: the last run)")
    parser.add_argument("--current", type=Path, default=None,
                        help="trajectory file holding the fresh run to "
                             "gate (gate mode)")
    parser.add_argument("--current-label", default=None,
                        help="run label inside --current "
                             "(default: the last run)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed slowdown factor before the gate "
                             f"fails (default {DEFAULT_TOLERANCE:g})")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a committed bench is missing "
                             "from the current run")
    parser.add_argument("--compare", nargs=2, metavar=("A", "B"),
                        default=None,
                        help="compare two labelled runs of --trajectory "
                             "instead of gating")
    parser.add_argument("--match", default=None,
                        help="substring filter on bench names "
                             "(compare mode)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the geometric-mean speedup "
                             "of A -> B reaches this factor "
                             "(compare mode)")
    args = parser.parse_args(argv)

    trajectory = load_trajectory(args.trajectory)

    if args.compare is not None:
        label_a, label_b = args.compare
        run_a = get_run(trajectory, label_a)
        run_b = get_run(trajectory, label_b)
        _warn_on_machine_mismatch(run_a, run_b)
        lines, geomean = speedup_report(run_a["entries"],
                                        run_b["entries"],
                                        match=args.match)
        scope = f" (matching {args.match!r})" if args.match else ""
        print(f"speedup {label_a!r} -> {label_b!r}{scope}:")
        print("\n".join(lines))
        print(f"geometric-mean speedup: {geomean:.2f}x")
        if args.min_speedup is not None and geomean < args.min_speedup:
            print(f"FAIL: geomean {geomean:.2f}x is below the required "
                  f"{args.min_speedup:g}x", file=sys.stderr)
            return 1
        return 0

    if args.current is None:
        parser.error("gate mode needs --current (or use --compare)")
    baseline_run = get_run(trajectory, args.baseline_label)
    current_run = get_run(load_trajectory(args.current),
                          args.current_label)
    _warn_on_machine_mismatch(baseline_run, current_run)
    lines, failures = compare_entries(
        baseline_run["entries"], current_run["entries"],
        tolerance=args.tolerance, require_all=args.require_all)
    print(f"regression gate vs {args.trajectory.name} "
          f"run {baseline_run['label']!r} "
          f"(tolerance {args.tolerance:g}x):")
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} bench(es) regressed past "
              f"{args.tolerance:g}x:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: no bench regressed past the tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
