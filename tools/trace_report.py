#!/usr/bin/env python
"""Render a JSONL scheduler trace as a text or JSON report.

A standalone wrapper around :mod:`repro.batch.trace` for CI steps and
operators who have a trace artifact but not an installed package --
the same analysis the ``repro-agu trace`` subcommand runs on JSONL
input::

    PYTHONPATH=src python tools/trace_report.py TRACE.jsonl
    PYTHONPATH=src python tools/trace_report.py TRACE.jsonl --json
    PYTHONPATH=src python tools/trace_report.py TRACE.jsonl --timeline

Exit codes: 0 report rendered, 1 the trace is missing or malformed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Runnable from a bare checkout: fall back to the in-tree package when
# ``repro`` is not already importable via PYTHONPATH/site-packages.
try:
    from repro.batch.trace import TraceError, analyze_trace, read_trace
except ImportError:  # pragma: no cover - exercised only sans PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.batch.trace import TraceError, analyze_trace, read_trace


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="analyze a repro.batch.trace JSONL scheduler trace")
    parser.add_argument("trace", help="JSONL trace file (from --trace)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--top", type=int, default=5,
                        help="stragglers / critical-path jobs to list "
                             "(default 5)")
    parser.add_argument("--straggler-factor", type=float, default=2.0,
                        help="flag jobs slower than this multiple of "
                             "the median execution time (default 2.0)")
    parser.add_argument("--timeline", action="store_true",
                        help="also render the per-worker busy/idle "
                             "timeline")
    args = parser.parse_args(argv)

    try:
        report = analyze_trace(read_trace(args.trace),
                               straggler_factor=args.straggler_factor)
    except (OSError, TraceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(report.render(top=args.top))
    if args.timeline:
        print()
        print(report.render_timeline())
    return 0


if __name__ == "__main__":
    sys.exit(main())
