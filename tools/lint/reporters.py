"""Text and JSON renderers for lint results.

The text form is for humans and CI logs; the JSON form is the
machine-readable artifact CI uploads, and it *round-trips*:
:func:`parse_json_report` rebuilds the exact diagnostics
:func:`render_json` serialized, which the reporter tests pin so
downstream tooling can rely on the schema.
"""

from __future__ import annotations

import json

from lint.diagnostics import Diagnostic

#: Schema version of the JSON report; bump on breaking layout changes.
#: Schema 2 (PR 9) added ``suppressed_by_rule`` so CI artifacts show
#: which rules are being silenced, not just how often.
REPORT_SCHEMA = 2


def render_text(diagnostics: list[Diagnostic], *, n_files: int,
                n_suppressed: int) -> str:
    """The human-readable report: one ``path:line:col: RULE message``
    row per finding plus a one-line summary."""
    lines = [f"{diag.location()}: {diag.rule_id} {diag.message}"
             for diag in diagnostics]
    verdict = "clean" if not diagnostics else \
        f"{len(diagnostics)} issue(s)"
    lines.append(
        f"repro-lint: {verdict} in {n_files} file(s) "
        f"({n_suppressed} finding(s) suppressed)")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic], *, n_files: int,
                n_suppressed: int,
                suppressed_by_rule: dict[str, int] | None = None,
                ) -> str:
    """The machine-readable report (stable key order, trailing
    newline -- diff- and artifact-friendly)."""
    payload = {
        "schema": REPORT_SCHEMA,
        "tool": "repro-lint",
        "files_checked": n_files,
        "suppressed": n_suppressed,
        "suppressed_by_rule": dict(sorted(
            (suppressed_by_rule or {}).items())),
        "diagnostics": [diag.to_json() for diag in diagnostics],
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def parse_json_report(text: str) -> list[Diagnostic]:
    """Rebuild the diagnostics serialized by :func:`render_json`.

    Raises ``ValueError`` on schema mismatches -- a consumer reading a
    report written by a different tool version should fail loudly, not
    misinterpret fields.
    """
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported lint report schema {schema!r} (this reader "
            f"speaks schema {REPORT_SCHEMA})")
    return [Diagnostic.from_json(entry)
            for entry in payload["diagnostics"]]
