"""``# repro-lint: disable=RULE`` suppression-comment parsing.

Suppression grammar (comments, so :mod:`tokenize` recovers them --
``ast`` drops them):

* ``# repro-lint: disable=RULE[,RULE...][ -- justification]`` as a
  *trailing* comment suppresses the named rules on that line.
* The same comment on a line of its own suppresses the named rules on
  the next line (for lines too long to carry a trailing comment).
* ``# repro-lint: disable-file=RULE[,RULE...][ -- justification]``
  anywhere in the file suppresses the named rules for the whole file.
* ``all`` is accepted in place of a rule list and suppresses every
  rule at that scope.

The justification text after ``--`` is not parsed, but the project
suppression policy (``docs/STATIC_ANALYSIS.md``) requires it: a
suppression without a stated reason does not survive review.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Matches one suppression comment; group 1 is the scope keyword,
#: group 2 the comma-separated rule list.
_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s-]+?)(?:\s*--.*)?$")

#: Sentinel rule name suppressing every rule at the comment's scope.
ALL_RULES = "all"


def _parse_rules(text: str) -> frozenset[str]:
    return frozenset(part.strip().upper() if part.strip() != ALL_RULES
                     else ALL_RULES
                     for part in text.split(",") if part.strip())


class Suppressions:
    """The suppression state of one source file.

    Query with :meth:`is_suppressed`; build with :func:`collect`.
    """

    def __init__(self, by_line: dict[int, frozenset[str]],
                 file_wide: frozenset[str]):
        self._by_line = by_line
        self._file_wide = file_wide

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled at ``line`` (or file-wide)."""
        if ALL_RULES in self._file_wide \
                or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line, frozenset())
        return ALL_RULES in rules or rule_id in rules

    @property
    def n_directives(self) -> int:
        """How many suppression scopes this file declares (for
        reporting)."""
        return len(self._by_line) + (1 if self._file_wide else 0)


def collect(source: str) -> Suppressions:
    """Parse every suppression comment out of ``source``.

    Tokenization errors (the file will fail ``ast.parse`` anyway and
    be reported as unparsable) yield an empty suppression set rather
    than raising.
    """
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions({}, frozenset())
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = _parse_rules(match.group(2))
        if not rules:
            continue
        if match.group(1) == "disable-file":
            file_wide.update(rules)
            continue
        line = token.start[0]
        # A comment-only line shields the *next* line; a trailing
        # comment shields its own.
        standalone = token.line.strip().startswith("#")
        target = line + 1 if standalone else line
        by_line.setdefault(target, set()).update(rules)
    return Suppressions(
        {line: frozenset(rules) for line, rules in by_line.items()},
        frozenset(file_wide))
