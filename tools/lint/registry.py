"""Rule base classes and the registry the runner executes from.

A rule is a class with a unique ``rule_id``, a one-line
``description`` (what the rule forbids), and a ``rationale`` (which
architecture contract it protects -- surfaced by ``--list-rules`` and
the docs).  Register with the :func:`register` decorator; the runner
instantiates each rule once per process.

Two granularities:

* :class:`Rule` -- ``check_module(module)`` runs once per file with
  its parsed AST; the common case.
* :class:`ProjectRule` -- ``check_project(modules)`` runs once over
  every scanned file, for properties no single file can decide (the
  docstring-coverage floor).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Type

from lint.diagnostics import Diagnostic
from lint.suppressions import Suppressions


@dataclass
class Module:
    """One parsed source file, as rules see it."""

    #: Absolute filesystem path.
    path: Path
    #: Repo-relative POSIX path (what diagnostics carry).
    relpath: str
    #: The raw source text.
    source: str
    #: The parsed AST.
    tree: ast.Module
    #: Parsed ``# repro-lint:`` suppression comments.
    suppressions: Suppressions


class Rule:
    """Base class of per-module rules."""

    #: Unique identifier, UPPER-KEBAB (what suppressions name).
    rule_id: str = ""
    #: One line: what the rule forbids.
    description: str = ""
    #: Which contract the rule protects, and why it matters.
    rationale: str = ""

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        """Yield diagnostics for one parsed file."""
        raise NotImplementedError

    def diagnostic(self, module: Module, node: ast.AST,
                   message: str) -> Diagnostic:
        """A diagnostic at ``node``'s position in ``module``."""
        return Diagnostic(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message)


class ProjectRule(Rule):
    """Base class of whole-project rules (run once over all files)."""

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        """Project rules do their work in :meth:`check_project`."""
        return ()

    def check_project(self,
                      modules: Sequence[Module]) -> Iterable[Diagnostic]:
        """Yield diagnostics over the whole scanned file set."""
        raise NotImplementedError


#: The registry: rule_id -> rule instance, in registration order.
_RULES: dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id collisions
    are a programming error and fail loudly)."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, in registration order (rule modules are
    imported on first use)."""
    _load_rule_modules()
    return list(_RULES.values())


def get_rule(rule_id: str) -> Rule:
    """The registered rule named ``rule_id``."""
    _load_rule_modules()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(
            f"unknown rule {rule_id!r} (registered: {known})") from None


def _load_rule_modules() -> None:
    """Import the rules package, which registers every rule."""
    import lint.rules  # noqa: F401  (import-for-effect)
