"""repro-lint: project-native static analysis for this repository.

A dependency-free, stdlib-``ast`` linter that enforces the four
contracts of the batch substrate (see ``docs/ARCHITECTURE.md``)
*statically* instead of waiting for runtime tests to catch violations:
picklable jobs, deterministic digest inputs, lock-protected shared
state, explicit I/O encodings, no swallowed batch errors, and closed
sockets.  ``tools/run_lint.py`` is the command-line front door; CI
gates on a clean run.

Layout:

* :mod:`lint.diagnostics` -- the :class:`~lint.diagnostics.Diagnostic`
  record every rule emits (file/line/column attributed).
* :mod:`lint.suppressions` -- ``# repro-lint: disable=RULE`` comment
  parsing.
* :mod:`lint.registry` -- the rule base classes and the registry all
  rule modules register into.
* :mod:`lint.reporters` -- text and JSON renderers (the JSON form
  round-trips; CI uploads it as an artifact).
* :mod:`lint.runner` -- file collection, rule execution, suppression
  filtering, and the CLI implementation.
* :mod:`lint.rules` -- the project-specific rules themselves.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the
suppression policy, and how to add a rule.
"""

from lint.diagnostics import Diagnostic
from lint.registry import Module, ProjectRule, Rule, all_rules, get_rule
from lint.runner import LintResult, lint_paths, lint_source

__all__ = [
    "Diagnostic",
    "LintResult",
    "Module",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
]
