"""The inter-procedural project model whole-project rules build on.

Per-module rules see one AST at a time; the flagship project rules
(LOCK-ORDER, WIRE-PROTOCOL, and the inter-procedural half of
LOCK-DISCIPLINE) need to reason *across* files: which class a
``self.cache = TieredCache(...)`` attribute is, which method a
``self._serve_client(...)`` call lands in, and which locks that callee
acquires.  This module builds that shared picture once per lint run:

* **Name resolution** -- every scanned file gets a dotted module name
  (``src/repro/batch/service.py`` -> ``repro.batch.service``); its
  ``import`` / ``from ... import`` statements become a symbol table,
  and re-exports (a package ``__init__`` importing a name to publish
  it) are followed through so ``from repro.batch import RemoteCache``
  resolves to the defining class.
* **Class/method index** -- top-level classes with their methods
  (nested functions included, bound to the enclosing class so their
  ``self.*`` calls resolve), base classes for method lookup, attribute
  types learned from ``self.attr = ClassName(...)`` in ``__init__``,
  and the lock attributes (``threading.Lock`` / ``RLock`` /
  ``Condition``) with reentrancy and ``Condition(self._lock)``
  aliasing.
* **Call resolution** -- ``self.m(...)``, ``self.attr.m(...)`` (via
  the attribute's learned type), sibling nested functions, module
  functions, imported functions, and ``ClassName(...)`` constructors.
* **The lock model** (:class:`LockModel`) -- per-method acquisition
  summaries computed to a fixpoint over the call graph, then a pass
  that records every "lock B taken while lock A held" edge (directly
  or through any resolved call chain) with a witness path, plus every
  call that re-enters a held *non-reentrant* lock (a guaranteed
  self-deadlock).

Everything stays syntactic and conservative: an unresolvable call
contributes nothing, so the analyses under-approximate rather than
guess.  The model is memoized per ``modules`` list, so the rules that
share it (and :mod:`lint.wiremodel`) pay for one build per run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from lint.asthelpers import dotted_name, self_attribute
from lint.registry import Module

#: Fixpoint / recursion bounds.  Generous for this codebase (call
#: chains are 3-4 deep); they exist so a pathological fixture can
#: never hang the linter.
MAX_RESOLVE_DEPTH = 6
MAX_SUMMARY_ROUNDS = 25

#: Lock-constructor spellings, by reentrancy.  ``Condition`` is
#: handled separately: ``Condition(self._lock)`` *aliases* the given
#: lock, a bare ``Condition()`` owns a fresh RLock.
_NONREENTRANT = {"threading.Lock", "Lock"}
_REENTRANT = {"threading.RLock", "RLock"}
_CONDITION = {"threading.Condition", "Condition"}


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` and
    ``tools/`` are import roots and are stripped)."""
    parts = relpath.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if len(parts) > 1 and parts[0] in ("src", "tools"):
        parts = parts[1:]
    return ".".join(parts)


def walk_within(root: ast.AST | Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function, lambda,
    or class definitions -- the traversal every per-function analysis
    uses, so a closure's body is analyzed as its own unit, never
    double-counted in its parent's."""
    stack: list[ast.AST] = list(root) if isinstance(root, (list, tuple)) \
        else list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionUnit:
    """One analyzable function body: a method, a nested function
    (bound to the enclosing class through its closure), or a
    module-level function."""

    #: Fully qualified (``repro.batch.cluster.JobServer.lease``).
    qualname: str
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: The class whose ``self`` this body can see (via a method's
    #: ``self`` parameter or a closure over one), if any.
    cls: "ClassInfo | None" = None
    #: The enclosing function for nested defs.
    parent: "FunctionUnit | None" = None
    #: Directly nested named functions, by name.
    children: dict[str, "FunctionUnit"] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Short display name (class-qualified, module stripped)."""
        prefix = f"{self.module_name}."
        return self.qualname[len(prefix):] \
            if self.qualname.startswith(prefix) else self.qualname

    @property
    def module_name(self) -> str:
        """The dotted name of the defining module."""
        return module_name(self.module.relpath)

    def param_names(self) -> list[str]:
        """Positional parameter names, in order (``self`` included)."""
        args = self.node.args
        return [arg.arg for arg in args.posonlyargs + args.args]


@dataclass
class ClassInfo:
    """One top-level class: methods, bases, learned attribute types,
    and its lock attributes."""

    name: str
    qualname: str
    module: Module
    node: ast.ClassDef
    methods: dict[str, FunctionUnit] = field(default_factory=dict)
    #: Dotted base-class spellings (resolved through imports lazily).
    base_names: list[str] = field(default_factory=list)
    #: attr -> dotted constructor spelling from ``self.attr = X(...)``
    #: in ``__init__`` (only spellings; resolution happens on demand).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attr -> ``"lock"`` | ``"rlock"`` | ``"alias:<attr>"``.
    lock_attrs: dict[str, str] = field(default_factory=dict)

    def resolve_lock(self, attr: str) -> tuple[str, bool] | None:
        """``(canonical_attr, reentrant)`` for a lock attribute,
        following ``Condition(self._lock)`` alias chains; ``None`` when
        ``attr`` is not a lock of this class."""
        seen: set[str] = set()
        while attr not in seen:
            seen.add(attr)
            kind = self.lock_attrs.get(attr)
            if kind is None:
                return None
            if kind.startswith("alias:"):
                attr = kind[len("alias:"):]
                continue
            return attr, kind == "rlock"
        return None


@dataclass(frozen=True, order=True)
class LockKey:
    """Identity of one lock: the owning class plus the attribute."""

    cls_qualname: str
    attr: str

    @property
    def label(self) -> str:
        """``Class.attr`` for messages (module stripped)."""
        return f"{self.cls_qualname.rsplit('.', 1)[-1]}.{self.attr}"


@dataclass
class LockWitness:
    """One concrete "acquired B while holding A" observation."""

    held: LockKey
    acquired: LockKey
    module: Module
    node: ast.AST
    #: Qualified call chain from the holding method down to the
    #: acquisition (length 1 = acquired directly in the holder).
    path: tuple[str, ...]

    def describe(self) -> str:
        """Human-readable account for diagnostics."""
        chain = " -> ".join(part.rsplit(".", 2)[-2] + "." +
                            part.rsplit(".", 2)[-1]
                            if part.count(".") >= 2 else part
                            for part in self.path)
        via = f" (via {chain})" if len(self.path) > 1 else ""
        return (f"{self.module.relpath}:{getattr(self.node, 'lineno', 1)}"
                f" acquires {self.acquired.label} while holding "
                f"{self.held.label}{via}")


@dataclass
class SelfDeadlock:
    """A call chain that re-enters a held non-reentrant lock."""

    lock: LockKey
    module: Module
    node: ast.AST
    unit: FunctionUnit
    path: tuple[str, ...]


@dataclass
class LockModel:
    """The project-wide lock-acquisition facts rules consume."""

    #: (held, acquired) -> witnesses, deterministic order.
    edges: dict[tuple[LockKey, LockKey], list[LockWitness]] = \
        field(default_factory=dict)
    self_deadlocks: list[SelfDeadlock] = field(default_factory=list)
    #: Lock reentrancy by key.
    reentrant: dict[LockKey, bool] = field(default_factory=dict)

    def cycles(self) -> list[list[tuple[LockKey, LockKey]]]:
        """Every elementary lock-order cycle, as edge lists, in a
        deterministic order (the potential-deadlock report)."""
        adjacency: dict[LockKey, list[LockKey]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, []).append(acquired)
            adjacency.setdefault(acquired, [])
        for neighbors in adjacency.values():
            neighbors.sort()
        found: list[list[tuple[LockKey, LockKey]]] = []
        seen_cycles: set[tuple[LockKey, ...]] = set()
        for start in sorted(adjacency):
            path = [start]
            on_path = {start}

            def search() -> None:
                for nxt in adjacency.get(path[-1], ()):
                    if nxt == start and len(path) > 1:
                        cycle = tuple(path)
                        canon = self._canonical(cycle)
                        if canon not in seen_cycles:
                            seen_cycles.add(canon)
                            found.append(
                                [(cycle[i], cycle[(i + 1) % len(cycle)])
                                 for i in range(len(cycle))])
                    elif nxt not in on_path and nxt > start \
                            and len(path) < 8:
                        path.append(nxt)
                        on_path.add(nxt)
                        search()
                        on_path.discard(path.pop())

            search()
        return found

    @staticmethod
    def _canonical(cycle: tuple[LockKey, ...]) -> tuple[LockKey, ...]:
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]


class Project:
    """The resolved cross-module view of one lint run's file set."""

    def __init__(self, modules: Sequence[Module]):
        self.modules = list(modules)
        #: dotted name -> Module (last writer wins on collisions,
        #: which only ambiguous fixture sets can produce).
        self.modules_by_name: dict[str, Module] = {}
        #: dotted module name -> {local name -> imported target}.
        self.imports: dict[str, dict[str, str]] = {}
        #: dotted module name -> {class name -> ClassInfo}.
        self.classes: dict[str, dict[str, ClassInfo]] = {}
        #: class qualname -> ClassInfo.
        self.classes_by_qualname: dict[str, ClassInfo] = {}
        #: dotted module name -> {function name -> FunctionUnit}.
        self.functions: dict[str, dict[str, FunctionUnit]] = {}
        #: Every analyzable function body, in scan order.
        self.units: list[FunctionUnit] = []
        self._lock_model: LockModel | None = None
        for module in self.modules:
            self._index_module(module)
        for infos in self.classes.values():
            for info in infos.values():
                self._learn_class_attrs(info)

    # -- construction --------------------------------------------------
    def _index_module(self, module: Module) -> None:
        name = module_name(module.relpath)
        self.modules_by_name[name] = module
        self.imports[name] = self._collect_imports(module, name)
        self.classes.setdefault(name, {})
        self.functions.setdefault(name, {})
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(module, name, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                unit = self._make_unit(module, f"{name}.{stmt.name}",
                                       stmt, cls=None, parent=None)
                self.functions[name][stmt.name] = unit

    def _index_class(self, module: Module, modname: str,
                     cls_node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=cls_node.name,
            qualname=f"{modname}.{cls_node.name}",
            module=module, node=cls_node,
            base_names=[base_name for base in cls_node.bases
                        if (base_name := dotted_name(base)) is not None])
        self.classes[modname][cls_node.name] = info
        self.classes_by_qualname[info.qualname] = info
        for stmt in cls_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                unit = self._make_unit(
                    module, f"{info.qualname}.{stmt.name}", stmt,
                    cls=info, parent=None)
                info.methods[stmt.name] = unit

    def _make_unit(self, module: Module, qualname: str,
                   node: ast.FunctionDef | ast.AsyncFunctionDef,
                   cls: ClassInfo | None,
                   parent: FunctionUnit | None) -> FunctionUnit:
        unit = FunctionUnit(qualname=qualname, module=module, node=node,
                            cls=cls, parent=parent)
        self.units.append(unit)
        # Nested named functions become units of their own, closed
        # over the same class context (threads started from methods).
        for inner in walk_within(node):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child = self._make_unit(
                    module, f"{qualname}.<locals>.{inner.name}", inner,
                    cls=cls, parent=unit)
                unit.children[inner.name] = child
        return unit

    @staticmethod
    def _collect_imports(module: Module, modname: str) -> dict[str, str]:
        table: dict[str, str] = {}
        is_package = module.relpath.endswith("__init__.py")
        parts = modname.split(".") if modname else []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package = parts if is_package else parts[:-1]
                    package = package[:len(package) - (node.level - 1)] \
                        if node.level > 1 else package
                    base = ".".join(package + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base \
                        else alias.name
        return table

    def _learn_class_attrs(self, info: ClassInfo) -> None:
        init = info.methods.get("__init__")
        if init is None:
            return
        for node in walk_within(init.node):
            if not isinstance(node, ast.Assign) \
                    or not isinstance(node.value, ast.Call):
                continue
            spelling = dotted_name(node.value.func)
            if spelling is None:
                continue
            for target in node.targets:
                attr = self_attribute(target)
                if attr is None:
                    continue
                if spelling in _NONREENTRANT:
                    info.lock_attrs[attr] = "lock"
                elif spelling in _REENTRANT:
                    info.lock_attrs[attr] = "rlock"
                elif spelling in _CONDITION:
                    arg = node.value.args[0] if node.value.args else None
                    aliased = self_attribute(arg) if arg is not None \
                        else None
                    info.lock_attrs[attr] = f"alias:{aliased}" \
                        if aliased is not None else "rlock"
                else:
                    info.attr_types[attr] = spelling

    # -- name resolution -----------------------------------------------
    def resolve_symbol(self, modname: str, dotted: str,
                       depth: int = 0) -> object | None:
        """What ``dotted`` names inside module ``modname``: a
        :class:`ClassInfo`, a :class:`FunctionUnit`, a :class:`Module`
        (for module targets), or ``None``."""
        if not dotted or depth > MAX_RESOLVE_DEPTH:
            return None
        head, _, rest = dotted.partition(".")
        local_classes = self.classes.get(modname, {})
        local_functions = self.functions.get(modname, {})
        if not rest:
            if head in local_classes:
                return local_classes[head]
            if head in local_functions:
                return local_functions[head]
        elif head in local_classes:
            cls = local_classes[head]
            if "." not in rest:
                return cls.methods.get(rest)
            return None
        target = self.imports.get(modname, {}).get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._resolve_qualified(full, depth + 1)

    def _resolve_qualified(self, full: str,
                           depth: int) -> object | None:
        if depth > MAX_RESOLVE_DEPTH:
            return None
        # Longest known module prefix, then symbol path inside it.
        parts = full.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules_by_name:
                continue
            remainder = parts[cut:]
            if not remainder:
                return self.modules_by_name[prefix]
            return self.resolve_symbol(prefix, ".".join(remainder),
                                       depth)
        return None

    def resolve_class(self, modname: str,
                      dotted: str) -> ClassInfo | None:
        """The class ``dotted`` names inside ``modname``, if any."""
        resolved = self.resolve_symbol(modname, dotted)
        return resolved if isinstance(resolved, ClassInfo) else None

    def lookup_method(self, info: ClassInfo,
                      name: str) -> FunctionUnit | None:
        """``info``'s method ``name``, searching resolvable bases."""
        seen: set[str] = set()
        queue = [info]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base_name in current.base_names:
                base = self.resolve_class(
                    module_name(current.module.relpath), base_name)
                if base is not None:
                    queue.append(base)
        return None

    def resolve_call(self, unit: FunctionUnit,
                     call: ast.Call) -> FunctionUnit | None:
        """The :class:`FunctionUnit` a call lands in, or ``None`` when
        the target is outside the model (conservative)."""
        func = call.func
        if isinstance(func, ast.Attribute):
            # self.m(...)
            owner = self_attribute(func.value)
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "self" and unit.cls is not None:
                return self.lookup_method(unit.cls, func.attr)
            # self.attr.m(...) through the learned attribute type.
            if owner is not None and unit.cls is not None:
                spelling = unit.cls.attr_types.get(owner)
                if spelling is not None:
                    target = self.resolve_class(unit.module_name,
                                                spelling)
                    if target is not None:
                        return self.lookup_method(target, func.attr)
                return None
        name = dotted_name(func)
        if name is None:
            return None
        # A sibling/enclosing nested function by bare name.
        if "." not in name:
            scope: FunctionUnit | None = unit
            while scope is not None:
                if name in scope.children:
                    return scope.children[name]
                scope = scope.parent
        resolved = self.resolve_symbol(unit.module_name, name)
        if isinstance(resolved, FunctionUnit):
            return resolved
        if isinstance(resolved, ClassInfo):
            return resolved.methods.get("__init__")
        return None

    # -- the lock model ------------------------------------------------
    def lock_key(self, unit: FunctionUnit,
                 attr: str) -> tuple[LockKey, bool] | None:
        """``(key, reentrant)`` when ``self.<attr>`` is a lock of the
        unit's class (aliases canonicalized)."""
        if unit.cls is None:
            return None
        resolved = unit.cls.resolve_lock(attr)
        if resolved is None:
            return None
        canonical, reentrant = resolved
        return LockKey(unit.cls.qualname, canonical), reentrant

    def lock_model(self) -> LockModel:
        """Build (once) the project-wide lock model."""
        if self._lock_model is None:
            self._lock_model = _build_lock_model(self)
        return self._lock_model


def _direct_acquisitions(project: Project, unit: FunctionUnit,
                         ) -> list[tuple[LockKey, bool, ast.With,
                                         ast.AST]]:
    """Every ``with self.<lock>:`` in the unit body (not in nested
    defs): ``(key, reentrant, with_node, item_expr)``."""
    found = []
    for node in walk_within(unit.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            attr = self_attribute(item.context_expr)
            if attr is None:
                continue
            resolved = project.lock_key(unit, attr)
            if resolved is not None:
                found.append((resolved[0], resolved[1], node,
                              item.context_expr))
    return found


def _build_summaries(project: Project) -> dict[
        str, dict[LockKey, tuple[str, ...]]]:
    """Fixpoint: unit qualname -> locks it may acquire when called
    (directly or transitively), with one representative call path."""
    summaries: dict[str, dict[LockKey, tuple[str, ...]]] = {}
    reentrancy: dict[LockKey, bool] = {}
    for unit in project.units:
        table: dict[LockKey, tuple[str, ...]] = {}
        for key, reentrant, _node, _expr in _direct_acquisitions(
                project, unit):
            table.setdefault(key, (unit.qualname,))
            reentrancy[key] = reentrant
        summaries[unit.qualname] = table
    calls: dict[str, list[str]] = {}
    for unit in project.units:
        targets = []
        for node in walk_within(unit.node):
            if isinstance(node, ast.Call):
                callee = project.resolve_call(unit, node)
                if callee is not None:
                    targets.append(callee.qualname)
        calls[unit.qualname] = targets
    for _round in range(MAX_SUMMARY_ROUNDS):
        changed = False
        for unit in project.units:
            table = summaries[unit.qualname]
            for callee in calls[unit.qualname]:
                for key, path in summaries.get(callee, {}).items():
                    if key not in table:
                        table[key] = (unit.qualname,) + path
                        changed = True
        if not changed:
            break
    _build_summaries.reentrancy = reentrancy  # type: ignore[attr-defined]
    return summaries


class _HeldLockVisitor(ast.NodeVisitor):
    """Record nesting edges and held-lock re-entries for one unit."""

    def __init__(self, project: Project, unit: FunctionUnit,
                 summaries: dict[str, dict[LockKey, tuple[str, ...]]],
                 reentrancy: dict[LockKey, bool], model: LockModel):
        self._project = project
        self._unit = unit
        self._summaries = summaries
        self._reentrancy = reentrancy
        self._model = model
        self._held: list[LockKey] = []

    # Nested definitions run later, not under the current held set.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]
    visit_ClassDef = visit_FunctionDef  # type: ignore[assignment]

    def _acquire(self, key: LockKey, reentrant: bool,
                 node: ast.AST) -> None:
        self._reentrancy.setdefault(key, reentrant)
        for held in self._held:
            if held == key:
                if not reentrant:
                    self._model.self_deadlocks.append(SelfDeadlock(
                        lock=key, module=self._unit.module, node=node,
                        unit=self._unit, path=(self._unit.qualname,)))
            else:
                self._add_edge(held, key, node,
                               (self._unit.qualname,))

    def _add_edge(self, held: LockKey, acquired: LockKey,
                  node: ast.AST, path: tuple[str, ...]) -> None:
        self._model.edges.setdefault((held, acquired), []).append(
            LockWitness(held=held, acquired=acquired,
                        module=self._unit.module, node=node, path=path))

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired_here: list[LockKey] = []
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            attr = self_attribute(item.context_expr)
            resolved = self._project.lock_key(self._unit, attr) \
                if attr is not None else None
            if resolved is not None:
                key, reentrant = resolved
                self._acquire(key, reentrant, node)
                self._held.append(key)
                acquired_here.append(key)
        for statement in node.body:
            self.visit(statement)
        for _key in acquired_here:
            self._held.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            callee = self._project.resolve_call(self._unit, node)
            if callee is not None:
                summary = self._summaries.get(callee.qualname, {})
                for key, path in summary.items():
                    full_path = (self._unit.qualname,) + path
                    for held in self._held:
                        if held == key:
                            if not self._reentrancy.get(key, True):
                                self._model.self_deadlocks.append(
                                    SelfDeadlock(
                                        lock=key,
                                        module=self._unit.module,
                                        node=node, unit=self._unit,
                                        path=full_path))
                        else:
                            self._add_edge(held, key, node, full_path)
        self.generic_visit(node)


def _build_lock_model(project: Project) -> LockModel:
    model = LockModel()
    summaries = _build_summaries(project)
    reentrancy: dict[LockKey, bool] = getattr(
        _build_summaries, "reentrancy", {})
    model.reentrant = reentrancy
    for unit in project.units:
        visitor = _HeldLockVisitor(project, unit, summaries,
                                   reentrancy, model)
        for statement in unit.node.body:
            visitor.visit(statement)
    return model


#: One-slot memo: building the model twice per run (LOCK-DISCIPLINE +
#: LOCK-ORDER + WIRE-PROTOCOL share it) would only waste time.  Keyed
#: on the identity of the modules list the runner passes around.
_PROJECT_MEMO: dict[str, tuple[tuple[int, ...], Project]] = {}


def project_model(modules: Sequence[Module]) -> Project:
    """The (memoized) :class:`Project` for one lint run's modules."""
    key = tuple(id(module) for module in modules)
    cached = _PROJECT_MEMO.get("project")
    if cached is not None and cached[0] == key:
        return cached[1]
    project = Project(modules)
    _PROJECT_MEMO["project"] = (key, project)
    return project
