"""The diagnostic record every lint rule emits.

A :class:`Diagnostic` is deliberately flat and JSON-able: the reporters
(:mod:`lint.reporters`) serialize it without any translation layer, and
the JSON report round-trips back into the same dataclass, which is what
the reporter tests pin.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a file position.

    Ordering is (path, line, column, rule_id, message), which is the
    stable order reports are rendered in.
    """

    #: Repo-relative POSIX path of the offending file.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node (``ast`` convention).
    column: int
    #: The registered rule identifier (e.g. ``LOCK-DISCIPLINE``).
    rule_id: str
    #: Human-readable account of what is wrong and why it matters.
    message: str

    def location(self) -> str:
        """``path:line:column`` for text reports (clickable in most
        editors and CI log viewers)."""
        return f"{self.path}:{self.line}:{self.column}"

    def to_json(self) -> dict:
        """The plain-dict form the JSON reporter serializes."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_json` output."""
        return cls(path=str(payload["path"]),
                   line=int(payload["line"]),
                   column=int(payload["column"]),
                   rule_id=str(payload["rule_id"]),
                   message=str(payload["message"]))
