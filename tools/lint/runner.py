"""File collection, rule execution, and the repro-lint CLI.

:func:`lint_paths` is the library entry point (the front-door script
and the tests call it); :func:`main` is the CLI behind
``tools/run_lint.py``.  Exit codes: 0 clean, 1 findings, 2 usage
errors -- so CI can gate on the process status alone.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from lint import suppressions
from lint.diagnostics import Diagnostic
from lint.registry import Module, ProjectRule, Rule, all_rules, get_rule
from lint.reporters import render_json, render_text

#: The repository root (this file lives at tools/lint/runner.py).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: What a bare ``repro-lint`` invocation scans.
DEFAULT_TARGETS = ("src", "tools", "benchmarks", "examples")

#: Pseudo-rule id attached to files that do not parse.  Deliberately
#: not a registered (suppressible) rule: a syntax error must never be
#: silenced, only fixed.
PARSE_ERROR = "PARSE-ERROR"


@dataclass
class LintResult:
    """What one lint run produced."""

    #: Surviving (non-suppressed) findings, in report order.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Files scanned.
    n_files: int = 0
    #: Findings silenced by ``# repro-lint: disable`` comments.
    n_suppressed: int = 0
    #: Suppressed-finding counts by rule id (what the CI artifact
    #: surfaces so silenced rules stay visible).
    suppressed_by_rule: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Whether the run found nothing."""
        return not self.diagnostics


def _collect_files(targets: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(path for path in sorted(target.rglob("*.py"))
                         if "__pycache__" not in path.parts)
        elif target.suffix == ".py":
            files.append(target)
    # De-duplicate while keeping a stable order (overlapping targets).
    unique: dict[Path, None] = dict.fromkeys(
        path.resolve() for path in files)
    return sorted(unique)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(path: Path, *, root: Path = REPO_ROOT) -> Module:
    """Parse one file into the :class:`Module` rules consume (raises
    on unreadable/unparsable input; the lint loop catches instead)."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return Module(path=path, relpath=relpath, source=source,
                  tree=tree, suppressions=suppressions.collect(source))


def _load_module(path: Path, root: Path) -> Module | Diagnostic:
    """Parse one file; a syntax error becomes a diagnostic instead of
    aborting the run."""
    try:
        return load_module(path, root=root)
    except (OSError, SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", None) or 1
        return Diagnostic(path=_relpath(path, root), line=int(line),
                          column=0, rule_id=PARSE_ERROR,
                          message=f"file does not parse: {error}")


def _run_rules(modules: list[Module],
               rules: list[Rule]) -> list[Diagnostic]:
    raw: list[Diagnostic] = []
    module_rules = [rule for rule in rules
                    if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules
                     if isinstance(rule, ProjectRule)]
    for module in modules:
        for rule in module_rules:
            raw.extend(rule.check_module(module))
    for rule in project_rules:
        raw.extend(rule.check_project(modules))
    return raw


def _filter_suppressed(raw: list[Diagnostic],
                       modules: dict[str, Module],
                       result: LintResult) -> None:
    for diag in sorted(set(raw)):
        module = modules.get(diag.path)
        if module is not None and module.suppressions.is_suppressed(
                diag.rule_id, diag.line):
            result.n_suppressed += 1
            result.suppressed_by_rule[diag.rule_id] = \
                result.suppressed_by_rule.get(diag.rule_id, 0) + 1
            continue
        result.diagnostics.append(diag)


def lint_paths(targets: Sequence[str | Path] | None = None, *,
               rule_ids: Sequence[str] | None = None,
               root: Path = REPO_ROOT) -> LintResult:
    """Lint files/directories with the registered rules.

    ``targets`` defaults to the project's scanned surface
    (:data:`DEFAULT_TARGETS` under ``root``); ``rule_ids`` restricts
    the run to named rules (every registered rule otherwise).
    """
    resolved = [Path(target) if Path(target).is_absolute()
                else root / target
                for target in (targets or DEFAULT_TARGETS)]
    rules = [get_rule(rule_id) for rule_id in rule_ids] \
        if rule_ids else all_rules()
    result = LintResult()
    modules: list[Module] = []
    raw: list[Diagnostic] = []
    for path in _collect_files(resolved):
        loaded = _load_module(path, root)
        if isinstance(loaded, Diagnostic):
            raw.append(loaded)
            result.n_files += 1
            continue
        modules.append(loaded)
        result.n_files += 1
    raw.extend(_run_rules(modules, rules))
    _filter_suppressed(raw, {module.relpath: module
                             for module in modules}, result)
    return result


def lint_sources(sources: dict[str, str], *,
                 rule_ids: Sequence[str] | None = None) -> LintResult:
    """Lint a set of in-memory files as one project.

    ``sources`` maps claimed repo-relative paths to source text; the
    whole set is handed to project rules together, so cross-module
    fixtures (a lock cycle spanning two files, a client/server pair)
    exercise the inter-procedural analyses without touching disk.
    """
    rules = [get_rule(rule_id) for rule_id in rule_ids] \
        if rule_ids else all_rules()
    result = LintResult(n_files=len(sources))
    modules: list[Module] = []
    raw: list[Diagnostic] = []
    for relpath, source in sources.items():
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            raw.append(Diagnostic(
                path=relpath, line=int(error.lineno or 1), column=0,
                rule_id=PARSE_ERROR,
                message=f"file does not parse: {error}"))
            continue
        modules.append(Module(
            path=Path(relpath), relpath=relpath, source=source,
            tree=tree, suppressions=suppressions.collect(source)))
    raw.extend(_run_rules(modules, rules))
    _filter_suppressed(raw, {module.relpath: module
                             for module in modules}, result)
    return result


def lint_source(source: str, relpath: str = "fixture.py", *,
                rule_ids: Sequence[str] | None = None) -> LintResult:
    """Lint one in-memory snippet (the fixture-test entry point).

    ``relpath`` is the path the snippet *claims* to live at, which
    matters to path-scoped rules (e.g. the broad-except rule is
    stricter inside ``src/repro/batch/``).
    """
    return lint_sources({relpath: source}, rule_ids=rule_ids)


def _list_rules() -> str:
    lines = ["registered rules:"]
    for rule in all_rules():
        lines.append(f"  {rule.rule_id:<20} {rule.description}")
        if rule.rationale:
            lines.append(f"  {'':<20} rationale: {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """The repro-lint CLI; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-native static analysis: contract "
                    "linters for the batch substrate (see "
                    "docs/STATIC_ANALYSIS.md)")
    parser.add_argument(
        "targets", nargs="*", default=None,
        help=f"files or directories to lint (default: "
             f"{' '.join(DEFAULT_TARGETS)} under the repo root)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format written to stdout (default: text)")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write a JSON report to this file (what CI uploads "
             "as an artifact)")
    parser.add_argument(
        "--rule", dest="rules", action="append", default=None,
        metavar="RULE-ID",
        help="run only the named rule (repeatable)")
    parser.add_argument(
        "--select", dest="select", action="append", default=None,
        metavar="RULE[,RULE]",
        help="run only the named rules, comma-separated (repeatable; "
             "combines with --rule); an unknown rule id exits 2")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    rule_ids = list(args.rules or [])
    for selection in args.select or []:
        rule_ids.extend(rule_id.strip()
                        for rule_id in selection.split(",")
                        if rule_id.strip())
    try:
        result = lint_paths(args.targets or None,
                            rule_ids=rule_ids or None)
    except KeyError as error:
        print(f"repro-lint: {error.args[0]}", file=sys.stderr)
        return 2

    json_report = render_json(
        result.diagnostics, n_files=result.n_files,
        n_suppressed=result.n_suppressed,
        suppressed_by_rule=result.suppressed_by_rule)
    if args.output is not None:
        args.output.write_text(json_report, encoding="utf-8")
    if args.format == "json":
        print(json_report, end="")
    else:
        print(render_text(result.diagnostics, n_files=result.n_files,
                          n_suppressed=result.n_suppressed))
    return 0 if result.clean else 1
