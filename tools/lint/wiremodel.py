"""Static extraction of the batch layer's length-prefixed JSON
protocol.

The cache, cluster, and serving modules agree on a wire convention
only by discipline: servers dispatch on ``request.get("op")`` (and
result streams on ``event.get("event")``), clients build ``{"op":
...}`` literals and read fields off the response.  This module walks
the :class:`~lint.project.Project` model and recovers that contract as
data -- which ops have handlers and where, which request fields each
handler reads, what response shapes it can answer, every client-side
request literal with the response fields its caller consumes, and the
event-frame kinds the push streams produce and dispatch on.

Two consumers: the WIRE-PROTOCOL lint rule checks the two sides
against each other, and ``tools/gen_protocol.py`` renders the same
model as ``docs/PROTOCOL.md``.

Extraction is deliberately conservative.  Values are resolved only
through constants, local literal assignments, and
constant-conditional ``IfExp``s; a request or response whose shape
cannot be fully resolved is marked *open*, and every conformance
check that would need the missing half is skipped for it.  The
``ok``/``error`` envelope is special: the handler loops in all three
servers convert any handler exception into an ``{"ok": false,
"error": ...}`` frame (and answer unknown ops the same way), so those
two fields are considered present on every response without
appearing in each branch literal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from lint.asthelpers import call_name, constant_str, dotted_name
from lint.project import FunctionUnit, Project, walk_within

#: Dict keys that route frames: requests dispatch on ``op``, pushed
#: event frames on ``event``.
ROUTING_KEYS = ("op", "event")

#: Fields every response carries by construction (the per-connection
#: handler loops synthesize ``{"ok": false, "error": ...}`` frames for
#: handler crashes and unknown ops).
ENVELOPE_FIELDS = frozenset({"ok", "error"})

#: Recursion bound for read/response following through calls.
MAX_FOLLOW_DEPTH = 4


@dataclass
class ResponseLiteral:
    """One response shape a handler can answer."""

    keys: frozenset[str]
    #: Unresolvable keys or a non-literal response: checks that need
    #: the exact shape skip this literal (and its whole op).
    open: bool
    unit: FunctionUnit
    node: ast.AST
    #: The value expression under ``"ok"``, when literal.
    ok_value: ast.expr | None = None


@dataclass
class Handler:
    """One dispatch branch: ``if op == "<kind>":`` and what it does."""

    kind: str
    unit: FunctionUnit
    node: ast.AST
    #: Request fields read via ``request["f"]``.
    required_fields: set[str] = field(default_factory=set)
    #: Request fields read via ``request.get("f", ...)``.
    optional_fields: set[str] = field(default_factory=set)
    responses: list[ResponseLiteral] = field(default_factory=list)

    @property
    def fields_read(self) -> set[str]:
        """Every request field the handler consumes."""
        return self.required_fields | self.optional_fields


@dataclass
class RequestSite:
    """One client-side ``{"op": ...}`` (or event) literal."""

    #: Resolved op/event kinds; ``None`` when the value is dynamic.
    kinds: frozenset[str] | None
    routing_key: str
    fields: set[str]
    #: Unresolvable fields (``**something`` or computed keys).
    open_fields: bool
    unit: FunctionUnit
    node: ast.AST
    #: Fields the caller reads off the paired response (empty when no
    #: response variable could be paired to this send).
    response_reads: set[str] = field(default_factory=set)
    has_response: bool = False


@dataclass
class EventConsumer:
    """One dispatch site over ``event.get("event")``."""

    unit: FunctionUnit
    node: ast.AST
    #: kind -> fields read in that kind's branch.
    reads_by_kind: dict[str, set[str]] = field(default_factory=dict)


@dataclass
class WireModel:
    """The whole extracted protocol, both sides."""

    #: op -> handler branches (several servers may handle one op name).
    handlers: dict[str, list[Handler]] = field(default_factory=dict)
    request_sites: list[RequestSite] = field(default_factory=list)
    event_producers: list[RequestSite] = field(default_factory=list)
    event_consumers: list[EventConsumer] = field(default_factory=list)

    def response_keys(self, op: str) -> tuple[set[str], bool]:
        """Union of the response-literal keys every handler of ``op``
        can answer, and whether any literal (or the op itself) is
        open."""
        keys: set[str] = set()
        is_open = False
        literals = [lit for handler in self.handlers.get(op, ())
                    for lit in handler.responses]
        if not literals:
            return keys, True
        for literal in literals:
            keys |= literal.keys
            is_open = is_open or literal.open
        return keys, is_open

    def sender_fields(self, op: str) -> tuple[set[str], bool, int]:
        """Union of fields in-repo senders attach to ``op`` requests,
        whether any sender is open, and the sender count."""
        fields: set[str] = set()
        is_open = False
        count = 0
        for site in self.request_sites:
            if site.kinds is None:
                continue
            if op in site.kinds:
                count += 1
                fields |= site.fields
                is_open = is_open or site.open_fields
        return fields, is_open, count


# ----------------------------------------------------------------------
# Local-value resolution
# ----------------------------------------------------------------------
def _local_assigns(unit: FunctionUnit) -> tuple[
        dict[str, list[ast.expr]], dict[str, set[str]],
        dict[str, bool]]:
    """Per-unit ``name -> assigned value exprs``, ``name -> keys added
    via name["k"] = ...``, and ``name -> has a non-constant subscript
    write`` (which makes the dict shape open)."""
    assigns: dict[str, list[ast.expr]] = {}
    key_augments: dict[str, set[str]] = {}
    open_augments: dict[str, bool] = {}
    for node in walk_within(unit.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.setdefault(target.id, []).append(node.value)
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    key = constant_str(target.slice)
                    name = target.value.id
                    if key is None:
                        open_augments[name] = True
                    else:
                        key_augments.setdefault(name, set()).add(key)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            assigns.setdefault(node.target.id, []).append(node.value)
    return assigns, key_augments, open_augments


def _const_str_values(expr: ast.expr | None,
                      assigns: dict[str, list[ast.expr]],
                      depth: int = 0) -> frozenset[str] | None:
    """Every string value ``expr`` can take, resolved through
    constants, constant ``IfExp``s, and local assignments; ``None``
    when any possibility is dynamic."""
    if depth > MAX_FOLLOW_DEPTH or expr is None:
        return None
    value = constant_str(expr)
    if value is not None:
        return frozenset({value})
    if isinstance(expr, ast.IfExp):
        body = _const_str_values(expr.body, assigns, depth + 1)
        orelse = _const_str_values(expr.orelse, assigns, depth + 1)
        if body is None or orelse is None:
            return None
        return body | orelse
    if isinstance(expr, ast.Name):
        values: set[str] = set()
        candidates = assigns.get(expr.id)
        if not candidates:
            return None
        for candidate in candidates:
            resolved = _const_str_values(candidate, assigns, depth + 1)
            if resolved is None:
                return None
            values |= resolved
        return frozenset(values)
    return None


def _dict_shape(expr: ast.expr, unit_state: tuple,
                depth: int = 0) -> tuple[set[str], bool,
                                         ast.expr | None]:
    """``(keys, open, ok_value)`` for a dict-valued expression,
    resolving ``**name`` splats and ``name["k"] = ...`` augmentations
    through local literal assignments."""
    assigns, key_augments, open_augments = unit_state
    if depth > MAX_FOLLOW_DEPTH:
        return set(), True, None
    if isinstance(expr, ast.Dict):
        keys: set[str] = set()
        is_open = False
        ok_value: ast.expr | None = None
        for key, value in zip(expr.keys, expr.values):
            if key is None:  # a ** splat
                splat_keys, splat_open, _ = _dict_shape(
                    value, unit_state, depth + 1)
                keys |= splat_keys
                is_open = is_open or splat_open
                continue
            name = constant_str(key)
            if name is None:
                is_open = True
                continue
            keys.add(name)
            if name == "ok":
                ok_value = value
        return keys, is_open, ok_value
    if isinstance(expr, ast.Name):
        candidates = assigns.get(expr.id)
        if not candidates:
            return set(), True, None
        keys = set()
        is_open = bool(open_augments.get(expr.id))
        ok_value = None
        for candidate in candidates:
            if not isinstance(candidate, ast.Dict):
                return set(), True, None
            inner_keys, inner_open, inner_ok = _dict_shape(
                candidate, unit_state, depth + 1)
            keys |= inner_keys
            is_open = is_open or inner_open
            ok_value = ok_value or inner_ok
        keys |= key_augments.get(expr.id, set())
        return keys, is_open, ok_value
    return set(), True, None


# ----------------------------------------------------------------------
# Field reads
# ----------------------------------------------------------------------
def _var_reads(nodes, varname: str) -> tuple[set[str], set[str]]:
    """``(required, optional)`` fields read off ``varname``:
    ``var["f"]`` is required, ``var.get("f"[, default])`` optional."""
    required: set[str] = set()
    optional: set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == varname \
                and isinstance(node.ctx, ast.Load):
            key = constant_str(node.slice)
            if key is not None:
                required.add(key)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == varname and node.args:
            key = constant_str(node.args[0])
            if key is not None:
                optional.add(key)
    return required, optional


def _walk_statements(statements) -> list[ast.AST]:
    """All nodes under a statement list, nested defs excluded."""
    return list(walk_within(list(statements)))


def _positional_param(callee: FunctionUnit, call: ast.Call,
                      varname: str) -> str | None:
    """The callee parameter name ``varname`` lands in when passed
    positionally (bound methods have their ``self`` slot skipped)."""
    params = callee.param_names()
    offset = 1 if params and params[0] in ("self", "cls") \
        and isinstance(call.func, ast.Attribute) else 0
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and arg.id == varname:
            index = position + offset
            if index < len(params):
                return params[index]
    for keyword in call.keywords:
        if keyword.arg is not None \
                and isinstance(keyword.value, ast.Name) \
                and keyword.value.id == varname:
            return keyword.arg
    return None


def _is_send_frame(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and name.split(".")[-1] == "send_frame"


def _is_recv_frame(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and name.split(".")[-1] == "recv_frame"


class _HandlerWalker:
    """Collect one handler branch's request reads and response shapes,
    following calls that receive the request object (for reads and
    ``send_frame`` responses) and the return chain (for returned
    responses)."""

    def __init__(self, project: Project):
        self._project = project
        self._states: dict[int, tuple] = {}

    def _state(self, unit: FunctionUnit) -> tuple:
        state = self._states.get(id(unit))
        if state is None:
            state = _local_assigns(unit)
            self._states[id(unit)] = state
        return state

    def analyze(self, handler: Handler, body, reqvar: str) -> None:
        """Populate ``handler`` from its branch ``body``."""
        self._collect_reads(handler, body, handler.unit, reqvar, 0,
                            set())
        self._collect_branch_responses(handler, body, handler.unit, 0)

    def _collect_reads(self, handler: Handler, statements,
                       unit: FunctionUnit, varname: str, depth: int,
                       seen: set) -> None:
        if depth > MAX_FOLLOW_DEPTH or (id(unit), varname) in seen:
            return
        seen.add((id(unit), varname))
        nodes = _walk_statements(statements)
        required, optional = _var_reads(nodes, varname)
        handler.required_fields |= required - {handler_routing_key}
        handler.optional_fields |= optional - {handler_routing_key}
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            callee = self._project.resolve_call(unit, node)
            if callee is None:
                continue
            param = _positional_param(callee, node, varname)
            if param is None:
                continue
            self._collect_reads(handler, callee.node.body, callee,
                                param, depth + 1, seen)
            # A request-receiving callee may answer over the socket
            # itself (the submit path); its *returns* only count when
            # reached through the return chain below.
            self._collect_send_frames(handler, callee.node.body,
                                      callee, depth + 1)

    def _collect_send_frames(self, handler: Handler, statements,
                             unit: FunctionUnit, depth: int) -> None:
        if depth > MAX_FOLLOW_DEPTH:
            return
        for node in _walk_statements(statements):
            if isinstance(node, ast.Call) and _is_send_frame(node) \
                    and len(node.args) >= 2:
                self._add_response(handler, node.args[1], unit)

    def _collect_branch_responses(self, handler: Handler, statements,
                                  unit: FunctionUnit,
                                  depth: int) -> None:
        if depth > MAX_FOLLOW_DEPTH:
            return
        self._collect_send_frames(handler, statements, unit, depth)
        for node in _walk_statements(statements):
            if isinstance(node, ast.Return) and node.value is not None:
                self._follow_return(handler, node.value, unit, depth)

    def _follow_return(self, handler: Handler, expr: ast.expr,
                       unit: FunctionUnit, depth: int) -> None:
        if isinstance(expr, ast.Constant) and expr.value is None:
            return
        if isinstance(expr, ast.Call):
            callee = self._project.resolve_call(unit, expr)
            if callee is not None and depth < MAX_FOLLOW_DEPTH:
                self._collect_branch_responses(
                    handler, callee.node.body, callee, depth + 1)
                return
            handler.responses.append(ResponseLiteral(
                keys=frozenset(), open=True, unit=unit, node=expr))
            return
        self._add_response(handler, expr, unit)

    def _add_response(self, handler: Handler, expr: ast.expr,
                      unit: FunctionUnit) -> None:
        keys, is_open, ok_value = _dict_shape(expr, self._state(unit))
        handler.responses.append(ResponseLiteral(
            keys=frozenset(keys), open=is_open, unit=unit, node=expr,
            ok_value=ok_value))


#: The routing key of the handler currently being analyzed; set by
#: the extraction loop before each branch (reads of the key itself --
#: ``request.get("op")`` -- are dispatch, not payload).
handler_routing_key = "op"


# ----------------------------------------------------------------------
# Dispatcher extraction
# ----------------------------------------------------------------------
def _routing_aliases(unit: FunctionUnit) -> dict[str, tuple[str, str]]:
    """``alias -> (request_var, routing_key)`` for assignments like
    ``op = request.get("op")``."""
    aliases: dict[str, tuple[str, str]] = {}
    for node in walk_within(unit.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr == "get" \
                and isinstance(value.func.value, ast.Name) \
                and value.args:
            key = constant_str(value.args[0])
            if key in ROUTING_KEYS:
                aliases[node.targets[0].id] = (value.func.value.id, key)
    return aliases


def _match_routing_test(test: ast.expr,
                        aliases: dict[str, tuple[str, str]],
                        ) -> tuple[str, str, frozenset[str]] | None:
    """``(request_var, routing_key, kinds)`` when ``test`` compares a
    routing lookup against string constants (``==`` or ``in``)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    left = test.left
    routed: tuple[str, str] | None = None
    if isinstance(left, ast.Name):
        routed = aliases.get(left.id)
    elif isinstance(left, ast.Call) \
            and isinstance(left.func, ast.Attribute) \
            and left.func.attr == "get" \
            and isinstance(left.func.value, ast.Name) and left.args:
        key = constant_str(left.args[0])
        if key in ROUTING_KEYS:
            routed = (left.func.value.id, key)
    if routed is None:
        return None
    comparator = test.comparators[0]
    if isinstance(test.ops[0], ast.Eq):
        kind = constant_str(comparator)
        if kind is None:
            return None
        return routed[0], routed[1], frozenset({kind})
    if isinstance(test.ops[0], ast.In) \
            and isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
        kinds = {constant_str(element)
                 for element in comparator.elts}
        if None in kinds:
            return None
        return routed[0], routed[1], frozenset(kinds)  # type: ignore
    return None


def _extract_dispatch(project: Project, unit: FunctionUnit,
                      model: WireModel,
                      walker: _HandlerWalker) -> None:
    global handler_routing_key
    aliases = _routing_aliases(unit)
    consumer: EventConsumer | None = None
    for node in walk_within(unit.node):
        if not isinstance(node, ast.If):
            continue
        match = _match_routing_test(node.test, aliases)
        if match is None:
            continue
        reqvar, routing_key, kinds = match
        if routing_key == "op":
            handler_routing_key = "op"
            for kind in sorted(kinds):
                handler = Handler(kind=kind, unit=unit, node=node)
                walker.analyze(handler, node.body, reqvar)
                model.handlers.setdefault(kind, []).append(handler)
        else:
            if consumer is None:
                consumer = EventConsumer(unit=unit, node=node)
                model.event_consumers.append(consumer)
            required, optional = _var_reads(
                _walk_statements(node.body), reqvar)
            reads = (required | optional) - {"event"}
            for kind in kinds:
                consumer.reads_by_kind.setdefault(kind,
                                                  set()).update(reads)


# ----------------------------------------------------------------------
# Client-side request sites and event producers
# ----------------------------------------------------------------------
def _find_respvar(unit: FunctionUnit, literal: ast.Dict,
                  nodes: list[ast.AST],
                  assigns: dict[str, list[ast.expr]]) -> str | None:
    """The variable the response to this request literal lands in, if
    the pairing is recognizable."""
    # Direct: response = self._request({...})  /  via a var holding
    # the literal: response = self._request(request)
    literal_names = {name for name, values in assigns.items()
                     if any(value is literal for value in values)}
    for node in nodes:
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Call) \
                or len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            continue
        call = node.value
        if _is_recv_frame(call):
            continue
        for arg in call.args + [kw.value for kw in call.keywords]:
            if arg is literal or (isinstance(arg, ast.Name)
                                  and arg.id in literal_names):
                return node.targets[0].id
    # Framed: send_frame(sock, {...}) ... resp = recv_frame(sock)
    send_sock: str | None = None
    for node in nodes:
        if isinstance(node, ast.Call) and _is_send_frame(node) \
                and len(node.args) >= 2:
            target = node.args[1]
            if target is literal or (isinstance(target, ast.Name)
                                     and target.id in literal_names):
                send_sock = ast.dump(node.args[0])
    if send_sock is None:
        return None
    for node in nodes:
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call) \
                and _is_recv_frame(node.value) \
                and node.value.args \
                and ast.dump(node.value.args[0]) == send_sock \
                and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            return node.targets[0].id
    return None


def _collect_respvar_reads(project: Project, unit: FunctionUnit,
                           nodes: list[ast.AST],
                           respvar: str) -> set[str]:
    required, optional = _var_reads(nodes, respvar)
    reads = required | optional
    # One level into helpers the response is handed to (the
    # RemoteCache._accepted pattern).
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        callee = project.resolve_call(unit, node)
        if callee is None:
            continue
        param = _positional_param(callee, node, respvar)
        if param is None:
            continue
        inner_required, inner_optional = _var_reads(
            list(walk_within(callee.node)), param)
        reads |= inner_required | inner_optional
    return reads


def _extract_sites(project: Project, unit: FunctionUnit,
                   model: WireModel) -> None:
    state = _local_assigns(unit)
    assigns, key_augments, open_augments = state
    nodes = list(walk_within(unit.node))
    for node in nodes:
        if not isinstance(node, ast.Dict):
            continue
        literal_keys = {constant_str(key) for key in node.keys
                        if key is not None}
        routing_key = next((key for key in ROUTING_KEYS
                            if key in literal_keys), None)
        if routing_key is None:
            continue
        value = next(value for key, value
                     in zip(node.keys, node.values)
                     if constant_str(key) == routing_key)
        kinds = _const_str_values(value, assigns)
        keys, is_open, _ok = _dict_shape(node, state)
        # Augmentations through the variable the literal was assigned
        # to (request["source"] = ... after request = {...}).
        for name, values in assigns.items():
            if any(candidate is node for candidate in values):
                keys |= key_augments.get(name, set())
                is_open = is_open or bool(open_augments.get(name))
        site = RequestSite(kinds=kinds, routing_key=routing_key,
                           fields=keys - {routing_key},
                           open_fields=is_open, unit=unit, node=node)
        if routing_key == "event":
            model.event_producers.append(site)
            continue
        respvar = _find_respvar(unit, node, nodes, assigns)
        if respvar is not None:
            site.has_response = True
            site.response_reads = _collect_respvar_reads(
                project, unit, nodes, respvar)
        model.request_sites.append(site)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_wire_model(project: Project) -> WireModel:
    """Extract (once per project) the protocol model both the
    WIRE-PROTOCOL rule and the PROTOCOL.md generator consume."""
    cached = getattr(project, "_wire_model", None)
    if cached is not None:
        return cached
    model = WireModel()
    walker = _HandlerWalker(project)
    for unit in project.units:
        _extract_dispatch(project, unit, model, walker)
        _extract_sites(project, unit, model)
    project._wire_model = model  # type: ignore[attr-defined]
    return model
