"""WIRE-PROTOCOL: clients and servers must agree on the frame schema.

Contract: the cache, cluster, and serving services speak one framing
(:func:`~repro.batch.service.send_frame` length-prefixed JSON), but
the *schema* -- which ops exist, which fields a request carries, what
a response looks like -- lives only in code, split across server
dispatch branches and client literals in different modules.  A client
sending an op no server handles, a handler reading a field no client
sends, or a response branch missing the ``ok`` envelope are all bugs
the type system cannot see and the runtime tests only catch when the
exact path is exercised.

This rule extracts both sides statically (:mod:`lint.wiremodel`, the
same model ``tools/gen_protocol.py`` renders as ``docs/PROTOCOL.md``)
and cross-checks them:

* every ``{"op": ...}`` a client sends has a server dispatch branch;
* every request field a handler reads is attached by at least one
  in-repo sender of that op (skipped for ops with no in-repo sender
  -- diagnostic probes -- or with senders whose shape is dynamic);
* every response field a client reads appears in some handler
  response literal for that op, the ``ok``/``error`` envelope
  excepted (the handler loops synthesize error frames for crashes
  and unknown ops, so those two fields are always live);
* handler response literals carry ``ok``, and a literal ``"ok":
  False`` also carries ``error`` (the shape every client's rejection
  path formats);
* pushed ``{"event": ...}`` frames: every kind a consumer dispatches
  on is produced, every produced kind is consumed somewhere, and
  per-kind consumer reads are fields some producer of that kind
  sends.

Unresolvable shapes (dynamic op names, ``**``-spread responses)
disable only the checks that need them -- the rule under-approximates
rather than guesses.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from lint.diagnostics import Diagnostic
from lint.project import project_model
from lint.registry import Module, ProjectRule, register
from lint.wiremodel import ENVELOPE_FIELDS, WireModel, build_wire_model


@register
class WireProtocolRule(ProjectRule):
    """Cross-check client request literals against server dispatch."""

    rule_id = "WIRE-PROTOCOL"
    description = ("client `{\"op\": ...}` literals, server dispatch "
                   "branches, response shapes, and event frames must "
                   "agree across modules")
    rationale = ("the frame schema exists only as convention between "
                 "service modules; a missing handler or misspelled "
                 "field fails at runtime on exactly the path the "
                 "tests did not exercise")

    def check_project(self,
                      modules: Sequence[Module]) -> Iterable[Diagnostic]:
        model = build_wire_model(project_model(modules))
        yield from self._check_unhandled_ops(model)
        yield from self._check_handler_reads(model)
        yield from self._check_response_reads(model)
        yield from self._check_ok_shape(model)
        yield from self._check_events(model)

    # -- requests ------------------------------------------------------
    def _check_unhandled_ops(self,
                             model: WireModel) -> Iterator[Diagnostic]:
        if not model.handlers:
            return  # no server side in scope; nothing to check against
        for site in model.request_sites:
            if site.kinds is None:
                continue
            for op in sorted(site.kinds):
                if op not in model.handlers:
                    known = ", ".join(sorted(model.handlers))
                    yield self.diagnostic(
                        site.unit.module, site.node,
                        f"{site.unit.label} sends op {op!r} but no "
                        f"server dispatch branch handles it (handled "
                        f"ops: {known}); the server will answer an "
                        f"unknown-op error frame")

    def _check_handler_reads(self,
                             model: WireModel) -> Iterator[Diagnostic]:
        for op, handlers in sorted(model.handlers.items()):
            sent, is_open, n_senders = model.sender_fields(op)
            if n_senders == 0 or is_open:
                continue
            for handler in handlers:
                for field in sorted(handler.fields_read - sent):
                    yield self.diagnostic(
                        handler.unit.module, handler.node,
                        f"{handler.unit.label} handles op {op!r} and "
                        f"reads request field {field!r}, but no "
                        f"in-repo sender of {op!r} attaches it (sent "
                        f"fields: {', '.join(sorted(sent)) or 'none'})")

    # -- responses -----------------------------------------------------
    def _check_response_reads(self,
                              model: WireModel) -> Iterator[Diagnostic]:
        for site in model.request_sites:
            if site.kinds is None or not site.has_response:
                continue
            answered: set[str] = set()
            checkable = True
            for op in site.kinds:
                keys, is_open = model.response_keys(op)
                if is_open:
                    checkable = False
                    break
                answered |= keys
            if not checkable:
                continue
            unmet = site.response_reads - answered - ENVELOPE_FIELDS
            for field in sorted(unmet):
                yield self.diagnostic(
                    site.unit.module, site.node,
                    f"{site.unit.label} reads response field "
                    f"{field!r} of op "
                    f"{'/'.join(sorted(site.kinds))}, but no handler "
                    f"response literal carries it (answered fields: "
                    f"{', '.join(sorted(answered | ENVELOPE_FIELDS))})")

    def _check_ok_shape(self,
                        model: WireModel) -> Iterator[Diagnostic]:
        for op, handlers in sorted(model.handlers.items()):
            for handler in handlers:
                for literal in handler.responses:
                    if literal.open:
                        continue
                    if "ok" not in literal.keys:
                        yield self.diagnostic(
                            literal.unit.module, literal.node,
                            f"response literal for op {op!r} in "
                            f"{literal.unit.label} has no 'ok' field; "
                            f"every response must carry the "
                            f"ok/error envelope")
                        continue
                    ok = literal.ok_value
                    if isinstance(ok, ast.Constant) \
                            and ok.value is False \
                            and "error" not in literal.keys:
                        yield self.diagnostic(
                            literal.unit.module, literal.node,
                            f"'ok': False response for op {op!r} in "
                            f"{literal.unit.label} carries no "
                            f"'error' field; rejection frames must "
                            f"say why")

    # -- event frames --------------------------------------------------
    def _check_events(self, model: WireModel) -> Iterator[Diagnostic]:
        if not model.event_consumers:
            return
        produced: set[str] = set()
        any_open_kinds = False
        fields_by_kind: dict[str, set[str]] = {}
        open_by_kind: dict[str, bool] = {}
        for producer in model.event_producers:
            if producer.kinds is None:
                any_open_kinds = True
                continue
            for kind in producer.kinds:
                produced.add(kind)
                fields_by_kind.setdefault(kind, set()).update(
                    producer.fields)
                open_by_kind[kind] = open_by_kind.get(kind, False) \
                    or producer.open_fields
        consumed: set[str] = set()
        for consumer in model.event_consumers:
            consumed |= set(consumer.reads_by_kind)
        if not any_open_kinds:
            for consumer in model.event_consumers:
                for kind in sorted(set(consumer.reads_by_kind)
                                   - produced):
                    yield self.diagnostic(
                        consumer.unit.module, consumer.node,
                        f"{consumer.unit.label} dispatches on event "
                        f"kind {kind!r}, which no producer emits "
                        f"(produced: "
                        f"{', '.join(sorted(produced)) or 'none'})")
        for producer in model.event_producers:
            if producer.kinds is None:
                continue
            for kind in sorted(set(producer.kinds) - consumed):
                yield self.diagnostic(
                    producer.unit.module, producer.node,
                    f"{producer.unit.label} emits event kind "
                    f"{kind!r}, which no consumer dispatches on "
                    f"(consumed: "
                    f"{', '.join(sorted(consumed)) or 'none'})")
        for consumer in model.event_consumers:
            for kind, reads in sorted(consumer.reads_by_kind.items()):
                if kind not in fields_by_kind \
                        or open_by_kind.get(kind):
                    continue
                sent = fields_by_kind[kind]
                for field in sorted(reads - sent):
                    yield self.diagnostic(
                        consumer.unit.module, consumer.node,
                        f"{consumer.unit.label} reads field "
                        f"{field!r} of event kind {kind!r}, but no "
                        f"producer of that kind sends it (sent: "
                        f"{', '.join(sorted(sent)) or 'none'})")
