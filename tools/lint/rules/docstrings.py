"""DOCSTRING-PUBLIC: the docstring-coverage gate, as a lint rule.

This folds ``tools/check_docstrings.py`` (the repo's dependency-free
stand-in for ``interrogate``) into the lint framework; that script is
now a thin shim over this module.  Two enforcement tiers, unchanged:

* every public name in the strict packages (:data:`STRICT_PACKAGES` --
  the ``repro`` API surface, ``repro.batch.*``, ``repro.cli.*``) must
  have a docstring: one diagnostic per missing name, at its ``def`` /
  ``class`` line, so they are individually suppressible;
* whole-tree coverage must stay at or above :data:`FAIL_UNDER`
  percent: one project-level diagnostic, attributed to the package
  root, since no single file owns the floor.

Only files under ``src/repro`` participate; tools, benchmarks, and
tests keep their own conventions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from lint.diagnostics import Diagnostic
from lint.registry import Module, ProjectRule, register

#: Module prefixes that must sit at 100 % public docstring coverage.
STRICT_PACKAGES = ("repro", "repro.batch", "repro.cli")

#: Whole-tree floor, percent.  Raise when coverage improves; never
#: lower it.
FAIL_UNDER = 99.0

#: Only this subtree participates in the coverage count.
_SOURCE_PREFIX = "src/repro/"


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path under ``src/``."""
    parts = list(relpath.split("/"))
    if parts[0] == "src":
        parts = parts[1:]
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def is_public(name: str) -> bool:
    """Public per the gate: no leading underscore (``__init__`` is
    covered by its class docstring and handled separately)."""
    return not name.startswith("_") or name == "__init__"


def is_trivial_body(node: ast.AST) -> bool:
    """Protocol/overload members whose body is just ``...`` (possibly
    after a docstring-less signature) document themselves elsewhere."""
    body = getattr(node, "body", [])
    return len(body) == 1 and isinstance(body[0], ast.Expr) \
        and isinstance(body[0].value, ast.Constant) \
        and body[0].value.value is Ellipsis


def has_overload_decorator(node: ast.AST) -> bool:
    """Whether a def carries ``@overload`` (plain or attribute form)."""
    for decorator in getattr(node, "decorator_list", []):
        name = decorator.id if isinstance(decorator, ast.Name) else \
            decorator.attr if isinstance(decorator, ast.Attribute) \
            else None
        if name == "overload":
            return True
    return False


def audit_tree(name: str,
               tree: ast.Module) -> tuple[list[str],
                                          list[tuple[str, ast.AST]]]:
    """``(documented, missing)`` public names for one parsed module;
    missing entries carry the node for line attribution."""
    documented: list[str] = []
    missing: list[tuple[str, ast.AST]] = []

    def record(qualified: str, node: ast.AST) -> None:
        if ast.get_docstring(node):
            documented.append(qualified)
        else:
            missing.append((qualified, node))

    record(name, tree)

    def walk(scope: str, body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not is_public(node.name):
                    continue
                qualified = f"{scope}.{node.name}"
                record(qualified, node)
                walk(qualified, node.body)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                if not is_public(node.name):
                    continue
                if node.name == "__init__":
                    # The class docstring documents construction.
                    continue
                if has_overload_decorator(node) \
                        or is_trivial_body(node):
                    continue
                record(f"{scope}.{node.name}", node)

    walk(name, tree.body)
    return documented, missing


def in_strict_packages(module: str) -> bool:
    """Whether ``module`` (dotted) falls under the 100 %-coverage
    set."""
    package = module.rsplit(".", 1)[0] if "." in module else module
    return module in STRICT_PACKAGES or package in STRICT_PACKAGES


@register
class PublicDocstringRule(ProjectRule):
    """Enforce public-docstring coverage over ``src/repro``."""

    rule_id = "DOCSTRING-PUBLIC"
    description = ("strict packages (repro, repro.batch, repro.cli) "
                   "need docstrings on every public name; the whole "
                   "tree must stay above the coverage floor")
    rationale = ("the API surface is the contract documentation; the "
                 "floor ratchets coverage so it can only improve")

    def check_project(self,
                      modules: Sequence[Module]) -> Iterable[Diagnostic]:
        n_documented = 0
        n_missing = 0
        floor_anchor: Module | None = None
        diagnostics: list[Diagnostic] = []
        for module in modules:
            if not module.relpath.startswith(_SOURCE_PREFIX):
                continue
            if floor_anchor is None \
                    or module.relpath == "src/repro/__init__.py":
                floor_anchor = module
            name = module_name(module.relpath)
            documented, missing = audit_tree(name, module.tree)
            n_documented += len(documented)
            n_missing += len(missing)
            if in_strict_packages(name):
                for qualified, node in missing:
                    diagnostics.append(self.diagnostic(
                        module, node,
                        f"public name {qualified!r} in a strict "
                        f"package has no docstring"))
        yield from diagnostics
        yield from self._floor(floor_anchor, n_documented, n_missing)

    def _floor(self, anchor: Module | None, n_documented: int,
               n_missing: int) -> Iterator[Diagnostic]:
        total = n_documented + n_missing
        if anchor is None or total == 0:
            return
        coverage = 100.0 * n_documented / total
        if coverage < FAIL_UNDER:
            yield Diagnostic(
                path=anchor.relpath, line=1, column=0,
                rule_id=self.rule_id,
                message=(f"tree-wide public docstring coverage "
                         f"{coverage:.1f} % ({n_documented}/{total}) "
                         f"is below the {FAIL_UNDER:.1f} % floor"))
