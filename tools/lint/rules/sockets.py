"""SOCKET-HYGIENE: sockets must not leak on exception paths.

Contract: the service layer (cache server, job server, workers,
executor streams) holds long-lived TCP connections; a socket closed
only on the straight-line path leaks its file descriptor whenever an
exception interrupts the function, and a worker fleet leaks them by
the thousand.  A locally created socket must therefore be (one of):

* opened as a context manager (``with ... as sock:``),
* closed inside a ``finally:`` or ``except:`` block
  (``sock.close()`` / ``sock.shutdown()`` / ``_close_socket(sock)``),
* or handed off -- returned, or stored on an object attribute --
  making a longer-lived owner responsible.

The check is intraprocedural and conservative: only direct
``socket.socket(...)`` / ``socket.create_connection(...)``
assignments to plain local names are tracked.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from lint.asthelpers import call_name, walk_functions
from lint.diagnostics import Diagnostic
from lint.registry import Module, Rule, register

#: Call spellings that create a socket this rule tracks.
_CREATORS = {"socket.socket", "socket.create_connection",
             "create_connection"}

#: Call spellings that count as closing a socket by name.
_CLOSE_HELPERS = {"_close_socket", "service._close_socket"}


def _is_creation(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) in _CREATORS


def _closes_name(node: ast.AST, name: str) -> bool:
    """Whether ``node`` contains ``name.close()``/``name.shutdown()``
    or ``_close_socket(name)``."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("close", "shutdown") \
                and isinstance(func.value, ast.Name) \
                and func.value.id == name:
            return True
        if call_name(child) in _CLOSE_HELPERS and any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in child.args):
            return True
    return False


def _escapes(function: ast.AST, name: str) -> bool:
    """Whether ``name`` is handed off to a longer-lived owner."""
    for node in ast.walk(function):
        if isinstance(node, ast.Return) and node.value is not None:
            for child in ast.walk(node.value):
                if isinstance(child, ast.Name) and child.id == name:
                    return True
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    for child in ast.walk(node.value):
                        if isinstance(child, ast.Name) \
                                and child.id == name:
                            return True
    return False


def _closed_on_teardown(function: ast.AST, name: str) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            for final in node.finalbody:
                if _closes_name(final, name):
                    return True
            for handler in node.handlers:
                if _closes_name(handler, name):
                    return True
    return False


@register
class SocketHygieneRule(Rule):
    """Flag locally created sockets with no exception-safe teardown."""

    rule_id = "SOCKET-HYGIENE"
    description = ("locally created sockets must be closed via context "
                   "manager, finally/except, or handed off to an owner")
    rationale = ("service-layer connections leak file descriptors on "
                 "every exception path otherwise; fleets leak them by "
                 "the thousand")

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        for function in walk_functions(module.tree):
            yield from self._check_function(module, function)

    def _check_function(self, module: Module,
                        function: ast.AST) -> Iterator[Diagnostic]:
        # Context-managed creations (`with ... as sock:`) are withitem
        # expressions, not Assigns, so they are never candidates here.
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign) \
                    or not _is_creation(node.value):
                continue
            if len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            name = node.targets[0].id
            if _escapes(function, name) \
                    or _closed_on_teardown(function, name):
                continue
            yield self.diagnostic(
                module, node,
                f"socket {name!r} has no exception-safe close: use a "
                f"with-statement, close it in finally/except, or hand "
                f"it off to an owning object")
