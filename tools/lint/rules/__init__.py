"""The project-specific rule set (importing this package registers
every rule with :mod:`lint.registry`).

One module per rule family; see ``docs/STATIC_ANALYSIS.md`` for the
catalogue with rationale and examples.
"""

from lint.rules import (  # noqa: F401  (import-for-effect registration)
    digest,
    docstrings,
    encodings,
    excepts,
    lockorder,
    locks,
    picklability,
    sockets,
    wireprotocol,
)
