"""PICKLE-JOB: job classes must stay picklable.

Contract: the Job contract (``docs/ARCHITECTURE.md``) requires every
batch job to cross process and host boundaries as a pickle -- the
process pool, the cluster's base64-pickle frames, and cache rebuilds
all depend on it.  The classic ways a job class silently loses
picklability are flagged in classes that *are* (or subclass) the
registered job types:

* a lambda stored on the instance or as a class-level default,
* a locally defined closure stored on the instance,
* an open file handle stored on the instance,
* module-level mutable state (a global list/dict/set) aliased onto
  the instance -- pickles fine but desynchronizes across processes,
  which breaks the "pure function of the job's fields" requirement.

``dataclasses.field(default_factory=lambda: ...)`` is fine (the
factory runs at construction; the lambda never lands on an instance).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from lint.asthelpers import call_name, dotted_name, self_attribute
from lint.diagnostics import Diagnostic
from lint.registry import Module, Rule, register

#: Class names whose (transitive, same-file) subclasses are job types.
JOB_BASE_NAMES = {"BatchJob", "StatisticalGridJob",
                  "ExperimentPointJob"}

#: Module-level call spellings producing mutable containers.
_MUTABLE_FACTORIES = {"list", "dict", "set", "collections.deque",
                      "deque", "defaultdict",
                      "collections.defaultdict"}


def _job_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes named as, or (same-file transitively) derived from, a
    registered job type."""
    job_names = set(JOB_BASE_NAMES)
    classes = [node for node in tree.body
               if isinstance(node, ast.ClassDef)]
    # Fixpoint over same-file inheritance chains.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in job_names:
                continue
            bases = {dotted_name(base) for base in cls.bases}
            bases.discard(None)
            base_tails = {name.rsplit(".", 1)[-1] for name in bases
                          if name is not None}
            if base_tails & job_names:
                job_names.add(cls.name)
                changed = True
    for cls in classes:
        if cls.name in job_names:
            yield cls


def _module_level_mutables(tree: ast.Module) -> set[str]:
    """Names bound at module level to mutable containers."""
    mutables: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp)) \
            or (isinstance(value, ast.Call)
                and call_name(value) in _MUTABLE_FACTORIES)
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


def _local_function_names(init: ast.AST) -> set[str]:
    return {node.name for node in ast.walk(init)
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))}


@register
class PicklableJobRule(Rule):
    """Flag unpicklable (or cross-process-unsafe) state on job
    classes."""

    rule_id = "PICKLE-JOB"
    description = ("job classes must not capture lambdas, closures, "
                   "open handles, or module-level mutable state")
    rationale = ("the Job contract pickles jobs across process/host "
                 "boundaries; captured lambdas and handles fail at "
                 "submit time, aliased globals desynchronize fleets")

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        mutables = _module_level_mutables(module.tree)
        for cls in _job_classes(module.tree):
            yield from self._check_class(module, cls, mutables)

    def _check_class(self, module: Module, cls: ast.ClassDef,
                     mutables: set[str]) -> Iterator[Diagnostic]:
        # Class-level lambda defaults land on instances via dataclass
        # machinery and plain attribute lookup alike.
        for node in cls.body:
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                value = node.value
            if isinstance(value, ast.Lambda):
                yield self.diagnostic(
                    module, value,
                    f"job class {cls.name!r} stores a lambda as a "
                    f"class-level default; lambdas do not pickle -- "
                    f"use a module-level function or "
                    f"field(default_factory=...)")
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) \
                    and method.name in ("__init__", "__post_init__"):
                yield from self._check_init(module, cls, method,
                                            mutables)

    def _check_init(self, module: Module, cls: ast.ClassDef,
                    init: ast.AST,
                    mutables: set[str]) -> Iterator[Diagnostic]:
        local_defs = _local_function_names(init)
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            stored = [target for target in node.targets
                      if self_attribute(target) is not None]
            if not stored:
                continue
            value = node.value
            if isinstance(value, ast.Lambda):
                yield self.diagnostic(
                    module, node,
                    f"job class {cls.name!r} stores a lambda on the "
                    f"instance; lambdas do not pickle")
            elif isinstance(value, ast.Name) \
                    and value.id in local_defs:
                yield self.diagnostic(
                    module, node,
                    f"job class {cls.name!r} stores the local "
                    f"function {value.id!r} on the instance; local "
                    f"closures do not pickle")
            elif isinstance(value, ast.Call) and (
                    call_name(value) == "open"
                    or (isinstance(value.func, ast.Attribute)
                        and value.func.attr == "open")):
                yield self.diagnostic(
                    module, node,
                    f"job class {cls.name!r} stores an open file "
                    f"handle on the instance; handles do not pickle "
                    f"-- store the path and open lazily in execute()")
            elif isinstance(value, ast.Name) and value.id in mutables:
                yield self.diagnostic(
                    module, node,
                    f"job class {cls.name!r} aliases module-level "
                    f"mutable state {value.id!r} onto the instance; "
                    f"each unpickling host gets its own divergent "
                    f"copy -- pass an immutable snapshot instead")
