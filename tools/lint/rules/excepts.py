"""BROAD-EXCEPT: no silently swallowed exceptions in the batch layer.

Contract: the Executor contract promises that a failing job aborts the
batch with a job-attributed :class:`BatchError` and that interrupts
propagate.  A bare ``except:`` (which also catches
``KeyboardInterrupt`` and ``SystemExit``) or a swallowed
``except BaseException`` breaks both everywhere; a swallowed
``except Exception`` additionally eats :class:`BatchError`'s failure
attribution, so inside the engine/cluster/service modules it is
flagged too.  A handler that propagates -- a bare ``raise``, or the
catch-wrap-rethrow idiom ``raise JobFailure(i, e) from e`` -- is fine
for ``Exception``; only a *bare* re-raise clears ``BaseException``,
because wrapping ``KeyboardInterrupt`` hides it just as surely as
swallowing it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from lint.asthelpers import exception_names, has_bare_reraise, has_raise
from lint.diagnostics import Diagnostic
from lint.registry import Module, Rule, register

#: Modules where even ``except Exception`` must not swallow: the
#: engine failure contract lives here.
ENGINE_PATHS = (
    "src/repro/batch/engine.py",
    "src/repro/batch/cluster.py",
    "src/repro/batch/service.py",
)

#: Spellings of the interrupt-swallowing catch-alls.
_BASE_NAMES = {"BaseException"}
_BROAD_NAMES = {"Exception"}


@register
class BroadExceptRule(Rule):
    """Flag bare/over-broad except handlers that swallow exceptions."""

    rule_id = "BROAD-EXCEPT"
    description = ("no bare except; no swallowed BaseException; no "
                   "swallowed Exception in engine/cluster/service "
                   "modules")
    rationale = ("the Executor failure contract requires job-"
                 "attributed BatchErrors and propagating interrupts; "
                 "swallowed broad catches hide both")

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        strict = module.relpath in ENGINE_PATHS
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    module, node,
                    "bare except: catches KeyboardInterrupt and "
                    "SystemExit; catch Exception (or narrower) "
                    "instead")
                continue
            caught = exception_names(node)
            if caught & _BASE_NAMES:
                # Only a *bare* re-raise keeps interrupts intact:
                # wrapping KeyboardInterrupt in an Exception subclass
                # hides it just as surely as swallowing it.
                if has_bare_reraise(node):
                    continue
                yield self.diagnostic(
                    module, node,
                    "except BaseException without re-raise swallows "
                    "KeyboardInterrupt/SystemExit; re-raise or catch "
                    "Exception")
            elif strict and caught & _BROAD_NAMES \
                    and not has_raise(node):
                yield self.diagnostic(
                    module, node,
                    "except Exception without re-raise in engine/"
                    "cluster/service code swallows BatchError and its "
                    "job attribution; narrow the catch, re-raise, or "
                    "justify a suppression")
