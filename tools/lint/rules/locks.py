"""LOCK-DISCIPLINE: shared mutable state only under its lock.

Contract: ``CacheServer``, ``JobServer``, and ``RemoteCache`` are
explicitly multi-threaded -- socketserver handler threads, the reaper,
and batch callers all touch one object -- and their correctness
argument is "every access to shared state happens inside ``with
self._lock:``".  This rule checks that argument statically with a
conservative intraprocedural pass:

* A class participates when its ``__init__`` assigns at least one
  ``threading.Lock`` / ``RLock`` / ``Condition`` to a ``self``
  attribute (classes without locks are single-threaded by design and
  skipped).
* Its *shared* attributes are those (re)assigned in any method other
  than ``__init__`` -- attributes only ever written at construction
  (configuration, the locks themselves) are immutable-after-publish
  and exempt, as are self-synchronizing ``threading.Event`` /
  ``queue.Queue`` attributes.
* Every first-level ``self.<shared>`` read or write must then sit
  lexically inside a ``with self.<some lock attr>:`` block.

Project conventions honored: methods named ``*_locked`` assert "caller
holds the lock" and are exempt (their *call sites* are checked
instead, being ordinary accesses); ``__init__`` / ``__getstate__`` /
``__setstate__`` / ``__del__`` run before or after the object is
shared and are exempt.  The pass is lexical, so a helper that is only
ever called under the lock must either follow the ``_locked`` naming
convention or carry a justified suppression.

The rule is a :class:`~lint.registry.ProjectRule` since PR 9: on top
of the per-class pass above, it consults the shared
:mod:`lint.project` call-graph model to flag *self-deadlocks* -- a
call made while holding a non-reentrant ``threading.Lock`` into a
method that (directly or transitively) re-acquires that same lock.
``RLock`` and bare ``Condition()`` attributes are reentrant and
exempt; ``Condition(self._lock)`` aliases follow the lock they wrap.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from lint.asthelpers import call_name, self_attribute
from lint.diagnostics import Diagnostic
from lint.project import project_model
from lint.registry import Module, ProjectRule, register

#: Call spellings that construct a mutual-exclusion primitive.
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock",
                   "threading.Condition", "Lock", "RLock", "Condition"}

#: Call spellings that construct self-synchronizing objects: safe to
#: touch without holding the class lock.
_SELFSYNC_FACTORIES = {"threading.Event", "Event", "queue.Queue",
                       "Queue", "queue.SimpleQueue", "SimpleQueue",
                       "threading.Semaphore", "Semaphore",
                       "threading.BoundedSemaphore",
                       "BoundedSemaphore"}

#: Methods that run while the object is not yet (or no longer) shared.
_EXEMPT_METHODS = {"__init__", "__getstate__", "__setstate__",
                   "__del__"}


def _factory_of(value: ast.AST) -> str | None:
    if isinstance(value, ast.Call):
        return call_name(value)
    return None


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _init_assignments(init: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """``(attr, value)`` pairs for every ``self.attr = ...`` in
    ``__init__``."""
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self_attribute(target)
                if attr is not None:
                    yield attr, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            attr = self_attribute(node.target)
            if attr is not None:
                yield attr, node.value


def _assigned_attrs(method: ast.AST) -> set[str]:
    """First-level self attributes (re)assigned anywhere in a method
    (plain, augmented, and tuple-unpacking assignments)."""
    assigned: set[str] = set()
    for node in ast.walk(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            queue = [target]
            while queue:
                item = queue.pop()
                if isinstance(item, (ast.Tuple, ast.List)):
                    queue.extend(item.elts)
                    continue
                attr = self_attribute(item)
                if attr is not None:
                    assigned.add(attr)
    return assigned


class _LockScopeVisitor(ast.NodeVisitor):
    """Collect unlocked first-level accesses to shared attributes."""

    def __init__(self, shared: set[str], lock_attrs: set[str]):
        self._shared = shared
        self._lock_attrs = lock_attrs
        self._depth = 0  # nesting of with-lock blocks
        #: attr -> first offending node, in visit order.
        self.offences: dict[str, ast.AST] = {}

    def _is_lock_with(self, node: ast.With) -> bool:
        for item in node.items:
            attr = self_attribute(item.context_expr)
            if attr is not None and attr in self._lock_attrs:
                return True
        return False

    def visit_With(self, node: ast.With) -> None:
        if self._is_lock_with(node):
            for item in node.items:
                self.visit(item)
            self._depth += 1
            for statement in node.body:
                self.visit(statement)
            self._depth -= 1
            return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attribute(node)
        if attr in self._shared and self._depth == 0 \
                and attr not in self.offences:
            self.offences[attr] = node
        self.generic_visit(node)


@register
class LockDisciplineRule(ProjectRule):
    """Flag unlocked accesses to lock-protected shared state."""

    rule_id = "LOCK-DISCIPLINE"
    description = ("attributes mutated after __init__ in lock-owning "
                   "classes may only be touched under `with "
                   "self.<lock>:`; calls that re-enter a held "
                   "non-reentrant lock are self-deadlocks")
    rationale = ("service/cluster objects are shared across handler "
                 "threads, the reaper, and batch callers; one "
                 "unlocked read is a race the runtime tests only "
                 "catch by luck")

    def check_project(self,
                      modules: Sequence[Module]) -> Iterable[Diagnostic]:
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)
        yield from self._check_self_deadlocks(modules)

    def _check_self_deadlocks(self, modules: Sequence[Module],
                              ) -> Iterator[Diagnostic]:
        model = project_model(modules).lock_model()
        seen: set[tuple[str, int, str]] = set()
        for dead in model.self_deadlocks:
            line = getattr(dead.node, "lineno", 1)
            key = (dead.module.relpath, line, dead.lock.label)
            if key in seen:
                continue
            seen.add(key)
            if len(dead.path) > 1:
                chain = " -> ".join(
                    part.rsplit(".", 2)[-2] + "." +
                    part.rsplit(".", 2)[-1]
                    if part.count(".") >= 2 else part
                    for part in dead.path)
                how = f"calls into {chain}, which re-acquires"
            else:
                how = "re-acquires"
            yield self.diagnostic(
                dead.module, dead.node,
                f"{dead.unit.label} {how} non-reentrant lock "
                f"{dead.lock.label} already held here -- this "
                f"deadlocks the thread; drop the outer `with`, use "
                f"an RLock, or call an *_locked variant")

    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> Iterator[Diagnostic]:
        init = next((method for method in _methods(cls)
                     if method.name == "__init__"), None)
        if init is None:
            return
        lock_attrs: set[str] = set()
        selfsync: set[str] = set()
        init_attrs: set[str] = set()
        for attr, value in _init_assignments(init):
            init_attrs.add(attr)
            factory = _factory_of(value)
            if factory in _LOCK_FACTORIES:
                lock_attrs.add(attr)
            elif factory in _SELFSYNC_FACTORIES:
                selfsync.add(attr)
        if not lock_attrs:
            return

        shared: set[str] = set()
        for method in _methods(cls):
            if method.name in _EXEMPT_METHODS:
                continue
            shared |= _assigned_attrs(method)
        shared -= lock_attrs | selfsync
        # Attributes never assigned in __init__ either are not part of
        # the declared shared state (properties, descriptors).
        shared &= init_attrs
        if not shared:
            return

        for method in _methods(cls):
            if method.name in _EXEMPT_METHODS \
                    or method.name.endswith("_locked"):
                continue
            visitor = _LockScopeVisitor(shared, lock_attrs)
            visitor.visit(method)
            for attr, node in visitor.offences.items():
                yield self.diagnostic(
                    module, node,
                    f"{cls.name}.{method.name} touches shared "
                    f"attribute {attr!r} outside `with self.<lock>:` "
                    f"(locks here: "
                    f"{', '.join(sorted(lock_attrs))}); lock the "
                    f"access, rename the helper *_locked, or justify "
                    f"a suppression")
