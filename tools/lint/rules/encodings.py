"""IO-ENCODING: every text-mode file access must pin its encoding.

Contract: results, caches, traces, and reports round-trip through
JSON/text files across machines and hosts (the CacheBackend and Result
contracts of ``docs/ARCHITECTURE.md``).  A text read or write without
``encoding=`` uses the *locale* encoding, which differs between the
dev box, CI, and worker fleets -- the exact class of bug that breaks
bit-identical reproduction.  Flagged: ``open()`` / ``Path.open()`` in
text mode, ``read_text()`` / ``write_text()``, and text-mode
``tempfile`` constructors, whenever no ``encoding=`` is passed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from lint.asthelpers import constant_str, keyword_names
from lint.diagnostics import Diagnostic
from lint.registry import Module, Rule, register

#: ``tempfile`` constructors that accept a mode and an encoding.
_TEMPFILE_FACTORIES = {"NamedTemporaryFile", "TemporaryFile",
                       "SpooledTemporaryFile"}


def _mode_argument(call: ast.Call, position: int) -> ast.AST | None:
    if len(call.args) > position:
        return call.args[position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_binary_mode(mode: ast.AST | None) -> bool | None:
    """True/False for a literal mode; ``None`` when undecidable."""
    if mode is None:
        return False  # default mode "r" is text
    literal = constant_str(mode)
    if literal is None:
        return None
    return "b" in literal


@register
class ExplicitEncodingRule(Rule):
    """Flag text-mode file I/O that does not pass ``encoding=``."""

    rule_id = "IO-ENCODING"
    description = ("text-mode open()/read_text()/write_text()/tempfile "
                   "calls must pass encoding=")
    rationale = ("locale-dependent encodings break bit-identical "
                 "results across dev, CI, and worker hosts "
                 "(CacheBackend/Result contracts)")

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: Module,
                    call: ast.Call) -> Iterator[Diagnostic]:
        kwargs = keyword_names(call)
        if "encoding" in kwargs or "**" in kwargs:
            return
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode_pos = 1
            spelled = "open()"
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            # Path.open shares open()'s signature; other .open()
            # callables (tarfile, gzip, webbrowser...) do not exist in
            # this codebase, and a false positive here is one
            # suppression comment away.
            mode_pos = 0
            spelled = ".open()"
        elif isinstance(func, ast.Attribute) \
                and func.attr in ("read_text", "write_text"):
            # encoding is the 1st/2nd positional parameter.
            position = 0 if func.attr == "read_text" else 1
            if len(call.args) > position:
                return
            yield self.diagnostic(
                module, call,
                f".{func.attr}() without encoding= uses the locale "
                f"encoding; pass encoding=\"utf-8\"")
            return
        elif (isinstance(func, ast.Attribute)
              and func.attr in _TEMPFILE_FACTORIES) \
                or (isinstance(func, ast.Name)
                    and func.id in _TEMPFILE_FACTORIES):
            mode = _mode_argument(call, 0)
            literal = constant_str(mode)
            # Default mode "w+b" is binary; only a literal text mode
            # is provably wrong.
            if literal is None or "b" in literal:
                return
            yield self.diagnostic(
                module, call,
                f"text-mode tempfile (mode {literal!r}) without "
                f"encoding= uses the locale encoding; pass "
                f"encoding=\"utf-8\"")
            return
        else:
            return
        binary = _is_binary_mode(_mode_argument(call, mode_pos))
        if binary is True:
            return
        qualifier = "" if binary is False \
            else " (mode is not a literal, assuming text)"
        yield self.diagnostic(
            module, call,
            f"{spelled} in text mode without encoding= uses the "
            f"locale encoding{qualifier}; pass encoding=\"utf-8\"")
