"""LOCK-ORDER: a global lock-acquisition order, or a deadlock someday.

Contract: the batch layer's threaded objects (``CacheServer``,
``JobServer``, ``CompileService``, ``TieredCache``, the clients) each
own locks, and handler threads routinely call across objects while
holding one.  Two threads acquiring the same pair of locks in opposite
orders is the classic deadlock -- and the overlap only exists in the
*composition* of methods, so no per-module rule can see it.

This rule builds the project-wide lock graph from the
:class:`~lint.project.Project` model: a node per lock attribute (per
owning class), and an edge ``A -> B`` whenever some code path acquires
``B`` -- directly via ``with self.<b>:``, or anywhere inside a method
called while ``A`` is held (call chains are followed through the
resolved call graph to a fixpoint).  Any cycle in that graph is a
potential deadlock: two threads walking the cycle from different entry
points can block each other forever.  The diagnostic names the full
cycle and one concrete witness path per edge (file, line, and the
call chain from the holding method to the acquisition), so the fix --
picking one global order -- starts from evidence, not a search.

Conservatism: unresolvable calls (dynamic dispatch, attributes whose
class is unknown) contribute no edges, so the rule under-approximates.
An acquisition order that never overlaps at runtime can still trip
the rule -- suppress with a comment explaining why the cycle is
unreachable, which is exactly the invariant worth writing down.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from lint.diagnostics import Diagnostic
from lint.project import project_model
from lint.registry import Module, ProjectRule, register


def _short(qualname: str) -> str:
    """``Class.method`` (or ``function``) from a full qualname."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


@register
class LockOrderRule(ProjectRule):
    """Flag cycles in the project-wide lock-acquisition-order graph."""

    rule_id = "LOCK-ORDER"
    description = ("lock acquisitions must follow one global order: "
                   "a cycle of `with self.<lock>:` contexts (direct "
                   "or through called methods) is a potential "
                   "deadlock")
    rationale = ("handler threads, the reaper, and batch callers "
                 "cross object boundaries while holding locks; "
                 "inconsistent pairwise order deadlocks the fleet "
                 "under load, which no single-module check can see")

    def check_project(self,
                      modules: Sequence[Module]) -> Iterable[Diagnostic]:
        model = project_model(modules).lock_model()
        for cycle in model.cycles():
            witnesses = [model.edges[edge][0] for edge in cycle]
            order = " -> ".join(edge[0].label for edge in cycle)
            order += f" -> {cycle[0][0].label}"
            evidence = "; ".join(
                witness.describe() for witness in witnesses)
            anchor = witnesses[0]
            yield self.diagnostic(
                anchor.module, anchor.node,
                f"lock-order cycle {order}: two threads taking these "
                f"locks from different entry points can deadlock "
                f"(witnesses: {evidence}); pick one global "
                f"acquisition order or justify a suppression")
