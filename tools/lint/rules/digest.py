"""DIGEST-DETERMINISM: nothing nondeterministic may feed a digest.

Contract: the result cache is content-addressed --
``digest.canonical`` lowers a job's parameters to canonical JSON and
the SHA-256 of that text is the cache key.  The whole scheme is void
if anything fed into the digest varies between runs, processes, or
hosts.  This rule runs an intraprocedural taint pass over every
function that computes digests (calls ``canonical`` /
``digest_payload`` / ``job_digest``, or *is* a ``cache_key`` method)
and flags:

* nondeterministic primitives (``id()``, ``hash()``, ``time.*`` /
  ``datetime.now`` clocks, unseeded module-level ``random.*``,
  ``uuid.uuid1/uuid4``, ``os.urandom``) appearing in a digest call's
  arguments or a ``cache_key`` return value, directly or through a
  local assignment;
* order-erasing conversions (``list(...)`` / ``tuple(...)`` over a
  set literal or ``set(...)`` call) inside digest payloads --
  ``canonical`` sorts *sets* structurally, but a pre-materialized
  list of a set freezes one interpreter's iteration order into the
  key.

Seeded generators (``random.Random(seed)`` instances) are fine: the
rule only flags the module-level ``random.*`` functions that consume
hidden global state.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from lint.asthelpers import call_name, walk_functions
from lint.diagnostics import Diagnostic
from lint.registry import Module, Rule, register

#: The digest entry points whose arguments must be deterministic.
DIGEST_CALLS = {"canonical", "digest_payload", "job_digest"}

#: Method name whose return value *is* a digest payload.
CACHE_KEY_METHOD = "cache_key"

#: Call spellings whose results differ across runs/processes/hosts.
_NONDETERMINISTIC = {
    "id", "hash",
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.shuffle", "random.sample",
    "random.uniform", "random.getrandbits",
    "uuid.uuid1", "uuid.uuid4",
    "os.urandom",
}

#: Conversions that freeze an iteration order into a sequence
#: (``sorted`` is the fix, not an offence).
_ORDER_ERASERS = {"list", "tuple", "iter"}


def _is_setlike(node: ast.AST) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and call_name(node) in ("set", "frozenset"))


def _nondet_call(node: ast.AST) -> str | None:
    """The offending spelling when ``node`` is a nondeterministic
    call, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    name = call_name(node)
    if name in _NONDETERMINISTIC:
        return name
    return None


def _tainted_names(function: ast.AST) -> dict[str, str]:
    """Locals assigned (possibly transitively) from nondeterministic
    calls, mapped to the originating spelling."""
    tainted: dict[str, str] = {}
    # Two passes reach the chains that matter in practice
    # (x = time.time(); y = x) without a full fixpoint.
    for _ in range(2):
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            source: str | None = None
            for child in ast.walk(node.value):
                spelled = _nondet_call(child)
                if spelled is not None:
                    source = f"{spelled}()"
                    break
                if isinstance(child, ast.Name) \
                        and child.id in tainted:
                    source = tainted[child.id]
                    break
            if source is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tainted[target.id] = source
    return tainted


def _offences_in(payload: ast.AST,
                 tainted: dict[str, str]) -> Iterator[tuple[ast.AST, str]]:
    """(node, account) pairs for every nondeterminism inside a digest
    payload expression."""
    for node in ast.walk(payload):
        spelled = _nondet_call(node)
        if spelled is not None:
            yield node, f"calls {spelled}()"
            continue
        if isinstance(node, ast.Name) and node.id in tainted:
            yield node, (f"uses {node.id!r}, assigned from "
                         f"{tainted[node.id]}")
            continue
        if isinstance(node, ast.Call) \
                and call_name(node) in _ORDER_ERASERS \
                and node.args and _is_setlike(node.args[0]):
            yield node, (f"materializes set iteration order via "
                         f"{call_name(node)}(); sort first "
                         f"(sorted(...)) or pass the set itself")


@register
class DigestDeterminismRule(Rule):
    """Flag nondeterministic values flowing into content digests."""

    rule_id = "DIGEST-DETERMINISM"
    description = ("no id()/hash()/clocks/unseeded random/set-order "
                   "values in digest payloads or cache_key returns")
    rationale = ("the cache is content-addressed; a nondeterministic "
                 "digest input silently forks cache keys across "
                 "runs and hosts, destroying hit rates and "
                 "bit-identity checks")

    def check_module(self, module: Module) -> Iterable[Diagnostic]:
        for function in walk_functions(module.tree):
            yield from self._check_function(module, function)

    def _check_function(self, module: Module,
                        function: ast.AST) -> Iterator[Diagnostic]:
        is_cache_key = getattr(function, "name", "") == CACHE_KEY_METHOD
        digest_calls = [node for node in ast.walk(function)
                        if isinstance(node, ast.Call)
                        and call_name(node) is not None
                        and call_name(node).rsplit(".", 1)[-1]
                        in DIGEST_CALLS]
        if not digest_calls and not is_cache_key:
            return
        tainted = _tainted_names(function)
        seen: set[tuple[int, int]] = set()
        payloads: list[ast.AST] = []
        for call in digest_calls:
            payloads.extend(call.args)
            payloads.extend(keyword.value
                            for keyword in call.keywords)
        if is_cache_key:
            payloads.extend(node.value
                            for node in ast.walk(function)
                            if isinstance(node, ast.Return)
                            and node.value is not None)
        for payload in payloads:
            for node, account in _offences_in(payload, tainted):
                key = (getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0))
                if key in seen:
                    continue
                seen.add(key)
                yield self.diagnostic(
                    module, node,
                    f"digest payload {account}; digest inputs must "
                    f"be byte-stable across runs and hosts")
