"""Small shared AST utilities the rules lean on.

Everything here is *syntactic*: rules in this linter are conservative
by design (no type inference, no cross-module resolution), so these
helpers answer questions like "is this call spelled
``threading.Lock(...)``" -- not "does this expression evaluate to a
lock".
"""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call is spelled with, else ``None``."""
    return dotted_name(node.func)


def self_attribute(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def keyword_names(node: ast.Call) -> set[str]:
    """The explicit keyword-argument names of a call (``**kwargs``
    double-stars count as "anything could be passed" and are returned
    as ``"**"``)."""
    return {keyword.arg if keyword.arg is not None else "**"
            for keyword in node.keywords}


def constant_str(node: ast.AST | None) -> str | None:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_functions(tree: ast.AST) -> Iterator[
        ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree``, including nested
    ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def has_bare_reraise(handler: ast.ExceptHandler) -> bool:
    """Whether an except handler re-raises the active exception (a
    bare ``raise``) anywhere in its body -- the pattern that makes a
    broad catch safe."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def has_raise(handler: ast.ExceptHandler) -> bool:
    """Whether an except handler raises *anything* -- bare re-raise or
    catch-wrap-rethrow (``raise JobFailure(i, e) from e``).  Either
    way the exception is propagated, not swallowed."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def exception_names(handler: ast.ExceptHandler) -> set[str]:
    """The dotted names a handler catches (empty set for a bare
    ``except:``)."""
    if handler.type is None:
        return set()
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    names = set()
    for node in types:
        name = dotted_name(node)
        if name is not None:
            names.add(name)
    return names
