#!/usr/bin/env python
"""Generate ``docs/PROTOCOL.md`` from the statically extracted wire model.

The repro-lint project model (``tools/lint``) already parses every
client and server in ``src/`` and recovers the wire protocol: which
ops each dispatcher handles, which request fields the handlers read,
which response keys each branch can answer with, who sends each op,
and which event kinds stream over batch subscriptions.  This script
renders that model as markdown so the protocol reference can never
drift from the code -- CI runs ``--check`` and fails when the
committed document no longer matches the sources::

    python tools/gen_protocol.py           # rewrite docs/PROTOCOL.md
    python tools/gen_protocol.py --check   # exit 1 on drift (CI gate)

Exit codes: 0 OK / up to date, 1 drift detected with ``--check``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint.project import FunctionUnit, project_model  # noqa: E402
from lint.runner import (  # noqa: E402
    DEFAULT_TARGETS, REPO_ROOT, _collect_files, _load_module)
from lint.registry import Module  # noqa: E402
from lint.wiremodel import (  # noqa: E402
    ENVELOPE_FIELDS, Handler, WireModel, build_wire_model)

OUTPUT = REPO_ROOT / "docs" / "PROTOCOL.md"

HEADER = """\
# Wire protocol reference

<!-- GENERATED FILE -- do not edit by hand.
     Source of truth: the dispatchers and clients in src/, statically
     extracted by the repro-lint project model (tools/lint/wiremodel.py).
     Regenerate with:  python tools/gen_protocol.py
     CI gates drift:   python tools/gen_protocol.py --check -->

Every service in the batch substrate speaks the same framing: one
request or response is a single JSON object serialized with sorted
keys, UTF-8 encoded, and prefixed with a big-endian 4-byte length
(`struct ">I"`); frames above 64 MiB are rejected on both sides
(`send_frame` / `recv_frame` in `src/repro/batch/service.py`).

Responses share an **ok/error envelope**: every reply carries an `ok`
boolean, and the serving loops synthesize `{"ok": false, "error": ...}`
for unknown ops and handler crashes, so clients may always read `ok`
and (on failure) `error` even when a handler branch does not spell
them out.  The tables below list the keys each handler branch answers
with *in addition to* that envelope.

Requests are routed on the `"op"` key; streamed batch notifications
are routed on the `"event"` key (see [Event frames](#event-frames)).
This document is generated from the same model the `WIRE-PROTOCOL`
lint rule checks, so a mismatch between a client and a server shows up
twice: here as a wrong table, and in CI as a lint finding.
"""


def _load_project_modules() -> list[Module]:
    modules: list[Module] = []
    targets = [REPO_ROOT / target for target in DEFAULT_TARGETS]
    for path in _collect_files(targets):
        loaded = _load_module(path, REPO_ROOT)
        if isinstance(loaded, Module):
            modules.append(loaded)
    return modules


def _site_ref(unit: FunctionUnit, node) -> str:
    line = getattr(node, "lineno", None)
    suffix = f":{line}" if line else ""
    return f"`{unit.label}` ({unit.module.relpath}{suffix})"


def _field_rows(handler: Handler) -> list[str]:
    rows = []
    for name in sorted(handler.required_fields):
        rows.append(f"| `{name}` | required |")
    for name in sorted(handler.optional_fields
                       - handler.required_fields):
        rows.append(f"| `{name}` | optional (`.get`) |")
    return rows


def _render_op(op: str, handler: Handler, model: WireModel) -> list[str]:
    lines = [f"### `op: \"{op}\"`", ""]
    lines.append(f"Handled by {_site_ref(handler.unit, handler.node)}.")
    lines.append("")
    rows = _field_rows(handler)
    if rows:
        lines.append("| request field | requiredness |")
        lines.append("| --- | --- |")
        lines.extend(rows)
    else:
        lines.append("Takes no request fields beyond `op`.")
    lines.append("")
    keys: set[str] = set()
    open_resp = False
    for literal in handler.responses:
        keys |= literal.keys
        open_resp = open_resp or literal.open
    keys -= ENVELOPE_FIELDS
    if keys:
        rendered = ", ".join(f"`{key}`" for key in sorted(keys))
        qualifier = " (plus dynamically built keys)" if open_resp else ""
        lines.append(f"Response keys beyond the envelope: "
                     f"{rendered}{qualifier}.")
    elif open_resp:
        lines.append("Response shape is built dynamically (not a "
                     "literal the extractor can enumerate).")
    else:
        lines.append("Responds with the bare envelope.")
    senders = [site for site in model.request_sites
               if site.kinds is not None and op in site.kinds]
    if senders:
        refs = sorted(_site_ref(site.unit, site.node)
                      for site in senders)
        lines.append(f"Sent by: {'; '.join(refs)}.")
    else:
        lines.append("No in-repo sender (external/diagnostic op).")
    lines.append("")
    return lines


def render(model: WireModel) -> str:
    lines = [HEADER]
    # Group ops by dispatcher so each server reads as one section.
    by_dispatcher: dict[str, list[tuple[str, Handler]]] = {}
    for op, handlers in model.handlers.items():
        for handler in handlers:
            key = f"{handler.unit.module.relpath}::{handler.unit.label}"
            by_dispatcher.setdefault(key, []).append((op, handler))
    for key in sorted(by_dispatcher):
        pairs = sorted(by_dispatcher[key], key=lambda pair: pair[0])
        unit = pairs[0][1].unit
        lines.append(f"## Dispatcher `{unit.label}` "
                     f"(`{unit.module.relpath}`)")
        lines.append("")
        ops = ", ".join(f"`{op}`" for op, _ in pairs)
        lines.append(f"Routes ops: {ops}.")
        lines.append("")
        for op, handler in pairs:
            lines.extend(_render_op(op, handler, model))
    lines.append("## Event frames")
    lines.append("")
    lines.append(
        "Batch subscriptions stream JSON frames routed on the "
        "`\"event\"` key instead of `\"op\"`.  Producers push; "
        "consumers iterate until a terminal `done`/`aborted` frame.")
    lines.append("")
    kinds: dict[str, tuple[set[str], list[str], bool]] = {}
    for site in model.event_producers:
        for kind in sorted(site.kinds or ()):
            fields, refs, open_fields = kinds.setdefault(
                kind, (set(), [], False))
            fields |= site.fields
            refs.append(_site_ref(site.unit, site.node))
            kinds[kind] = (fields, refs, open_fields or site.open_fields)
    lines.append("| event | payload fields | produced by |")
    lines.append("| --- | --- | --- |")
    for kind in sorted(kinds):
        fields, refs, open_fields = kinds[kind]
        rendered = ", ".join(f"`{name}`" for name in sorted(fields)) \
            or "(none)"
        if open_fields:
            rendered += " (+ dynamic)"
        lines.append(f"| `{kind}` | {rendered} | "
                     f"{'; '.join(sorted(set(refs)))} |")
    lines.append("")
    if model.event_consumers:
        lines.append("Consumers and the fields they read per kind:")
        lines.append("")
        for consumer in sorted(
                model.event_consumers,
                key=lambda c: (c.unit.module.relpath, c.unit.label)):
            per_kind = ", ".join(
                f"`{kind}`" + (
                    " ({})".format(", ".join(
                        f"`{f}`" for f in sorted(reads)))
                    if reads else "")
                for kind, reads in sorted(
                    consumer.reads_by_kind.items()))
            lines.append(f"- {_site_ref(consumer.unit, consumer.node)}"
                         f" -- {per_kind}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gen-protocol", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed docs/PROTOCOL.md and exit "
             "1 on drift instead of rewriting it")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help="write the document here (default: docs/PROTOCOL.md)")
    args = parser.parse_args(argv)

    model = build_wire_model(project_model(_load_project_modules()))
    document = render(model)
    if args.check:
        committed = args.output.read_text(encoding="utf-8") \
            if args.output.exists() else ""
        if committed != document:
            print(f"gen-protocol: {args.output} is stale -- regenerate "
                  f"with `python tools/gen_protocol.py`",
                  file=sys.stderr)
            return 1
        print(f"gen-protocol: {args.output} is up to date")
        return 0
    args.output.write_text(document, encoding="utf-8")
    print(f"gen-protocol: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
