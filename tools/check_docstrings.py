#!/usr/bin/env python
"""Public-docstring coverage gate -- thin shim over repro-lint.

The implementation moved into the lint framework as the
``DOCSTRING-PUBLIC`` rule (``tools/lint/rules/docstrings.py``); this
script survives so CI's docs-lint step and developer muscle memory
keep working unchanged.  It prints the same coverage summary as
before and exits nonzero on any docstring finding.

Run from the repository root::

    python tools/check_docstrings.py            # gate (exit 1 on fail)
    python tools/check_docstrings.py --list     # show missing names

Prefer ``python tools/run_lint.py`` for the full rule set.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint.rules.docstrings import (  # noqa: E402  (path bootstrap first)
    FAIL_UNDER,
    STRICT_PACKAGES,
    audit_tree,
    in_strict_packages,
    module_name,
)
from lint.runner import REPO_ROOT, load_module  # noqa: E402

SOURCE = REPO_ROOT / "src" / "repro"


def main(argv: list[str]) -> int:
    """Audit ``src/repro`` and report like the pre-shim gate did."""
    show_missing = "--list" in argv
    documented: list[str] = []
    missing: list[str] = []
    strict_missing: list[str] = []
    for path in sorted(SOURCE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        module = load_module(path, root=REPO_ROOT)
        name = module_name(module.relpath)
        has, lacks = audit_tree(name, module.tree)
        documented.extend(has)
        missing.extend(qualified for qualified, _ in lacks)
        if in_strict_packages(name):
            strict_missing.extend(qualified for qualified, _ in lacks)

    total = len(documented) + len(missing)
    coverage = 100.0 * len(documented) / total if total else 100.0
    print(f"public docstring coverage: {len(documented)}/{total} "
          f"({coverage:.1f} %); floor {FAIL_UNDER:.1f} %; strict "
          f"packages ({', '.join(STRICT_PACKAGES)}): "
          f"{len(strict_missing)} missing")

    failed = False
    if strict_missing:
        failed = True
        print("\npublic API names missing docstrings (must be 0):")
        for name in strict_missing:
            print(f"  {name}")
    if coverage < FAIL_UNDER:
        failed = True
        print(f"\ncoverage {coverage:.1f} % is below the "
              f"{FAIL_UNDER:.1f} % floor")
        if not show_missing:
            print("re-run with --list to see every missing name")
    if show_missing and missing:
        print("\nall missing docstrings:")
        for name in missing:
            print(f"  {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
