#!/usr/bin/env python
"""Public-docstring coverage gate (an in-repo, dependency-free stand-in
for ``interrogate``/``pydocstyle``, which the CI image does not ship).

Walks ``src/repro`` with ``ast`` and requires a docstring on every
*public* definition: modules, classes, functions, and methods whose
names do not start with ``_`` (dunders other than ``__init__`` are
exempt, as are ``@overload`` stubs and trivial ``...`` bodies of
Protocol members).  Two thresholds are enforced:

* the strict set (``STRICT_PACKAGES``: the public API surface --
  ``repro/__init__``, ``repro.batch.*``, ``repro.cli.*``) must be at
  **100 %**;
* the whole tree must not fall below ``FAIL_UNDER`` percent (pinned at
  the level this gate was introduced, so coverage can only ratchet
  up).

Run from the repository root::

    python tools/check_docstrings.py            # gate (exit 1 on fail)
    python tools/check_docstrings.py --list     # show missing names
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SOURCE = ROOT / "src" / "repro"

#: Module prefixes that must sit at 100 % public docstring coverage.
STRICT_PACKAGES = ("repro", "repro.batch", "repro.cli")

#: Whole-tree floor, percent.  Raise when coverage improves; never
#: lower it.
FAIL_UNDER = 99.0


def module_name(path: Path) -> str:
    relative = path.relative_to(SOURCE.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def is_trivial_body(node: ast.AST) -> bool:
    """Protocol/overload members whose body is just ``...`` (possibly
    after a docstring-less signature) document themselves elsewhere."""
    body = getattr(node, "body", [])
    return len(body) == 1 and isinstance(body[0], ast.Expr) \
        and isinstance(body[0].value, ast.Constant) \
        and body[0].value.value is Ellipsis


def has_overload_decorator(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        name = decorator.id if isinstance(decorator, ast.Name) else \
            decorator.attr if isinstance(decorator, ast.Attribute) \
            else None
        if name == "overload":
            return True
    return False


def audit_module(path: Path) -> tuple[list[str], list[str]]:
    """``(documented, missing)`` fully qualified public names."""
    name = module_name(path)
    tree = ast.parse(path.read_text())
    documented: list[str] = []
    missing: list[str] = []

    def record(qualified: str, node: ast.AST) -> None:
        target = documented if ast.get_docstring(node) else missing
        target.append(qualified)

    record(name, tree)

    def walk(scope: str, body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not is_public(node.name):
                    continue
                qualified = f"{scope}.{node.name}"
                record(qualified, node)
                walk(qualified, node.body)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                if not is_public(node.name):
                    continue
                if node.name == "__init__":
                    # The class docstring documents construction.
                    continue
                if has_overload_decorator(node) \
                        or is_trivial_body(node):
                    continue
                record(f"{scope}.{node.name}", node)

    walk(name, tree.body)
    return documented, missing


def main(argv: list[str]) -> int:
    show_missing = "--list" in argv
    documented: list[str] = []
    missing: list[str] = []
    strict_missing: list[str] = []
    for path in sorted(SOURCE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        has, lacks = audit_module(path)
        documented.extend(has)
        missing.extend(lacks)
        module = module_name(path)
        package = module.rsplit(".", 1)[0] if "." in module else module
        if module in STRICT_PACKAGES or package in STRICT_PACKAGES:
            strict_missing.extend(lacks)

    total = len(documented) + len(missing)
    coverage = 100.0 * len(documented) / total if total else 100.0
    print(f"public docstring coverage: {len(documented)}/{total} "
          f"({coverage:.1f} %); floor {FAIL_UNDER:.1f} %; strict "
          f"packages ({', '.join(STRICT_PACKAGES)}): "
          f"{len(strict_missing)} missing")

    failed = False
    if strict_missing:
        failed = True
        print("\npublic API names missing docstrings (must be 0):")
        for name in strict_missing:
            print(f"  {name}")
    if coverage < FAIL_UNDER:
        failed = True
        print(f"\ncoverage {coverage:.1f} % is below the "
              f"{FAIL_UNDER:.1f} % floor")
        if not show_missing:
            print("re-run with --list to see every missing name")
    if show_missing and missing:
        print("\nall missing docstrings:")
        for name in missing:
            print(f"  {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
