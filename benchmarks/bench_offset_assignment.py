"""EXP-O1: the offset-assignment substrate (the paper's refs [4, 5]).

SOA heuristics (Liao; Leupers/Marwedel tie-break) against the OFU
baseline and the exhaustive optimum, plus GOA partitioning over k
address registers.
"""

from repro.analysis.experiments import (
    OffsetComparisonConfig,
    run_offset_comparison,
)
from repro.analysis.render import offset_goa_table, offset_soa_table

from _bench_util import publish, run_once


def bench_exp_o1_offset_assignment(benchmark):
    summary = run_once(benchmark, run_offset_comparison,
                       OffsetComparisonConfig())

    text = (offset_soa_table(summary).render() + "\n"
            + offset_goa_table(summary).render())
    headline = (f"\nEXP-O1 headline: SOA cost reduction vs OFU -- Liao "
                f"{summary.mean_liao_reduction_pct:.1f} %, tie-break "
                f"{summary.mean_tiebreak_reduction_pct:.1f} %\n")
    publish("exp_o1_offset", text + headline, summary)

    for row in summary.soa_rows:
        assert row.mean_liao <= row.mean_ofu + 1e-9
        assert row.mean_tiebreak <= row.mean_ofu + 1e-9
        if row.mean_optimal is not None:
            assert row.mean_optimal <= row.mean_tiebreak + 1e-9
    assert summary.mean_tiebreak_reduction_pct >= \
        summary.mean_liao_reduction_pct - 5.0
