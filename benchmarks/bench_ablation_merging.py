"""EXP-A3: merging-strategy ablation against the exhaustive optimum.

Positions the paper's best-pair heuristic between the naive baselines
and the true optimum on instances small enough to solve exactly.
"""

from repro.analysis.experiments import (
    MergingAblationConfig,
    run_merging_ablation,
)
from repro.analysis.render import merging_table

from _bench_util import publish, run_once


def bench_exp_a3_merging_ablation(benchmark):
    summary = run_once(benchmark, run_merging_ablation,
                       MergingAblationConfig())

    publish("exp_a3_merging", merging_table(summary).render(), summary)

    for row in summary.rows:
        # optimal <= best-pair on every aggregate (per-instance asserted
        # in the unit tests); best-pair beats both naive baselines.
        assert row.mean_optimal <= row.mean_best_pair + 1e-9
        assert row.mean_best_pair <= row.mean_naive_random + 1e-9
        assert row.mean_best_pair <= row.mean_naive_first + 1e-9
        # The heuristic stays near the optimum on every grid point...
        assert row.best_pair_gap_pct <= 30.0
    # ... and hits it exactly on a solid share of instances overall.
    hit_rate = sum(row.best_pair_optimal_fraction for row in summary.rows) \
        / len(summary.rows)
    assert hit_rate >= 0.4
