"""EXP-P1: runtime scaling of the library's algorithms.

Micro-benchmarks over the building blocks so performance regressions in
the solvers show up directly: graph construction, matching, the exact
branch-and-bound, the greedy cover, best-pair merging, codegen, the
simulator, and SOA -- plus the batch engine's suite throughput (cold,
cached, and parallel), the sharded EXP-S1 grid's throughput, the
per-point throughput of every registered ablation experiment
(``-k ablate``), the remote cache service's round-trip and
batched-put throughput against its local in-process baseline
(``-k remote``), and the compile service's warm round-trip and
concurrent-load latency SLO -- p50/p95/p99 into ``extra_info`` --
(``-k bench_serve``).

The ``-k solver`` micro-suite times the single-point hot paths (access
graph construction and memoized lookup, the exact branch-and-bound,
greedy GOA, the SOA oracle, and job-payload digesting); it is what
``tools/bench_trajectory.py`` records into the repo's ``BENCH_*.json``
perf trajectory and what ``tools/check_bench_regression.py`` gates in
CI -- see ``docs/BENCHMARKS.md``.
"""

import io
import time
from contextlib import contextmanager

import pytest

from _bench_util import run_once

from repro.analysis.experiments import (
    StatisticalConfig,
    run_experiment,
    run_statistical_comparison,
)
from repro.batch.cache import InMemoryLRUCache
from repro.batch.engine import BatchCompiler
from repro.batch.jobs import jobs_from_suite
from repro.batch.registry import get_experiment, registered_experiments

from repro.agu.codegen import generate_address_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.graph.access_graph import AccessGraph
from repro.ir.layout import MemoryLayout
from repro.ir.parser import parse_kernel
from repro.ir.types import ArrayDecl, Loop
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.offset.soa import tiebreak_soa
from repro.offset.sequence import random_sequence
from repro.workloads.kernels import KERNELS
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_pattern,
)


@pytest.mark.parametrize("n", [20, 40, 80])
def bench_graph_construction(benchmark, n):
    pattern = generate_pattern(RandomPatternConfig(n, offset_span=10),
                               seed=1)
    graph = benchmark(AccessGraph, pattern, 1)
    assert graph.n_nodes == n


@pytest.mark.parametrize("n", [40, 120, 360])
def bench_matching_lower_bound(benchmark, n):
    pattern = generate_pattern(RandomPatternConfig(n, offset_span=12),
                               seed=2)
    graph = AccessGraph(pattern, 1)
    bound = benchmark(intra_cover_lower_bound, graph)
    assert 1 <= bound <= n


@pytest.mark.parametrize("n", [12, 18, 24])
def bench_exact_cover(benchmark, n):
    pattern = generate_pattern(RandomPatternConfig(n, offset_span=6),
                               seed=3)
    result = benchmark(minimum_zero_cost_cover, pattern, 1)
    assert result.k_tilde >= 1


@pytest.mark.parametrize("n", [40, 80, 160])
def bench_greedy_cover(benchmark, n):
    pattern = generate_pattern(RandomPatternConfig(n, offset_span=10),
                               seed=4)
    graph = AccessGraph(pattern, 1)
    cover = benchmark(greedy_zero_cost_cover, graph)
    assert cover.n_accesses == n


@pytest.mark.parametrize("n", [20, 40, 80])
def bench_best_pair_merging(benchmark, n):
    pattern = generate_pattern(RandomPatternConfig(n, offset_span=10),
                               seed=5)
    graph = AccessGraph(pattern, 1)
    cover = greedy_zero_cost_cover(graph)

    def merge():
        return best_pair_merge(cover, 2, pattern, 1)

    result = benchmark(merge)
    assert result.n_registers <= 2


def bench_parser_on_kernel_library(benchmark):
    sources = [entry.source for entry in KERNELS.values()]

    def parse_all():
        return [parse_kernel(source) for source in sources]

    kernels = benchmark(parse_all)
    assert len(kernels) == len(KERNELS)


def bench_codegen_and_simulation(benchmark):
    pattern = generate_pattern(RandomPatternConfig(30, offset_span=8),
                               seed=6)
    graph = AccessGraph(pattern, 1)
    cover = greedy_zero_cost_cover(graph)
    merged = best_pair_merge(cover, 4, pattern, 1)
    spec = AguSpec(4, 1)
    program = generate_address_code(pattern, merged.cover, spec)
    loop = Loop(pattern, start=0, n_iterations=100)
    layout = MemoryLayout.contiguous([ArrayDecl("A", length=256)],
                                     origin=16)

    result = benchmark(simulate, program, loop, layout)
    assert result.n_accesses_verified == 100 * 30


@pytest.mark.parametrize("length", [50, 200])
def bench_soa_tiebreak(benchmark, length):
    sequence = random_sequence(12, length, seed=7, locality=0.4)
    layout = benchmark(tiebreak_soa, sequence)
    assert sorted(layout) == sorted(sequence.variables())


def bench_batch_suite_cold(benchmark):
    """Suite throughput with an empty cache: every job compiles."""
    jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)

    def run_cold():
        return BatchCompiler(cache=InMemoryLRUCache()).compile(jobs)

    report = benchmark(run_cold)
    assert report.n_compiled == report.n_jobs and report.all_audits_ok


def bench_batch_suite_cached(benchmark):
    """Suite throughput on a warm cache: zero recompilations."""
    compiler = BatchCompiler()
    jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)
    compiler.compile(jobs)

    report = benchmark(compiler.compile, jobs)
    assert report.n_cache_hits == report.n_jobs


@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_batch_full_suite_parallel(benchmark, workers):
    """Whole-library throughput vs process-pool width (cold cache)."""
    jobs = jobs_from_suite("full", AguSpec(4, 1), n_iterations=4)
    report = run_once(
        benchmark,
        lambda: BatchCompiler(cache=InMemoryLRUCache(),
                              n_workers=workers).compile(jobs))
    assert report.n_jobs == len(jobs) and report.all_audits_ok


#: A mid-size EXP-S1 grid (12 points) for the sharding benchmarks:
#: large enough that fan-out matters, small enough for CI benches.
_STATS_GRID = StatisticalConfig(
    n_values=(10, 15, 20), m_values=(1, 2), k_values=(2, 3),
    patterns_per_config=10, naive_repeats=3)


def bench_stats_grid_cold(benchmark):
    """EXP-S1 grid throughput with an empty cache: every point runs."""
    summary = run_once(benchmark, run_statistical_comparison,
                       _STATS_GRID)
    assert summary.n_points_compiled == len(_STATS_GRID.grid())
    assert summary.n_points_cached == 0


def bench_stats_grid_cached(benchmark):
    """EXP-S1 grid on a warm shared cache: zero recomputations."""
    cache = InMemoryLRUCache()
    run_statistical_comparison(_STATS_GRID, cache=cache)

    summary = run_once(benchmark, run_statistical_comparison,
                       _STATS_GRID, cache=cache)
    assert summary.n_points_compiled == 0
    assert summary.n_points_cached == len(_STATS_GRID.grid())


@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_stats_grid_parallel(benchmark, workers):
    """EXP-S1 grid throughput vs process-pool width (cold cache)."""
    summary = run_once(
        benchmark,
        lambda: run_statistical_comparison(_STATS_GRID,
                                           n_workers=workers))
    assert len(summary.rows) == len(_STATS_GRID.grid())
    assert summary.n_points_compiled == len(_STATS_GRID.grid())


#: All registered per-point ablation experiments (EXP-A1..A3, EXP-O1,
#: EXP-X1..X3), benched on their quick grids; a newly registered
#: experiment joins the benches automatically.
_ABLATE_EXPERIMENTS = registered_experiments()


@pytest.mark.parametrize("experiment", _ABLATE_EXPERIMENTS)
def bench_ablate_points_cold(benchmark, experiment):
    """Per-experiment point throughput with an empty cache."""
    config = get_experiment(experiment).quick_config()
    summary = run_once(benchmark,
                       lambda: run_experiment(experiment, config))
    assert summary.n_points_compiled > 0
    assert summary.n_points_cached == 0


@pytest.mark.parametrize("experiment", _ABLATE_EXPERIMENTS)
def bench_ablate_points_cached(benchmark, experiment):
    """Per-experiment point throughput on a warm shared cache: a
    cached re-run recomputes nothing."""
    config = get_experiment(experiment).quick_config()
    cache = InMemoryLRUCache()
    run_experiment(experiment, config, cache=cache)

    summary = run_once(benchmark, run_experiment, experiment, config,
                       cache=cache)
    assert summary.n_points_compiled == 0
    assert summary.n_points_cached > 0


@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_ablate_grid_parallel(benchmark, workers):
    """Ablation point fan-out vs process-pool width (cold cache, on
    the widest default grid: EXP-A1's exact covers)."""
    config = get_experiment("pathcover").quick_config()
    summary = run_once(
        benchmark,
        lambda: run_experiment("pathcover", config, n_workers=workers))
    assert summary.n_points_compiled > 0


# ----------------------------------------------------------------------
# Solver hot-path micro-suite (-k solver)
# ----------------------------------------------------------------------
# The per-point costs underneath every experiment grid.  These benches
# feed the persisted perf trajectory (BENCH_*.json); they run against
# optimized and pre-optimization checkouts alike, so the fallbacks
# below let the same bench file record honest "before" numbers.
try:
    from repro.graph.access_graph import cached_access_graph
except ImportError:  # pre-memoization baseline checkouts
    cached_access_graph = AccessGraph

#: One loop iteration's accesses, sized like a large EXP-S1 point.
_SOLVER_GRAPH_PATTERN = generate_pattern(
    RandomPatternConfig(96, offset_span=10), seed=11)

#: A proven-optimal but search-heavy exact-cover instance (~44k nodes).
_SOLVER_COVER_PATTERN = generate_pattern(
    RandomPatternConfig(22, offset_span=6), seed=3)


def bench_solver_access_graph(benchmark):
    """Raw access-graph construction (the O(edges) hot loop)."""
    graph = benchmark(AccessGraph, _SOLVER_GRAPH_PATTERN, 4)
    assert graph.n_nodes == 96


def bench_solver_access_graph_memoized(benchmark):
    """Warm per-(pattern, M) graph lookup, as the EXP grids see it."""
    cached_access_graph(_SOLVER_GRAPH_PATTERN, 4)  # prime the memo

    graph = benchmark(cached_access_graph, _SOLVER_GRAPH_PATTERN, 4)
    assert graph.n_nodes == 96


def bench_solver_exact_cover(benchmark):
    """The phase-1 branch-and-bound on a search-heavy instance."""
    result = benchmark(minimum_zero_cost_cover, _SOLVER_COVER_PATTERN, 1)
    assert result.k_tilde == 8 and result.optimal


def bench_solver_exact_cover_tight_bounds(benchmark):
    """The same instance under the opt-in tiling-style bound."""
    def run():
        try:
            return minimum_zero_cost_cover(_SOLVER_COVER_PATTERN, 1,
                                           tight_bounds=True)
        except TypeError:  # pre-tight-bounds baseline checkouts
            return minimum_zero_cost_cover(_SOLVER_COVER_PATTERN, 1)

    result = benchmark(run)
    assert result.k_tilde == 8 and result.optimal


def bench_solver_goa_greedy(benchmark):
    """Greedy GOA local search (the EXP-O1 per-sequence hot path)."""
    from repro.offset.goa import goa_greedy

    sequence = random_sequence(12, 160, seed=21, locality=0.5)
    result = benchmark(goa_greedy, sequence, 4)
    assert result.n_registers <= 4


def bench_solver_optimal_assignment(benchmark):
    """The exhaustive SOA oracle (mirror-pruned factorial search)."""
    from repro.offset.soa import assignment_cost, optimal_assignment

    sequence = random_sequence(8, 40, seed=22, locality=0.5)
    layout = benchmark(optimal_assignment, sequence, 1, 8)
    assert assignment_cost(layout, sequence) \
        == assignment_cost(optimal_assignment(sequence, 1, 8), sequence)


#: A nested job-payload shape (dataclass-free slice of a point job).
_SOLVER_DIGEST_PAYLOAD = {
    "v": 1, "experiment": "exp-point/pathcover",
    "params": {"n": 26, "m": 1, "patterns": 8, "offset_span": 6,
               "distribution": "uniform", "seed": 424242,
               "node_budget": 50_000,
               "tags": frozenset({"a", "b", "c", "d"}),
               "nested": [{"k": k, "vals": list(range(10))}
                          for k in range(20)]},
}


def bench_solver_digest(benchmark):
    """Content-addressing throughput: 100 canonical-JSON digests."""
    from repro.batch.digest import digest_payload

    def digest_100():
        return [digest_payload(_SOLVER_DIGEST_PAYLOAD)
                for _ in range(100)]

    digests = benchmark(digest_100)
    assert len(set(digests)) == 1


# ----------------------------------------------------------------------
# Remote cache service (-k remote)
# ----------------------------------------------------------------------
#: A representative cached payload (the shape of a lowered JobResult).
_REMOTE_PAYLOAD = {
    "name": "bench", "digest": "d" * 64, "n_accesses": 17,
    "n_registers": 4, "modify_range": 1, "k_tilde": 5,
    "n_registers_used": 4, "total_cost": 3,
    "overhead_per_iteration": 3, "baseline_overhead": 17,
    "simulated": True, "audit_ok": True, "wall_seconds": 0.01,
}


def bench_remote_cache_roundtrip_local(benchmark):
    """Baseline: one put + one get against the in-process store."""
    cache = InMemoryLRUCache()

    def roundtrip():
        cache.put("d" * 64, _REMOTE_PAYLOAD)
        return cache.get("d" * 64)

    assert benchmark(roundtrip) == _REMOTE_PAYLOAD


def bench_remote_cache_roundtrip_served(benchmark):
    """One put + one get through the TCP cache service (the per-point
    streaming cost a remote-shared run pays)."""
    from repro.batch.service import CacheServer, RemoteCache

    with CacheServer(InMemoryLRUCache()) as server:
        client = RemoteCache(*server.address)

        def roundtrip():
            client.put("d" * 64, _REMOTE_PAYLOAD)
            return client.get("d" * 64)

        assert benchmark(roundtrip) == _REMOTE_PAYLOAD


@pytest.mark.parametrize("batch_size", [1, 64, 256])
def bench_remote_put_many_batched(benchmark, batch_size):
    """Batched-put throughput vs frames-per-batch: 256 entries pushed
    through the service in ``batch_size``-entry protocol frames."""
    from repro.batch.service import CacheServer, RemoteCache

    entries = {f"{index:064d}": dict(_REMOTE_PAYLOAD, total_cost=index)
               for index in range(256)}
    with CacheServer(InMemoryLRUCache(capacity=4096)) as server:
        client = RemoteCache(*server.address, batch_size=batch_size)
        benchmark(client.put_many, entries)
        assert client.get("0" * 61 + "255") == dict(_REMOTE_PAYLOAD,
                                                    total_cost=255)


def bench_remote_warm_suite_through_server(benchmark):
    """A fully cached suite run served entirely over the wire."""
    from repro.batch.service import CacheServer, RemoteCache

    jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)
    with CacheServer(InMemoryLRUCache()) as server:
        client = RemoteCache(*server.address)
        BatchCompiler(cache=client).compile(jobs)

        report = benchmark(BatchCompiler(cache=client).compile, jobs)
        assert report.n_cache_hits == len(jobs)


# ----------------------------------------------------------------------
# Compile service (-k bench_serve)
# ----------------------------------------------------------------------
#: The kernel-library rotation the serve benches request (distinct
#: digests, all small).
_SERVE_KERNELS = ("fir8", "saxpy", "energy", "vector_add",
                  "dot_product", "moving_average4")


def _percentile_ms(latencies, quantile: float) -> float:
    """The ``quantile`` latency (nearest-rank) in milliseconds."""
    ranked = sorted(latencies)
    rank = max(0, int(len(ranked) * quantile + 0.5) - 1)
    return ranked[rank] * 1000.0


def bench_serve_warm_roundtrip(benchmark):
    """One warm compile request through the serve endpoint: the
    hot-path floor (warm in-process tier, no engine, no batching)."""
    from repro.batch.serving import CompileService, ServeClient

    with CompileService() as service:
        client = ServeClient(service.endpoint)
        client.compile(kernel="fir8")  # prime the warm tier

        answer = benchmark(client.compile, kernel="fir8")
        assert answer.cached


def bench_serve_cold_burst_coalesces(benchmark):
    """A concurrent cold burst (6 distinct kernels at once): what
    micro-batching buys -- the requests coalesce into a handful of
    engine batches instead of one batch per request."""
    import threading

    from repro.batch.serving import CompileService, ServeClient

    def burst():
        with CompileService(batch_window=0.02) as service:
            client = ServeClient(service.endpoint,
                                 pool_size=len(_SERVE_KERNELS))
            answers = [None] * len(_SERVE_KERNELS)

            def request(index: int, name: str) -> None:
                answers[index] = client.compile(kernel=name)

            threads = [threading.Thread(target=request, args=pair)
                       for pair in enumerate(_SERVE_KERNELS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            return answers, service.stats.batches

    answers, batches = run_once(benchmark, burst)
    assert all(answer is not None for answer in answers)
    assert 1 <= batches <= len(_SERVE_KERNELS)


def bench_serve_latency_slo(benchmark):
    """Request latency under concurrent load: 8 client threads, 96
    warm requests total, one shared pooled client.  Records the
    p50/p95/p99 SLO numbers into ``extra_info`` so the perf
    trajectory (``tools/bench_trajectory.py``) archives them."""
    import threading
    import time as time_module

    from repro.batch.serving import CompileService, ServeClient

    n_threads, per_thread = 8, 12
    with CompileService(batch_window=0.002) as service:
        client = ServeClient(service.endpoint, pool_size=n_threads)
        for name in _SERVE_KERNELS:
            client.compile(kernel=name)  # prime every kernel

        def load() -> list[float]:
            latencies: list[list[float]] = [[] for _ in range(n_threads)]

            def drive(slot: int) -> None:
                for index in range(per_thread):
                    name = _SERVE_KERNELS[
                        (slot + index) % len(_SERVE_KERNELS)]
                    started = time_module.perf_counter()
                    answer = client.compile(kernel=name)
                    elapsed = time_module.perf_counter() - started
                    latencies[slot].append(elapsed)
                    assert answer.cached

            threads = [threading.Thread(target=drive, args=(slot,))
                       for slot in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            return [sample for bucket in latencies
                    for sample in bucket]

        samples = run_once(benchmark, load)
    assert len(samples) == n_threads * per_thread
    p50 = _percentile_ms(samples, 0.50)
    p95 = _percentile_ms(samples, 0.95)
    p99 = _percentile_ms(samples, 0.99)
    assert p50 <= p95 <= p99
    benchmark.extra_info["requests"] = len(samples)
    benchmark.extra_info["p50_ms"] = round(p50, 3)
    benchmark.extra_info["p95_ms"] = round(p95, 3)
    benchmark.extra_info["p99_ms"] = round(p99, 3)


# ----------------------------------------------------------------------
# Distributed execution service (-k cluster)
# ----------------------------------------------------------------------
@contextmanager
def _worker_fleet(n_workers: int, **server_kwargs):
    """A JobServer plus in-process worker threads (real TCP + framing,
    in-thread execution), so the benches measure protocol and
    scheduling overhead without fork noise.  Keyword arguments pass
    through to :class:`JobServer` (the sched benches set the
    scheduling-policy flags and a trace sink)."""
    import threading

    from repro.batch.cluster import JobServer, Worker

    with JobServer(**server_kwargs) as server:
        workers = [Worker(*server.address, poll=0.05)
                   for _ in range(n_workers)]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            yield server
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=10.0)


def bench_cluster_job_roundtrip(benchmark):
    """One trivial job through submit -> lease -> execute -> stream:
    the per-job floor the execution service adds over inline."""
    from repro.batch.cluster import ClusterExecutor

    jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)[:1]
    with _worker_fleet(1) as server:
        executor = ClusterExecutor(*server.address)

        def roundtrip():
            return BatchCompiler(executor=executor).compile(jobs)

        report = benchmark(roundtrip)
        assert report.n_jobs == 1


def bench_cluster_suite_throughput(benchmark):
    """The core8 suite through a job server with two workers (compare
    with bench_batch_suite_cold for the inline baseline)."""
    from repro.batch.cluster import ClusterExecutor

    jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)
    with _worker_fleet(2) as server:
        executor = ClusterExecutor(*server.address)

        def run():
            return BatchCompiler(executor=executor).compile(jobs)

        report = benchmark(run)
        assert report.n_jobs == len(jobs) and report.all_audits_ok


# ----------------------------------------------------------------------
# Scheduling policies + trace observability (-k sched)
# ----------------------------------------------------------------------
class SchedSleepJob:
    """A picklable cluster job whose runtime *is* its size hint.

    ``sleep`` releases the GIL, so a two-thread fleet overlaps these
    even on a one-core CI box -- the makespan measures the *schedule*,
    not the interpreter.
    """

    def __init__(self, name: str, seconds: float):
        self.name = name
        self.seconds = seconds

    @property
    def size_hint(self) -> float:
        """Advisory size estimate: the declared runtime."""
        return self.seconds

    def execute(self) -> str:
        """Sleep for the declared duration; the name is the result."""
        time.sleep(self.seconds)
        return self.name


def _sched_jobs() -> list:
    """The sched bench mix: eleven 15 ms points and one 120 ms
    straggler submitted *last* -- the worst case for FIFO on a
    two-worker fleet, and exactly what ``--order size`` fixes."""
    jobs = [SchedSleepJob(f"small{i}", 0.015) for i in range(11)]
    jobs.append(SchedSleepJob("big", 0.12))
    return jobs


def _run_sched_batch(benchmark, **server_kwargs):
    """One traced batch of :func:`_sched_jobs` through a two-worker
    fleet under ``server_kwargs``; trace-derived makespan, critical
    path, and per-worker utilization land in ``extra_info``."""
    from repro.batch.cluster import ClusterExecutor
    from repro.batch.trace import analyze_trace, read_trace

    sink = io.StringIO()
    with _worker_fleet(2, trace=sink, **server_kwargs) as server:
        executor = ClusterExecutor(*server.address)

        def run():
            return dict(executor.run(_sched_jobs()))

        results = run_once(benchmark, run)
    assert len(results) == 12
    report = analyze_trace(read_trace(io.StringIO(sink.getvalue())))
    assert report.n_completed == 12
    benchmark.extra_info["trace_makespan_s"] = round(report.makespan, 4)
    benchmark.extra_info["trace_critical_path_s"] = \
        round(report.critical_path_seconds, 4)
    benchmark.extra_info["trace_utilization"] = {
        name: round(worker.utilization, 3)
        for name, worker in sorted(report.workers.items())}
    return report


def bench_sched_fifo_baseline(benchmark):
    """The straggler-last mix under plain FIFO: the big job starts
    after the queue drains, so one worker idles while it runs."""
    _run_sched_batch(benchmark)


def bench_sched_size_ordered(benchmark):
    """The same mix under ``--order size``: the hinted straggler
    leases first and the small points pack around it."""
    _run_sched_batch(benchmark, order="size")


def bench_sched_policies_enabled(benchmark):
    """The same mix with every policy on (size order + speculation +
    adaptive lease): what the trace-informed flags cost when nothing
    goes wrong (speculation has nothing to duplicate)."""
    report = _run_sched_batch(benchmark, order="size", speculate=True,
                              adaptive_lease=True)
    assert report.n_failed == 0


def bench_sched_trace_analyze(benchmark):
    """Analyzer throughput: lowering a recorded two-worker trace to a
    report (the ``repro-agu trace`` hot path)."""
    from repro.batch.cluster import ClusterExecutor
    from repro.batch.trace import analyze_trace, read_trace

    sink = io.StringIO()
    with _worker_fleet(2, trace=sink) as server:
        executor = ClusterExecutor(*server.address)
        results = dict(executor.run(_sched_jobs()))
        assert len(results) == 12
    trace = read_trace(io.StringIO(sink.getvalue()))

    report = benchmark(analyze_trace, trace)
    assert report.n_completed == 12 and report.workers
