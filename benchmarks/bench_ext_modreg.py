"""EXP-X1: the modify-register extension (beyond the paper).

Classic DSP AGUs carry modify registers whose preloaded constant can be
added to an address register for free; this bench sweeps the MR count
and reports the residual addressing cost after exact value selection
plus iterative re-merging.
"""

from repro.analysis.experiments import (
    ModRegAblationConfig,
    run_modreg_ablation,
)
from repro.analysis.render import modreg_table

from _bench_util import publish, run_once


def bench_exp_x1_modify_registers(benchmark):
    summary = run_once(benchmark, run_modreg_ablation,
                       ModRegAblationConfig())

    publish("exp_x1_modreg", modreg_table(summary).render(), summary)

    by_config: dict[tuple[int, int], list] = {}
    for row in summary.rows:
        by_config.setdefault((row.n, row.k), []).append(row)
    for rows in by_config.values():
        rows.sort(key=lambda row: row.n_modify_registers)
        costs = [row.mean_cost for row in rows]
        # More modify registers never hurt (free set only grows).
        assert costs == sorted(costs, reverse=True)
        # And a 4-MR file recovers a substantial share of the cost.
        assert rows[-1].reduction_vs_no_mr_pct > 20.0
