"""EXP-X2: the access-reordering extension (beyond the paper).

The paper fixes the intra-iteration access order; with a conservative
dependence analysis a code generator may reorder, and the allocator
then reaches cheaper schemes.  This bench quantifies the gain on random
patterns that contain writes (so real dependences constrain the
search).
"""

from repro.analysis.experiments import (
    ReorderAblationConfig,
    run_reorder_ablation,
)
from repro.analysis.render import reorder_table

from _bench_util import publish, run_once


def bench_exp_x2_reordering(benchmark):
    summary = run_once(benchmark, run_reorder_ablation,
                       ReorderAblationConfig())

    headline = (f"\nEXP-X2 headline: reordering reduces addressing cost "
                f"by {summary.mean_reduction_pct:.1f} % on average on "
                f"top of the paper's allocator\n")
    publish("exp_x2_reorder", reorder_table(summary).render() + headline,
            summary)

    for row in summary.rows:
        # By construction reordering can never lose.
        assert row.mean_reordered <= row.mean_fixed_order + 1e-9
    assert summary.mean_reduction_pct > 15.0
