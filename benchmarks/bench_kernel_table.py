"""EXP-K1: DSP kernels -- optimized addressing vs a naive C compiler.

The paper cites [1] for "improvements up to 30 % and 60 % in code size
and speed due to optimized array index computation, as compared to code
compiled by a regular C compiler".  This bench regenerates the per-
kernel table on our kernel library with both programs audited by the
AGU simulator.
"""

from repro.agu.model import AguSpec
from repro.analysis.experiments import (
    KernelComparisonConfig,
    run_kernel_comparison,
)
from repro.analysis.render import kernel_table

from _bench_util import publish, run_once


def bench_exp_k1_kernel_comparison(benchmark):
    """Time: allocate + codegen + simulate every kernel, twice."""
    config = KernelComparisonConfig(spec=AguSpec(4, 1, "kernel_eval"))
    summary = run_once(benchmark, run_kernel_comparison, config)

    headline = (
        f"\nEXP-K1 headline: mean addressing-overhead reduction "
        f"{summary.mean_overhead_reduction_pct:.1f} %, mean whole-"
        f"iteration speed improvement "
        f"{summary.mean_speed_improvement_pct:.1f} % "
        f"(paper, citing [1]: up to 30 % code size / 60 % speed)\n")
    publish("exp_k1_kernels", kernel_table(summary).render() + headline,
            summary)

    # Shape checks: optimized addressing never loses, and the average
    # improvement is substantial (tens of percent).
    for row in summary.rows:
        assert row.optimized_overhead <= row.baseline_overhead
    assert summary.mean_overhead_reduction_pct > 50.0
    assert summary.mean_speed_improvement_pct > 25.0


def bench_exp_k1_tight_registers(benchmark):
    """Same table under register pressure (K=2): merging must engage."""
    config = KernelComparisonConfig(spec=AguSpec(2, 1, "tight"))
    summary = run_once(benchmark, run_kernel_comparison, config)
    publish("exp_k1_kernels_k2", kernel_table(summary).render(), summary)
    assert summary.mean_overhead_reduction_pct > 30.0
