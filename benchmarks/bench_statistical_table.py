"""EXP-S1: the paper's statistical analysis (Results section).

Best-pair merging vs naive arbitrary merging over random access patterns
and the full (N, M, K) grid.  The paper reports "about 40 %" average
reduction in addressing cost; the regenerated table prints our number
next to that claim and archives the summary under results/.

The grid runs sharded through the batch engine (one cacheable job per
grid point); this bench times the single-worker cold path so numbers
stay comparable across machines -- ``bench_perf_scaling -k stats``
covers cached and multi-worker throughput.
"""

from repro.analysis.experiments import (
    StatisticalConfig,
    run_statistical_comparison,
)
from repro.analysis.render import statistical_table

from _bench_util import publish, run_once


def bench_exp_s1_statistical_comparison(benchmark):
    """Time: the full EXP-S1 grid (45 configs x 30 patterns)."""
    summary = run_once(benchmark, run_statistical_comparison,
                       StatisticalConfig())

    table = statistical_table(summary)
    headline = (
        f"\nEXP-S1 headline: average reduction "
        f"{summary.average_reduction_pct:.1f} % "
        f"(paper: 'about 40 % on the average'); "
        f"overall (cost-weighted) {summary.overall_reduction_pct:.1f} %\n")
    publish("exp_s1_statistical", table.render() + headline, summary)

    # Shape checks: the heuristic must win clearly on the full grid.
    assert summary.average_reduction_pct > 20.0
    assert summary.overall_reduction_pct > 15.0
    # And land in the paper's ballpark (generous band around 40 %).
    assert 25.0 <= summary.average_reduction_pct <= 55.0
    # Cold run: every grid point was computed, none served from cache.
    assert summary.n_points_compiled == len(summary.rows)
