"""EXP-X3: the array-layout extension (beyond the paper).

Array base addresses are the compiler's to choose; placing arrays so
that frequent cross-array register transitions land inside the
auto-modify range removes their unit cost -- the layout angle of the
paper's ref [1].
"""

from repro.analysis.experiments import (
    ArrayLayoutAblationConfig,
    run_array_layout_ablation,
)
from repro.analysis.render import array_layout_table

from _bench_util import publish, run_once


def bench_exp_x3_array_layout(benchmark):
    summary = run_once(benchmark, run_array_layout_ablation,
                       ArrayLayoutAblationConfig())

    headline = (f"\nEXP-X3 headline: optimized array placement cuts "
                f"{summary.mean_reduction_pct:.1f} % of the addressing "
                f"cost on multi-array patterns\n")
    publish("exp_x3_arraylayout",
            array_layout_table(summary).render() + headline, summary)

    for row in summary.rows:
        # The optimizer keeps the reference layout when it cannot win.
        assert row.mean_optimized <= row.mean_default + 1e-9
    assert summary.mean_reduction_pct >= 0.0
