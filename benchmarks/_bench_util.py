"""Shared helpers for the benchmark harness.

Every benchmark both *times* its experiment (pytest-benchmark) and
*prints + archives* the table the paper's Results section corresponds
to, so ``pytest benchmarks/ --benchmark-only`` regenerates all reported
artifacts under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.reports import save_report

#: Where rendered tables and JSON summaries land.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def publish(name: str, text: str, summary=None) -> None:
    """Print a table and archive it (plus optional JSON) to results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    # Explicit encoding: the default is locale-dependent, and the
    # tables contain non-ASCII (e.g. box-drawing / +- signs) that
    # breaks under a C/POSIX locale in CI.
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    if summary is not None:
        save_report(summary, RESULTS_DIR / f"{name}.json")


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavyweight experiment with a single round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
