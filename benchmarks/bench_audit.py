"""End-to-end audit throughput: the self-test under the benchmark clock.

Measures the full allocate -> codegen -> simulate -> verify chain over a
batch of random instances -- the library's integrity check doubling as
an end-to-end performance benchmark.
"""

from repro.analysis.selftest import run_self_test

from _bench_util import run_once


def bench_end_to_end_audit(benchmark):
    report = run_once(benchmark, run_self_test, n_instances=150, seed=42)
    assert report.n_instances == 150
    assert report.n_accesses_verified > 0
    # The random mix must exercise both outcomes.
    assert report.n_zero_cost_allocations > 0
    assert report.n_constrained_allocations > 0
    print()
    print(report.summary())
