"""EXP-S2: EXP-S1 marginalized per parameter (N, M, K).

Shows where best-pair merging helps most: the reduction grows with the
register count K and the modify range M (more zero-cost structure to
preserve), and stays stable across N.
"""

from repro.analysis.experiments import (
    StatisticalConfig,
    marginalize,
    run_statistical_comparison,
)
from repro.analysis.render import statistical_marginal_table

from _bench_util import publish, run_once


def bench_exp_s2_marginals(benchmark):
    """Time: the EXP-S2 grid + marginalization."""
    config = StatisticalConfig(patterns_per_config=20)

    def run():
        summary = run_statistical_comparison(config)
        return summary, {axis: marginalize(summary, axis)
                         for axis in ("n", "m", "k")}

    summary, marginals = run_once(benchmark, run)

    text = "\n".join(
        statistical_marginal_table(summary, axis).render()
        for axis in ("n", "m", "k"))
    publish("exp_s2_marginals", text, summary)

    by_k = marginals["k"]
    # Shape: more registers -> more reduction (monotone in K on the
    # default grid).
    reductions = [row.reduction_pct for row in by_k]
    assert reductions == sorted(reductions)
    # All marginals positive: the heuristic wins everywhere.
    for rows in marginals.values():
        for row in rows:
            assert row.reduction_pct > 0
