"""EXP-S3: robustness of the headline claim across offset distributions.

The paper does not pin down what "random access patterns" means;
a faithful reproduction should not depend on the choice.  This bench
repeats the EXP-S1 comparison under all four generator distributions.
"""

from repro.analysis.experiments import (
    DistributionSensitivityConfig,
    run_distribution_sensitivity,
)
from repro.analysis.render import distribution_table

from _bench_util import publish, run_once


def bench_exp_s3_distribution_sensitivity(benchmark):
    summary = run_once(benchmark, run_distribution_sensitivity,
                       DistributionSensitivityConfig())

    publish("exp_s3_distributions",
            distribution_table(summary).render(), summary)

    for row in summary.rows:
        # Best-pair merging must win under every distribution.
        assert row.average_reduction_pct > 10.0, row.distribution
        assert row.mean_optimized <= row.mean_naive
