"""EXP-A1: phase-1 ablation -- matching LB vs exact K~ vs greedy UB.

Quantifies how tight the bootstrap bounds of section 3.1 are and what
exactness costs in search nodes and milliseconds.
"""

from repro.analysis.experiments import (
    PathCoverAblationConfig,
    run_path_cover_ablation,
)
from repro.analysis.render import path_cover_table

from _bench_util import publish, run_once


def bench_exp_a1_path_cover_ablation(benchmark):
    summary = run_once(benchmark, run_path_cover_ablation,
                       PathCoverAblationConfig())

    publish("exp_a1_pathcover", path_cover_table(summary).render(),
            summary)

    for row in summary.rows:
        # LB <= K~ <= greedy on every aggregate.
        assert row.mean_lower_bound <= row.mean_k_tilde + 1e-9
        assert row.mean_k_tilde <= row.mean_greedy + 1e-9
    # The matching bound is tight often enough overall to be useful.
    lb_rate = sum(row.lb_tight_fraction for row in summary.rows) \
        / len(summary.rows)
    assert lb_rate >= 0.3
