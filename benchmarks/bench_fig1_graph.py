"""EXP-F1: the paper's Figure 1 -- the example loop's access graph.

Regenerates the figure (as ASCII + DOT), checks the graph matches the
paper's narrative exactly, and times graph construction plus the exact
``K~`` computation on the example.
"""

from repro.graph.access_graph import AccessGraph
from repro.graph.dot import graph_to_ascii, graph_to_dot
from repro.ir.builder import pattern_from_offsets
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.paths import Path
from repro.pathcover.verify import is_zero_cost_path

from _bench_util import publish

PAPER_OFFSETS = [1, 0, 2, -1, 1, 0, -2]


def bench_fig1_graph_construction(benchmark):
    """Time: building the example's access graph (intra + inter edges)."""
    pattern = pattern_from_offsets(PAPER_OFFSETS)
    graph = benchmark(AccessGraph, pattern, 1)

    # --- Fidelity checks against the paper -----------------------------
    stats = graph.stats()
    assert stats.n_nodes == 7
    # Paper narrative: (a_1, a_3, a_5, a_6) is a path in G...
    assert is_zero_cost_path(Path((0, 2, 4, 5)), pattern, 1,
                             include_wrap=False)
    # ... though its wrap-around is not free (steady-state view).
    assert not is_zero_cost_path(Path((0, 2, 4, 5)), pattern, 1,
                                 include_wrap=True)

    text = (graph_to_ascii(graph, include_inter=True)
            + "\n" + graph_to_dot(graph))
    publish("exp_f1_figure1", text)


def bench_fig1_k_tilde(benchmark):
    """Time: the exact phase-1 search on the example (K~ = 3)."""
    pattern = pattern_from_offsets(PAPER_OFFSETS)
    result = benchmark(minimum_zero_cost_cover, pattern, 1)
    assert result.k_tilde == 3
    assert result.optimal
