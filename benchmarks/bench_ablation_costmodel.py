"""EXP-A2: cost-model ablation -- the literal intra C(P) vs steady state.

The paper defines C(P) over intra-iteration pairs but computes K~ with
inter-iteration dependencies.  This ablation quantifies what merging
with the literal intra-only C(P) leaves on the table in real
(steady-state) cost, justifying the library's default.
"""

from repro.analysis.experiments import (
    CostModelAblationConfig,
    run_cost_model_ablation,
)
from repro.analysis.render import cost_model_table

from _bench_util import publish, run_once


def bench_exp_a2_cost_model(benchmark):
    summary = run_once(benchmark, run_cost_model_ablation,
                       CostModelAblationConfig())

    headline = (f"\nEXP-A2 headline: wrap-aware merging saves "
                f"{summary.mean_penalty_pct:.1f} % steady-state cost on "
                f"average vs merging with the literal intra-only C(P)\n")
    publish("exp_a2_costmodel", cost_model_table(summary).render()
            + headline, summary)

    # Steady-state merging can never lose under its own metric.
    for row in summary.rows:
        assert row.mean_steady_when_merged_steady <= \
            row.mean_steady_when_merged_intra + 1e-9
    assert summary.mean_penalty_pct >= 0.0
