"""Core IR datatypes: arrays, accesses, access patterns, loops, kernels.

The central object is the :class:`AccessPattern`: the ordered sequence of
array accesses performed by one iteration of a loop, together with the
loop step.  This is exactly the input of the paper's problem definition
(section 2): ``N`` accesses ``a_1 .. a_N``, each indexing an array at a
constant offset from the loop variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import IrError
from repro.ir.expr import AffineExpr


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a one-dimensional data array.

    ``element_size`` is measured in address units; DSP data memories are
    word-addressed, so the default of 1 matches the paper's model of a
    "linear arrangement of array elements in a contiguous address space".
    """

    name: str
    element_size: int = 1
    length: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise IrError(f"invalid array name {self.name!r}")
        if self.element_size < 1:
            raise IrError(
                f"array {self.name!r}: element_size must be >= 1, "
                f"got {self.element_size}")
        if self.length is not None and self.length < 0:
            raise IrError(
                f"array {self.name!r}: length must be >= 0, "
                f"got {self.length}")


@dataclass(frozen=True)
class ArrayAccess:
    """A single array access ``array[index]`` inside the loop body.

    ``index`` is an affine expression in the loop variable.  For the
    paper's model the coefficient is 1 and only the constant ``offset``
    varies between accesses.
    """

    array: str
    index: AffineExpr
    is_write: bool = False
    label: str | None = None

    def __post_init__(self) -> None:
        if not self.array or not self.array.isidentifier():
            raise IrError(f"invalid array name {self.array!r}")
        if not isinstance(self.index, AffineExpr):
            raise IrError(
                f"index of access to {self.array!r} must be an AffineExpr, "
                f"got {self.index!r}")

    @property
    def offset(self) -> int:
        """Constant part ``d`` of the index ``c*i + d``."""
        return self.index.offset

    @property
    def coefficient(self) -> int:
        """Loop-variable coefficient ``c`` of the index ``c*i + d``."""
        return self.index.coefficient

    @property
    def group_key(self) -> tuple[str, int]:
        """Key identifying accesses with loop-invariant mutual distance.

        Two accesses have a compile-time-constant address distance iff
        they touch the same array with the same index coefficient.
        """
        return (self.array, self.coefficient)

    def __str__(self) -> str:
        mark = "=" if self.is_write else ""
        return f"{self.array}[{self.index}]{mark}"


@dataclass(frozen=True)
class ScalarUse:
    """A use of a scalar variable in the loop body.

    Scalar uses are not part of the array-addressing problem; they feed
    the complementary offset-assignment substrate (:mod:`repro.offset`).
    """

    name: str
    is_write: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise IrError(f"invalid scalar name {self.name!r}")


@dataclass(frozen=True)
class AccessPattern:
    """The ordered array-access sequence of one loop iteration.

    Parameters
    ----------
    accesses:
        Accesses in program order (``a_1 .. a_N`` in the paper).
    step:
        Loop-variable increment per iteration (``S``); the wrap-around
        address distance of a register from iteration ``t`` to ``t+1``
        depends on it.
    loop_var:
        Name of the loop variable, for rendering only.
    """

    accesses: tuple[ArrayAccess, ...]
    step: int = 1
    loop_var: str = "i"

    def __post_init__(self) -> None:
        if not isinstance(self.accesses, tuple):
            object.__setattr__(self, "accesses", tuple(self.accesses))
        if self.step == 0:
            raise IrError("loop step must be non-zero")
        for position, access in enumerate(self.accesses):
            if not isinstance(access, ArrayAccess):
                raise IrError(
                    f"pattern element {position} is not an ArrayAccess: "
                    f"{access!r}")

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[ArrayAccess]:
        return iter(self.accesses)

    def __getitem__(self, position: int) -> ArrayAccess:
        return self.accesses[position]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def label(self, position: int) -> str:
        """Paper-style label of the access at ``position`` (0-based).

        Returns the access's explicit label when present, else ``a_k``
        with ``k = position + 1`` as in the paper's example.
        """
        access = self.accesses[position]
        return access.label if access.label is not None else f"a_{position + 1}"

    def offsets(self) -> tuple[int, ...]:
        """Constant index offsets of all accesses, in program order."""
        return tuple(access.offset for access in self.accesses)

    def arrays(self) -> tuple[str, ...]:
        """Distinct array names in order of first appearance."""
        seen: dict[str, None] = {}
        for access in self.accesses:
            seen.setdefault(access.array, None)
        return tuple(seen)

    def group_keys(self) -> tuple[tuple[str, int], ...]:
        """Distinct ``(array, coefficient)`` groups, in first-use order."""
        seen: dict[tuple[str, int], None] = {}
        for access in self.accesses:
            seen.setdefault(access.group_key, None)
        return tuple(seen)

    def positions_in_group(self, key: tuple[str, int]) -> tuple[int, ...]:
        """Positions of all accesses belonging to one distance group."""
        return tuple(position for position, access in enumerate(self.accesses)
                     if access.group_key == key)

    def subsequence(self, positions: Sequence[int]) -> tuple[ArrayAccess, ...]:
        """The accesses at the given positions, in the given order."""
        return tuple(self.accesses[position] for position in positions)

    def with_step(self, step: int) -> "AccessPattern":
        """A copy of this pattern with a different loop step."""
        return AccessPattern(self.accesses, step=step, loop_var=self.loop_var)

    def __str__(self) -> str:
        body = ", ".join(
            f"{self.label(position)}:{access}"
            for position, access in enumerate(self.accesses))
        return f"<{body}; step={self.step}>"


@dataclass(frozen=True)
class Loop:
    """A counted loop executing an :class:`AccessPattern` each iteration.

    ``n_iterations`` may be ``None`` when the loop bound is symbolic
    (e.g. ``i <= N``); consumers that need concrete iterations (the AGU
    simulator) must then supply a count explicitly.
    """

    pattern: AccessPattern
    start: int = 0
    n_iterations: int | None = None
    bound_symbol: str | None = None

    def __post_init__(self) -> None:
        if self.n_iterations is not None and self.n_iterations < 0:
            raise IrError(
                f"n_iterations must be >= 0, got {self.n_iterations}")

    @property
    def step(self) -> int:
        """Loop-variable increment per iteration."""
        return self.pattern.step

    @property
    def var(self) -> str:
        """The loop variable's name."""
        return self.pattern.loop_var

    def iteration_values(self, count: int | None = None) -> list[int]:
        """Loop-variable values for ``count`` iterations.

        ``count`` defaults to the loop's own ``n_iterations``; it must be
        given when the bound is symbolic.
        """
        if count is None:
            count = self.n_iterations
        if count is None:
            raise IrError(
                "loop bound is symbolic"
                + (f" ({self.bound_symbol})" if self.bound_symbol else "")
                + "; supply an explicit iteration count")
        return [self.start + k * self.step for k in range(count)]

    def __str__(self) -> str:
        if self.n_iterations is not None:
            bound = str(self.start + self.n_iterations * self.step)
        else:
            bound = self.bound_symbol or "?"
        step_text = f"{self.var} += {self.step}" if self.step != 1 \
            else f"{self.var}++"
        return (f"for ({self.var} = {self.start}; {self.var} < {bound}; "
                f"{step_text}) {self.pattern}")


@dataclass(frozen=True)
class Kernel:
    """A parsed kernel: array declarations, loop, and scalar uses."""

    name: str
    loop: Loop
    arrays: tuple[ArrayDecl, ...] = ()
    scalar_uses: tuple[ScalarUse, ...] = ()
    source: str = ""
    description: str = ""
    _arrays_by_name: dict[str, ArrayDecl] = field(
        init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        by_name: dict[str, ArrayDecl] = {}
        for decl in self.arrays:
            if decl.name in by_name:
                raise IrError(f"duplicate array declaration {decl.name!r}")
            by_name[decl.name] = decl
        for access in self.loop.pattern:
            if access.array not in by_name:
                raise IrError(
                    f"kernel {self.name!r} accesses undeclared array "
                    f"{access.array!r}")
        object.__setattr__(self, "_arrays_by_name", by_name)

    @property
    def pattern(self) -> AccessPattern:
        """The kernel loop's access pattern."""
        return self.loop.pattern

    def array(self, name: str) -> ArrayDecl:
        """Declaration of the named array."""
        try:
            return self._arrays_by_name[name]
        except KeyError:
            raise IrError(f"kernel {self.name!r} has no array {name!r}") \
                from None

    def scalar_sequence(self) -> tuple[str, ...]:
        """Names of scalar uses in program order (offset-assignment input)."""
        return tuple(use.name for use in self.scalar_uses)
