"""Memory layout: mapping arrays to concrete base addresses.

The paper assumes "a linear arrangement of array elements in a contiguous
address space".  :class:`MemoryLayout` realizes that assumption and lets
the AGU simulator turn an :class:`~repro.ir.types.ArrayAccess` plus a
loop-variable value into a concrete address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import LayoutError
from repro.ir.types import ArrayAccess, ArrayDecl, Kernel


@dataclass(frozen=True)
class ArrayPlacement:
    """An array placed at a concrete base address."""

    decl: ArrayDecl
    base: int

    @property
    def name(self) -> str:
        """The placed array's name."""
        return self.decl.name

    @property
    def size(self) -> int | None:
        """Footprint in address units, when the length is known."""
        if self.decl.length is None:
            return None
        return self.decl.length * self.decl.element_size

    @property
    def end(self) -> int | None:
        """One past the last address unit, when the length is known."""
        size = self.size
        return None if size is None else self.base + size


class MemoryLayout:
    """Immutable assignment of base addresses to arrays.

    Use :meth:`contiguous` to pack arrays back-to-back (optionally with a
    guard gap so that accesses to different arrays are never within the
    AGU auto-modify range of each other), or :meth:`explicit` for full
    control.
    """

    #: Default length assumed for arrays declared without one, so that a
    #: contiguous layout can always be produced.  128 words is far beyond
    #: any realistic AGU auto-modify range, which is what matters here.
    DEFAULT_LENGTH = 128

    def __init__(self, placements: Iterable[ArrayPlacement]):
        self._placements: dict[str, ArrayPlacement] = {}
        for placement in placements:
            if placement.name in self._placements:
                raise LayoutError(
                    f"array {placement.name!r} placed twice")
            if placement.base < 0:
                raise LayoutError(
                    f"array {placement.name!r} has negative base "
                    f"{placement.base}")
            self._placements[placement.name] = placement
        self._check_overlaps()

    def _check_overlaps(self) -> None:
        placed = sorted(self._placements.values(), key=lambda p: p.base)
        for first, second in zip(placed, placed[1:]):
            end = first.end
            if end is not None and second.base < end:
                raise LayoutError(
                    f"arrays {first.name!r} (ends at {end}) and "
                    f"{second.name!r} (starts at {second.base}) overlap")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def contiguous(cls, arrays: Iterable[ArrayDecl], origin: int = 0,
                   gap: int = 0) -> "MemoryLayout":
        """Pack arrays back-to-back starting at ``origin``.

        Arrays with unknown length are given :data:`DEFAULT_LENGTH`
        elements of room.  ``gap`` address units are inserted between
        consecutive arrays.
        """
        placements = []
        cursor = origin
        for decl in arrays:
            placements.append(ArrayPlacement(decl, cursor))
            length = decl.length if decl.length is not None \
                else cls.DEFAULT_LENGTH
            cursor += length * decl.element_size + gap
        return cls(placements)

    @classmethod
    def explicit(cls, bases: Mapping[str, int],
                 decls: Iterable[ArrayDecl]) -> "MemoryLayout":
        """Place each declared array at the base given in ``bases``."""
        decls = list(decls)
        known = {decl.name for decl in decls}
        missing = sorted(set(bases) - known)
        if missing:
            raise LayoutError(f"bases given for undeclared arrays: {missing}")
        placements = []
        for decl in decls:
            if decl.name not in bases:
                raise LayoutError(f"no base address for array {decl.name!r}")
            placements.append(ArrayPlacement(decl, bases[decl.name]))
        return cls(placements)

    @classmethod
    def for_kernel(cls, kernel: Kernel, origin: int = 0,
                   gap: int = 0) -> "MemoryLayout":
        """Contiguous layout over a kernel's declared arrays."""
        return cls.contiguous(kernel.arrays, origin=origin, gap=gap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def placement(self, array: str) -> ArrayPlacement:
        """Placement of the named array."""
        try:
            return self._placements[array]
        except KeyError:
            raise LayoutError(f"array {array!r} is not placed") from None

    def base(self, array: str) -> int:
        """Base address of the named array."""
        return self.placement(array).base

    def arrays(self) -> tuple[str, ...]:
        """Placed array names, in insertion order."""
        return tuple(self._placements)

    def address_of(self, access: ArrayAccess, loop_value: int) -> int:
        """Concrete address of ``access`` when the loop variable equals
        ``loop_value``."""
        placement = self.placement(access.array)
        element = access.index.evaluate(loop_value)
        return placement.base + element * placement.decl.element_size

    def __contains__(self, array: str) -> bool:
        return array in self._placements

    def __repr__(self) -> str:
        body = ", ".join(f"{p.name}@{p.base}"
                         for p in self._placements.values())
        return f"MemoryLayout({body})"
