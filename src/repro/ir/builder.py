"""Programmatic construction of loops and access patterns.

Most of the library's algorithms operate on an :class:`AccessPattern`;
this module provides the two common ways of making one without writing
kernel source text:

* :func:`pattern_from_offsets` -- the paper's setting: one array, index
  coefficient 1, a list of constant offsets.
* :class:`LoopBuilder` -- a fluent builder for multi-array kernels.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IrError
from repro.ir.expr import AffineExpr
from repro.ir.types import (
    AccessPattern,
    ArrayAccess,
    ArrayDecl,
    Kernel,
    Loop,
    ScalarUse,
)


def pattern_from_offsets(offsets: Sequence[int], array: str = "A",
                         step: int = 1, loop_var: str = "i") -> AccessPattern:
    """Build the paper's single-array access pattern from offsets.

    ``pattern_from_offsets([1, 0, 2, -1, 1, 0, -2])`` reproduces the
    example loop of the paper's section 2: accesses ``A[i+1], A[i],
    A[i+2], A[i-1], A[i+1], A[i], A[i-2]``.
    """
    accesses = tuple(
        ArrayAccess(array, AffineExpr(1, int(offset), loop_var))
        for offset in offsets)
    return AccessPattern(accesses, step=step, loop_var=loop_var)


def loop_from_offsets(offsets: Sequence[int], array: str = "A",
                      step: int = 1, start: int = 0,
                      n_iterations: int | None = None,
                      loop_var: str = "i") -> Loop:
    """Build a whole loop (with bounds) from a single-array offset list."""
    pattern = pattern_from_offsets(offsets, array=array, step=step,
                                   loop_var=loop_var)
    return Loop(pattern, start=start, n_iterations=n_iterations)


class LoopBuilder:
    """Fluent builder for kernels with several arrays and scalars.

    Example
    -------
    >>> kernel = (LoopBuilder("fir", loop_var="i", start=0, n_iterations=64)
    ...           .array("x", length=256).array("h", length=8).array("y")
    ...           .read("x", 0).read("h", 0).write("y", 0)
    ...           .build())
    >>> len(kernel.pattern)
    3
    """

    def __init__(self, name: str = "kernel", loop_var: str = "i",
                 start: int = 0, step: int = 1,
                 n_iterations: int | None = None,
                 bound_symbol: str | None = None,
                 description: str = ""):
        if step == 0:
            raise IrError("loop step must be non-zero")
        self._name = name
        self._loop_var = loop_var
        self._start = start
        self._step = step
        self._n_iterations = n_iterations
        self._bound_symbol = bound_symbol
        self._description = description
        self._arrays: dict[str, ArrayDecl] = {}
        self._accesses: list[ArrayAccess] = []
        self._scalars: list[ScalarUse] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def array(self, name: str, element_size: int = 1,
              length: int | None = None) -> "LoopBuilder":
        """Declare an array; re-declaring the same name is an error."""
        if name in self._arrays:
            raise IrError(f"array {name!r} already declared")
        self._arrays[name] = ArrayDecl(name, element_size=element_size,
                                       length=length)
        return self

    # ------------------------------------------------------------------
    # Body construction
    # ------------------------------------------------------------------
    def access(self, array: str, offset: int = 0, coefficient: int = 1,
               is_write: bool = False, label: str | None = None) -> "LoopBuilder":
        """Append an access ``array[coefficient*i + offset]``.

        Arrays not declared explicitly are declared implicitly with the
        default element size.
        """
        if array not in self._arrays:
            self._arrays[array] = ArrayDecl(array)
        index = AffineExpr(coefficient, offset, self._loop_var)
        self._accesses.append(
            ArrayAccess(array, index, is_write=is_write, label=label))
        return self

    def read(self, array: str, offset: int = 0, coefficient: int = 1,
             label: str | None = None) -> "LoopBuilder":
        """Append a read access (see :meth:`access`)."""
        return self.access(array, offset, coefficient, is_write=False,
                           label=label)

    def write(self, array: str, offset: int = 0, coefficient: int = 1,
              label: str | None = None) -> "LoopBuilder":
        """Append a write access (see :meth:`access`)."""
        return self.access(array, offset, coefficient, is_write=True,
                           label=label)

    def scalar(self, name: str, is_write: bool = False) -> "LoopBuilder":
        """Record a scalar-variable use (offset-assignment substrate)."""
        self._scalars.append(ScalarUse(name, is_write=is_write))
        return self

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build_pattern(self) -> AccessPattern:
        """The access pattern accumulated so far."""
        return AccessPattern(tuple(self._accesses), step=self._step,
                             loop_var=self._loop_var)

    def build_loop(self) -> Loop:
        """The loop accumulated so far."""
        return Loop(self.build_pattern(), start=self._start,
                    n_iterations=self._n_iterations,
                    bound_symbol=self._bound_symbol)

    def build(self) -> Kernel:
        """The full kernel (loop + declarations + scalar uses)."""
        return Kernel(
            name=self._name,
            loop=self.build_loop(),
            arrays=tuple(self._arrays.values()),
            scalar_uses=tuple(self._scalars),
            description=self._description,
        )
