"""Loop intermediate representation and kernel frontend.

This subpackage provides everything needed to describe the programs the
paper optimizes: affine index expressions (:mod:`repro.ir.expr`), array
declarations, accesses, access patterns and loops (:mod:`repro.ir.types`),
a small C-like frontend (:mod:`repro.ir.lexer`, :mod:`repro.ir.parser`),
a programmatic builder (:mod:`repro.ir.builder`) and a memory layout
model (:mod:`repro.ir.layout`).
"""

from repro.ir.builder import LoopBuilder, loop_from_offsets, pattern_from_offsets
from repro.ir.expr import AffineExpr
from repro.ir.layout import MemoryLayout
from repro.ir.parser import parse_kernel
from repro.ir.types import (
    AccessPattern,
    ArrayAccess,
    ArrayDecl,
    Kernel,
    Loop,
    ScalarUse,
)

__all__ = [
    "AffineExpr",
    "AccessPattern",
    "ArrayAccess",
    "ArrayDecl",
    "Kernel",
    "Loop",
    "LoopBuilder",
    "MemoryLayout",
    "ScalarUse",
    "loop_from_offsets",
    "parse_kernel",
    "pattern_from_offsets",
]
