"""Affine index expressions ``coefficient * var + offset``.

The paper's program model indexes arrays with expressions of the form
``i + d`` for a loop variable ``i`` and a constant ``d``.  We implement
the slightly more general affine form ``c*i + d`` -- the address distance
between two accesses is loop-invariant whenever their coefficients agree,
so everything in the paper carries over to equal-coefficient groups
(coefficient 1 being the paper's case, coefficient 0 a loop-invariant
access).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IrError


@dataclass(frozen=True, order=True)
class AffineExpr:
    """An affine expression ``coefficient * var + offset``.

    ``var`` is symbolic (the loop variable name); arithmetic between two
    expressions is only defined when their variables match or one side is
    constant.
    """

    coefficient: int
    offset: int
    var: str = "i"

    def __post_init__(self) -> None:
        if not isinstance(self.coefficient, int) or isinstance(self.coefficient, bool):
            raise IrError(f"coefficient must be an int, got {self.coefficient!r}")
        if not isinstance(self.offset, int) or isinstance(self.offset, bool):
            raise IrError(f"offset must be an int, got {self.offset!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: int, var: str = "i") -> "AffineExpr":
        """The constant expression ``value`` (coefficient 0)."""
        return cls(0, value, var)

    @classmethod
    def variable(cls, var: str = "i") -> "AffineExpr":
        """The expression ``var`` itself (coefficient 1, offset 0)."""
        return cls(1, 0, var)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the expression does not depend on the variable."""
        return self.coefficient == 0

    def evaluate(self, value: int) -> int:
        """Value of the expression for ``var = value``."""
        return self.coefficient * value + self.offset

    def distance_to(self, other: "AffineExpr") -> int | None:
        """Loop-invariant distance ``other - self``, or None.

        The distance is a compile-time constant exactly when both
        expressions have the same coefficient (and variable); otherwise
        it varies with the loop counter and ``None`` is returned.
        """
        if not isinstance(other, AffineExpr):
            raise IrError(f"cannot take distance to {other!r}")
        if self.coefficient != other.coefficient:
            return None
        if self.coefficient != 0 and self.var != other.var:
            return None
        return other.offset - self.offset

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "AffineExpr") -> None:
        if (self.coefficient != 0 and other.coefficient != 0
                and self.var != other.var):
            raise IrError(
                f"cannot combine expressions over different variables "
                f"{self.var!r} and {other.var!r}")

    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            other = AffineExpr.constant(other, self.var)
        self._check_compatible(other)
        var = self.var if self.coefficient != 0 else other.var
        return AffineExpr(self.coefficient + other.coefficient,
                          self.offset + other.offset, var)

    def __radd__(self, other: int) -> "AffineExpr":
        return self.__add__(other)

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            other = AffineExpr.constant(other, self.var)
        return self.__add__(AffineExpr(-other.coefficient, -other.offset,
                                       other.var))

    def __rsub__(self, other: int) -> "AffineExpr":
        return AffineExpr.constant(other, self.var).__sub__(self)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(-self.coefficient, -self.offset, self.var)

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int) or isinstance(factor, bool):
            raise IrError(
                f"affine expressions can only be scaled by integers, "
                f"got {factor!r}")
        return AffineExpr(self.coefficient * factor, self.offset * factor,
                          self.var)

    def __rmul__(self, factor: int) -> "AffineExpr":
        return self.__mul__(factor)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if self.coefficient == 0:
            return str(self.offset)
        if self.coefficient == 1:
            head = self.var
        elif self.coefficient == -1:
            head = f"-{self.var}"
        else:
            head = f"{self.coefficient}*{self.var}"
        if self.offset == 0:
            return head
        sign = "+" if self.offset > 0 else "-"
        return f"{head}{sign}{abs(self.offset)}"
