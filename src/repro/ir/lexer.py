"""Tokenizer for the C-like kernel language.

The language is the minimal C subset the paper writes its examples in:
``int`` declarations, one counted ``for`` loop, and expression/assignment
statements over array references ``A[i+1]`` and scalar variables.  Both
``/* ... */`` and ``// ...`` comments are accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.errors import ParseError

KEYWORDS = frozenset({"for", "int"})

#: Multi-character operators, longest first so maximal munch works.
_MULTI_CHAR = ("<=", ">=", "==", "!=", "++", "--", "+=", "-=", "*=", "/=")
_SINGLE_CHAR = "+-*/%<>=;,(){}[]"


@unique
class TokenType(Enum):
    """Lexical token categories."""

    INT = "int-literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    OP = "operator"
    EOF = "end-of-input"


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "end of input"
        return f"{self.value!r}"


class Lexer:
    """Hand-written scanner producing a list of :class:`Token`."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------
    # Character-level helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        return self._source[index] if index < len(self._source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                open_line, open_column = self._line, self._column
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise ParseError("unterminated /* comment",
                                     open_line, open_column)
            else:
                return

    # ------------------------------------------------------------------
    # Tokenization
    # ------------------------------------------------------------------
    def tokens(self) -> list[Token]:
        """Scan the whole input; always ends with an EOF token."""
        result: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._source):
                result.append(Token(TokenType.EOF, "", self._line,
                                    self._column))
                return result
            result.append(self._next_token())

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()

        if char.isdigit():
            start = self._pos
            while self._peek().isdigit():
                self._advance()
            if self._peek().isalpha() or self._peek() == "_":
                raise ParseError(
                    f"malformed number near "
                    f"{self._source[start:self._pos + 1]!r}", line, column)
            return Token(TokenType.INT, self._source[start:self._pos],
                         line, column)

        if char.isalpha() or char == "_":
            start = self._pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self._source[start:self._pos]
            kind = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            return Token(kind, text, line, column)

        for op in _MULTI_CHAR:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OP, op, line, column)

        if char in _SINGLE_CHAR:
            self._advance()
            return Token(TokenType.OP, char, line, column)

        raise ParseError(f"unexpected character {char!r}", line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: scan ``source`` into tokens."""
    return Lexer(source).tokens()
