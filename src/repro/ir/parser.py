"""Recursive-descent parser for the C-like kernel language.

The grammar (whitespace and comments handled by the lexer)::

    kernel     := decl* for_loop
    decl       := 'int' declarator (',' declarator)* ';'
    declarator := IDENT ('[' INT ']')?
    for_loop   := 'for' '(' IDENT '=' sint ';' IDENT ('<'|'<=') bound ';'
                  update ')' '{' stmt* '}'
    bound      := sint | IDENT
    update     := IDENT '++' | '++' IDENT | IDENT '+=' INT
                | IDENT '=' IDENT '+' INT
    stmt       := ';' | expr (('='|'+='|'-='|'*=') expr)? ';'
    expr       := term (('+'|'-') term)*
    term       := unary (('*'|'/') unary)*
    unary      := ('+'|'-') unary | postfix
    postfix    := primary ('[' expr ']')?
    primary    := INT | IDENT | '(' expr ')'

Array subscripts must be affine in the loop variable (``i``, ``i+3``,
``2*i-1``, or a constant).  Accesses are recorded in C evaluation order:
for an assignment the right-hand side is evaluated first, then the
left-hand side location is written (for compound assignments the
location is read first, then written).

Arrays need not be declared: any subscripted identifier is implicitly
declared, matching the paper's bare example loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.ir.expr import AffineExpr
from repro.ir.lexer import Token, TokenType, tokenize
from repro.ir.types import (
    AccessPattern,
    ArrayAccess,
    ArrayDecl,
    Kernel,
    Loop,
    ScalarUse,
)


# ----------------------------------------------------------------------
# Expression AST (internal to the parser)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Num:
    value: int


@dataclass(frozen=True)
class _Var:
    name: str
    token: Token


@dataclass(frozen=True)
class _ArrayRef:
    array: str
    index: "_Expr"
    token: Token


@dataclass(frozen=True)
class _UnaryOp:
    op: str
    operand: "_Expr"
    token: Token


@dataclass(frozen=True)
class _BinOp:
    op: str
    left: "_Expr"
    right: "_Expr"
    token: Token


_Expr = _Num | _Var | _ArrayRef | _UnaryOp | _BinOp


@dataclass(frozen=True)
class _LoopHeader:
    var: str
    start: int
    relation: str
    bound_value: int | None
    bound_symbol: str | None
    step: int


class Parser:
    """Parser state over a token list (see module docstring for grammar)."""

    def __init__(self, source: str, name: str = "kernel"):
        self._tokens = tokenize(source)
        self._pos = 0
        self._source = source
        self._name = name
        self._declared_scalars: dict[str, None] = {}
        self._arrays: dict[str, ArrayDecl] = {}
        self._accesses: list[ArrayAccess] = []
        self._scalar_uses: list[ScalarUse] = []
        self._loop_header: _LoopHeader | None = None

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: str | None = None) -> bool:
        token = self._peek()
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def _match(self, type_: TokenType, value: str | None = None) -> Token | None:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: str | None = None,
                context: str = "") -> Token:
        token = self._peek()
        if not self._check(type_, value):
            expected = value if value is not None else type_.value
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {expected!r}{where}, found {token}",
                token.line, token.column)
        return self._advance()

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Grammar: top level
    # ------------------------------------------------------------------
    def parse(self) -> Kernel:
        """Parse the whole source into a :class:`Kernel`."""
        while self._check(TokenType.KEYWORD, "int"):
            self._parse_declaration()
        if not self._check(TokenType.KEYWORD, "for"):
            raise self._error("expected a 'for' loop")
        header, statements = self._parse_for_loop()
        self._expect(TokenType.EOF, context="after the loop")

        self._loop_header = header
        for statement in statements:
            self._record_statement(statement)

        pattern = AccessPattern(tuple(self._accesses), step=header.step,
                                loop_var=header.var)
        n_iterations = self._iteration_count(header)
        loop = Loop(pattern, start=header.start, n_iterations=n_iterations,
                    bound_symbol=header.bound_symbol)
        return Kernel(
            name=self._name,
            loop=loop,
            arrays=tuple(self._arrays.values()),
            scalar_uses=tuple(self._scalar_uses),
            source=self._source,
        )

    def _parse_declaration(self) -> None:
        self._expect(TokenType.KEYWORD, "int")
        while True:
            name_token = self._expect(TokenType.IDENT,
                                      context="declaration")
            name = name_token.value
            if name in self._arrays or name in self._declared_scalars:
                raise self._error(f"{name!r} declared twice", name_token)
            if self._match(TokenType.OP, "["):
                length_token = self._expect(TokenType.INT,
                                            context="array length")
                self._expect(TokenType.OP, "]", context="array declaration")
                self._arrays[name] = ArrayDecl(name,
                                               length=int(length_token.value))
            else:
                self._declared_scalars[name] = None
            if not self._match(TokenType.OP, ","):
                break
        self._expect(TokenType.OP, ";", context="declaration")

    # ------------------------------------------------------------------
    # Grammar: the for loop
    # ------------------------------------------------------------------
    def _parse_for_loop(self) -> tuple[_LoopHeader, list[tuple[str, _Expr, _Expr | None]]]:
        self._expect(TokenType.KEYWORD, "for")
        self._expect(TokenType.OP, "(", context="for loop")

        var_token = self._expect(TokenType.IDENT, context="loop initializer")
        var = var_token.value
        self._expect(TokenType.OP, "=", context="loop initializer")
        start = self._parse_signed_int("loop start value")
        self._expect(TokenType.OP, ";", context="for loop")

        cond_var = self._expect(TokenType.IDENT, context="loop condition")
        if cond_var.value != var:
            raise self._error(
                f"loop condition tests {cond_var.value!r}, expected the "
                f"loop variable {var!r}", cond_var)
        relation_token = self._peek()
        if self._match(TokenType.OP, "<="):
            relation = "<="
        elif self._match(TokenType.OP, "<"):
            relation = "<"
        else:
            raise self._error("loop condition must use '<' or '<='",
                              relation_token)
        bound_value: int | None = None
        bound_symbol: str | None = None
        if self._check(TokenType.IDENT):
            bound_symbol = self._advance().value
        else:
            bound_value = self._parse_signed_int("loop bound")
        self._expect(TokenType.OP, ";", context="for loop")

        step = self._parse_update(var)
        self._expect(TokenType.OP, ")", context="for loop")

        self._expect(TokenType.OP, "{", context="loop body")
        statements: list[tuple[str, _Expr, _Expr | None]] = []
        while not self._check(TokenType.OP, "}"):
            if self._check(TokenType.EOF):
                raise self._error("unterminated loop body (missing '}')")
            statement = self._parse_statement()
            if statement is not None:
                statements.append(statement)
        self._expect(TokenType.OP, "}", context="loop body")

        header = _LoopHeader(var=var, start=start, relation=relation,
                             bound_value=bound_value,
                             bound_symbol=bound_symbol, step=step)
        return header, statements

    def _parse_signed_int(self, context: str) -> int:
        sign = 1
        if self._match(TokenType.OP, "-"):
            sign = -1
        elif self._match(TokenType.OP, "+"):
            sign = 1
        token = self._expect(TokenType.INT, context=context)
        return sign * int(token.value)

    def _parse_update(self, var: str) -> int:
        """Parse the loop update clause; returns the step."""
        if self._match(TokenType.OP, "++"):
            name = self._expect(TokenType.IDENT, context="loop update")
            if name.value != var:
                raise self._error(
                    f"loop update changes {name.value!r}, expected {var!r}",
                    name)
            return 1
        name_token = self._expect(TokenType.IDENT, context="loop update")
        if name_token.value != var:
            raise self._error(
                f"loop update changes {name_token.value!r}, expected "
                f"{var!r}", name_token)
        if self._match(TokenType.OP, "++"):
            return 1
        if self._match(TokenType.OP, "--"):
            return -1
        if self._match(TokenType.OP, "+="):
            return self._parse_signed_int("loop step")
        if self._match(TokenType.OP, "-="):
            return -self._parse_signed_int("loop step")
        if self._match(TokenType.OP, "="):
            base = self._expect(TokenType.IDENT, context="loop update")
            if base.value != var:
                raise self._error(
                    f"loop update must have the form {var} = {var} + c",
                    base)
            if self._match(TokenType.OP, "+"):
                return self._parse_signed_int("loop step")
            if self._match(TokenType.OP, "-"):
                return -self._parse_signed_int("loop step")
            raise self._error("loop update must add a constant")
        raise self._error("unsupported loop update clause")

    # ------------------------------------------------------------------
    # Grammar: statements and expressions
    # ------------------------------------------------------------------
    def _parse_statement(self) -> tuple[str, _Expr, _Expr | None] | None:
        """Parse one statement; returns ``(op, target/expr, rhs)``.

        ``op`` is ``'expr'`` for a bare expression statement (rhs None),
        or the assignment operator text for assignments.
        """
        if self._match(TokenType.OP, ";"):
            return None
        left = self._parse_expr()
        for op in ("=", "+=", "-=", "*=", "/="):
            if self._match(TokenType.OP, op):
                right = self._parse_expr()
                self._expect(TokenType.OP, ";", context="assignment")
                if not isinstance(left, (_Var, _ArrayRef)):
                    raise self._error(
                        "left-hand side of assignment must be a variable "
                        "or array element")
                return (op, left, right)
        self._expect(TokenType.OP, ";", context="expression statement")
        return ("expr", left, None)

    def _parse_expr(self) -> _Expr:
        left = self._parse_term()
        while True:
            token = self._peek()
            if self._match(TokenType.OP, "+"):
                left = _BinOp("+", left, self._parse_term(), token)
            elif self._match(TokenType.OP, "-"):
                left = _BinOp("-", left, self._parse_term(), token)
            else:
                return left

    def _parse_term(self) -> _Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if self._match(TokenType.OP, "*"):
                left = _BinOp("*", left, self._parse_unary(), token)
            elif self._match(TokenType.OP, "/"):
                left = _BinOp("/", left, self._parse_unary(), token)
            else:
                return left

    def _parse_unary(self) -> _Expr:
        token = self._peek()
        if self._match(TokenType.OP, "-"):
            return _UnaryOp("-", self._parse_unary(), token)
        if self._match(TokenType.OP, "+"):
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> _Expr:
        primary = self._parse_primary()
        if self._check(TokenType.OP, "["):
            if not isinstance(primary, _Var):
                raise self._error("only identifiers can be subscripted")
            self._advance()
            index = self._parse_expr()
            close = self._expect(TokenType.OP, "]", context="subscript")
            return _ArrayRef(primary.name, index, close)
        return primary

    def _parse_primary(self) -> _Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return _Num(int(token.value))
        if token.type is TokenType.IDENT:
            self._advance()
            return _Var(token.value, token)
        if self._match(TokenType.OP, "("):
            inner = self._parse_expr()
            self._expect(TokenType.OP, ")", context="parenthesized expression")
            return inner
        raise self._error(f"expected an expression, found {token}")

    # ------------------------------------------------------------------
    # Semantic pass: record accesses in evaluation order
    # ------------------------------------------------------------------
    def _record_statement(self,
                          statement: tuple[str, _Expr, _Expr | None]) -> None:
        op, left, right = statement
        if op == "expr":
            self._record_expr(left, is_write=False)
            return
        # Assignment: RHS first, then (for compound ops) the LHS read,
        # then the LHS write.
        assert right is not None
        self._record_expr(right, is_write=False)
        if op != "=":
            self._record_expr(left, is_write=False)
        self._record_expr(left, is_write=True)

    def _record_expr(self, node: _Expr, is_write: bool) -> None:
        if isinstance(node, _Num):
            return
        if isinstance(node, _Var):
            self._record_scalar(node, is_write)
            return
        if isinstance(node, _ArrayRef):
            # C evaluation: the index is computed before the element is
            # touched.  The index may only involve scalars/loop variable,
            # not other array accesses.
            self._check_index_pure(node.index)
            affine = self._to_affine(node.index)
            if node.array not in self._arrays:
                if node.array in self._declared_scalars:
                    raise self._error(
                        f"{node.array!r} declared scalar but subscripted",
                        node.token)
                self._arrays[node.array] = ArrayDecl(node.array)
            self._accesses.append(
                ArrayAccess(node.array, affine, is_write=is_write))
            return
        if isinstance(node, _UnaryOp):
            self._record_expr(node.operand, is_write)
            return
        if isinstance(node, _BinOp):
            self._record_expr(node.left, False)
            self._record_expr(node.right, False)
            return
        raise self._error(f"internal: unknown AST node {node!r}")

    def _record_scalar(self, node: _Var, is_write: bool) -> None:
        assert self._loop_header is not None
        name = node.name
        if name == self._loop_header.var:
            if is_write:
                raise self._error(
                    f"loop variable {name!r} must not be assigned in the "
                    f"body", node.token)
            return
        if name == self._loop_header.bound_symbol:
            return
        self._scalar_uses.append(ScalarUse(name, is_write=is_write))

    def _check_index_pure(self, node: _Expr) -> None:
        if isinstance(node, _ArrayRef):
            raise self._error("array accesses inside subscripts are not "
                              "supported", node.token)
        if isinstance(node, _UnaryOp):
            self._check_index_pure(node.operand)
        elif isinstance(node, _BinOp):
            self._check_index_pure(node.left)
            self._check_index_pure(node.right)

    def _to_affine(self, node: _Expr) -> AffineExpr:
        """Evaluate a subscript AST to an affine expression in the loop
        variable; anything else is a parse error."""
        assert self._loop_header is not None
        var = self._loop_header.var
        if isinstance(node, _Num):
            return AffineExpr.constant(node.value, var)
        if isinstance(node, _Var):
            if node.name != var:
                raise self._error(
                    f"subscript uses {node.name!r}; only the loop variable "
                    f"{var!r} and constants are allowed", node.token)
            return AffineExpr.variable(var)
        if isinstance(node, _UnaryOp):
            return -self._to_affine(node.operand)
        if isinstance(node, _BinOp):
            left = self._to_affine(node.left)
            right = self._to_affine(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                if left.is_constant:
                    return right * left.offset
                if right.is_constant:
                    return left * right.offset
                raise self._error("subscript is not affine in the loop "
                                  "variable", node.token)
            raise self._error(
                f"operator {node.op!r} not allowed in subscripts",
                node.token)
        raise self._error(f"internal: unknown subscript node {node!r}")

    def _iteration_count(self, header: _LoopHeader) -> int | None:
        if header.bound_value is None:
            return None
        start, bound, step = header.start, header.bound_value, header.step
        if step > 0:
            limit = bound - start
            if header.relation == "<=":
                return max(0, limit // step + 1)
            return max(0, -(-limit // step))  # ceil(limit / step)
        # Decreasing loop with '<'/'<=' never terminates sensibly unless
        # it starts below the bound; model the count conservatively.
        if header.relation == "<=":
            return 0 if start > bound else None
        return 0 if start >= bound else None


def parse_kernel(source: str, name: str = "kernel") -> Kernel:
    """Parse kernel source text into a :class:`~repro.ir.types.Kernel`.

    Example
    -------
    >>> kernel = parse_kernel('''
    ...     for (i = 2; i <= N; i++) {
    ...         A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
    ...     }
    ... ''')
    >>> kernel.pattern.offsets()
    (1, 0, 2, -1, 1, 0, -2)
    """
    return Parser(source, name=name).parse()
