"""General offset assignment: scalars over ``k`` address registers.

GOA partitions the variables into at most ``k`` groups, gives each group
its own address register and contiguous memory region, and pays the SOA
cost of each register's *projected* access subsequence.  (Register setup
costs are reported separately as ``n_registers``; they are one-time,
not per-iteration.)

Two partitioners are provided:

* :func:`goa_first_use` -- deal variables round-robin by first use
  (baseline);
* :func:`goa_greedy` -- local search: start from one group (pure SOA)
  and repeatedly apply the single-variable move (to another or a new
  group) that lowers total cost the most.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OffsetAssignmentError
from repro.offset.sequence import AccessSequence
from repro.offset.soa import Assignment, assignment_cost, tiebreak_soa


@dataclass(frozen=True)
class GoaResult:
    """A GOA partition with its per-register layouts and total cost."""

    groups: tuple[Assignment, ...]
    cost: int

    @property
    def n_registers(self) -> int:
        """Address registers the assignment distributes the variables
        over."""
        return len(self.groups)


def goa_cost(groups: tuple[tuple[str, ...], ...] | list[list[str]],
             sequence: AccessSequence, auto_range: int = 1) -> int:
    """Total SOA cost of a partition's projected subsequences.

    Each group is evaluated with the layout order given; use
    :func:`soa_layouts` to re-optimize layouts first.
    """
    seen: set[str] = set()
    for group in groups:
        for name in group:
            if name in seen:
                raise OffsetAssignmentError(
                    f"variable {name!r} in two groups")
            seen.add(name)
    missing = [name for name in sequence.variables() if name not in seen]
    if missing:
        raise OffsetAssignmentError(f"partition misses variables {missing}")
    total = 0
    for group in groups:
        projected = sequence.project(frozenset(group))
        total += assignment_cost(tuple(group), projected, auto_range)
    return total


def soa_layouts(partition: list[list[str]],
                sequence: AccessSequence) -> tuple[Assignment, ...]:
    """Optimize each group's internal layout with the SOA heuristic."""
    layouts = []
    for group in partition:
        projected = sequence.project(frozenset(group))
        layout = tiebreak_soa(projected)
        # Variables that never appear in the projection keep their
        # relative order at the end.
        tail = tuple(name for name in group if name not in layout)
        layouts.append(layout + tail)
    return tuple(layouts)


def optimal_goa(sequence: AccessSequence, n_registers: int,
                auto_range: int = 1,
                max_variables: int = 7) -> GoaResult:
    """Exhaustive GOA optimum for tiny instances (test oracle).

    Enumerates all partitions of the variables into at most
    ``n_registers`` groups (Stirling-number many) and, per group,
    optimizes the layout exhaustively.  Guarded by ``max_variables``.
    """
    if n_registers < 1:
        raise OffsetAssignmentError(
            f"n_registers must be >= 1, got {n_registers}")
    variables = sequence.variables()
    if len(variables) > max_variables:
        raise OffsetAssignmentError(
            f"{len(variables)} variables exceed the exhaustive-GOA "
            f"guard of {max_variables}")
    if not variables:
        return GoaResult((), 0)

    from repro.offset.soa import optimal_assignment

    best_groups: tuple[Assignment, ...] | None = None
    best_cost: int | None = None

    def partitions(items: list[str], limit: int):
        if not items:
            yield []
            return
        head, *rest = items
        for partial in partitions(rest, limit):
            for index in range(len(partial)):
                partial[index].append(head)
                yield partial
                partial[index].pop()
            if len(partial) < limit:
                partial.append([head])
                yield partial
                partial.pop()

    for partition in partitions(list(variables), n_registers):
        layouts = []
        cost = 0
        for group in partition:
            projected = sequence.project(frozenset(group))
            layout = optimal_assignment(projected,
                                        auto_range=auto_range)
            tail = tuple(name for name in group if name not in layout)
            layouts.append(layout + tail)
            cost += assignment_cost(layouts[-1], projected, auto_range)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_groups = tuple(layouts)
    assert best_groups is not None and best_cost is not None
    return GoaResult(best_groups, best_cost)


def goa_first_use(sequence: AccessSequence, n_registers: int,
                  auto_range: int = 1) -> GoaResult:
    """Round-robin-by-first-use baseline partition."""
    if n_registers < 1:
        raise OffsetAssignmentError(
            f"n_registers must be >= 1, got {n_registers}")
    variables = sequence.variables()
    partition: list[list[str]] = [[] for _ in range(
        min(n_registers, max(1, len(variables))))]
    for index, name in enumerate(variables):
        partition[index % len(partition)].append(name)
    partition = [group for group in partition if group]
    layouts = tuple(tuple(group) for group in partition)
    return GoaResult(layouts, goa_cost(layouts, sequence, auto_range))


def goa_greedy(sequence: AccessSequence, n_registers: int,
               auto_range: int = 1, max_rounds: int = 64) -> GoaResult:
    """Local-search GOA: best single-variable move, until no gain.

    Layouts are re-optimized with the SOA tie-break heuristic after
    every move, so the search scores true (heuristic) SOA costs.

    A candidate move only changes its source and target groups, and a
    group's SOA cost depends only on the *set* of variables in it (the
    projected subsequence and the tie-break layout are both
    order-free), so moves are scored incrementally from memoized
    per-group costs instead of re-running ``soa_layouts`` +
    ``goa_cost`` over the whole partition -- same costs, same move
    selection, same result, one SOA solve per *distinct* group.
    """
    if n_registers < 1:
        raise OffsetAssignmentError(
            f"n_registers must be >= 1, got {n_registers}")
    variables = list(sequence.variables())
    if not variables:
        return GoaResult((), 0)

    group_costs: dict[frozenset[str], int] = {}

    def group_cost(group: list[str]) -> int:
        """Memoized SOA cost of one group's projected subsequence."""
        key = frozenset(group)
        cost = group_costs.get(key)
        if cost is None:
            projected = sequence.project(key)
            cost = assignment_cost(tiebreak_soa(projected), projected,
                                   auto_range)
            group_costs[key] = cost
        return cost

    partition: list[list[str]] = [list(variables)]
    best_cost = group_cost(partition[0])
    for _round in range(max_rounds):
        # The best move, as (cost, source_index, name, target_index);
        # strict < keeps the first minimum, exactly like rescoring
        # every candidate partition from scratch did.
        move_best: tuple[int, int, str, int] | None = None
        for source_index, group in enumerate(partition):
            source_cost = group_cost(group)
            for name in group:
                reduced_cost = group_cost(
                    [other for other in group if other != name])
                base = best_cost - source_cost + reduced_cost
                targets = list(range(len(partition)))
                if len(partition) < n_registers:
                    targets.append(len(partition))  # a brand-new group
                for target_index in targets:
                    if target_index == source_index:
                        continue
                    if target_index == len(partition):
                        grown_cost = group_cost([name])
                        target_cost = 0
                    else:
                        target = partition[target_index]
                        grown_cost = group_cost(target + [name])
                        target_cost = group_cost(target)
                    cost = base - target_cost + grown_cost
                    if move_best is None or cost < move_best[0]:
                        move_best = (cost, source_index, name,
                                     target_index)
        if move_best is None or move_best[0] >= best_cost:
            break
        best_cost, source_index, name, target_index = move_best
        if target_index == len(partition):
            partition.append([name])
        else:
            partition[target_index].append(name)
        partition[source_index].remove(name)
        partition = [group for group in partition if group]
    return GoaResult(soa_layouts(partition, sequence), best_cost)
