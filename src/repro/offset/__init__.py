"""Scalar-variable offset assignment (the paper's refs [4, 5]).

The paper positions its array-addressing technique as "complementary to
work done on optimized addressing of scalar program variables": simple
offset assignment (SOA) chooses a memory layout for scalars so that one
auto-inc/dec address register can walk the access sequence as freely as
possible, and general offset assignment (GOA) splits the variables over
``k`` address registers.  This subpackage implements:

* :func:`~repro.offset.soa.ofu_assignment` -- the order-of-first-use
  baseline layout;
* :func:`~repro.offset.soa.liao_soa` -- Liao et al.'s maximum-weight
  path-cover heuristic (ref [4]);
* :func:`~repro.offset.soa.tiebreak_soa` -- the Leupers/Marwedel
  tie-break refinement (ref [5]);
* :func:`~repro.offset.soa.optimal_assignment` -- brute-force optimum
  for small variable counts (test oracle);
* :mod:`repro.offset.goa` -- GOA partitioning over ``k`` registers.
"""

from repro.offset.access_graph import VariableAccessGraph
from repro.offset.goa import (
    GoaResult,
    goa_cost,
    goa_first_use,
    goa_greedy,
    optimal_goa,
)
from repro.offset.sequence import AccessSequence, random_sequence
from repro.offset.soa import (
    assignment_cost,
    liao_soa,
    ofu_assignment,
    optimal_assignment,
    tiebreak_soa,
)

__all__ = [
    "AccessSequence",
    "GoaResult",
    "VariableAccessGraph",
    "assignment_cost",
    "goa_cost",
    "goa_first_use",
    "goa_greedy",
    "liao_soa",
    "ofu_assignment",
    "optimal_assignment",
    "optimal_goa",
    "random_sequence",
    "tiebreak_soa",
]
