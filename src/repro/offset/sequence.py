"""Scalar access sequences: the input of offset assignment.

An :class:`AccessSequence` is simply the ordered list of scalar-variable
names a basic block touches.  It can come from the kernel frontend
(scalar uses recorded by the parser) or from the seeded random generator
used by experiment EXP-O1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import OffsetAssignmentError
from repro.ir.types import Kernel


@dataclass(frozen=True)
class AccessSequence:
    """An ordered sequence of scalar-variable accesses."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.names, tuple):
            object.__setattr__(self, "names", tuple(self.names))
        for name in self.names:
            if not name or not name.isidentifier():
                raise OffsetAssignmentError(
                    f"invalid variable name {name!r}")

    @classmethod
    def from_kernel(cls, kernel: Kernel) -> "AccessSequence":
        """The kernel's scalar uses, in program order."""
        return cls(kernel.scalar_sequence())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def variables(self) -> tuple[str, ...]:
        """Distinct variables in order of first use."""
        seen: dict[str, None] = {}
        for name in self.names:
            seen.setdefault(name, None)
        return tuple(seen)

    def transitions(self) -> list[tuple[str, str]]:
        """Consecutive access pairs with distinct variables.

        Same-variable repetitions are dropped: the register does not
        move, so they can never cost anything.
        """
        return [(a, b) for a, b in zip(self.names, self.names[1:])
                if a != b]

    def project(self, keep: set[str] | frozenset[str]) -> "AccessSequence":
        """The subsequence touching only the given variables.

        This is how GOA evaluates one register's share of the work.
        """
        return AccessSequence(tuple(name for name in self.names
                                    if name in keep))

    def __str__(self) -> str:
        return " ".join(self.names)


def random_sequence(n_variables: int, length: int,
                    seed: int = 0,
                    locality: float = 0.5) -> AccessSequence:
    """A seeded random access sequence over ``v0 .. v{n-1}``.

    ``locality`` in ``[0, 1]`` is the probability that the next access
    reuses one of the two most recent variables -- real basic blocks
    revisit a working set rather than sampling uniformly.
    """
    if n_variables < 1:
        raise OffsetAssignmentError(
            f"n_variables must be >= 1, got {n_variables}")
    if length < 0:
        raise OffsetAssignmentError(f"length must be >= 0, got {length}")
    if not 0.0 <= locality <= 1.0:
        raise OffsetAssignmentError(
            f"locality must be in [0, 1], got {locality}")
    rng = random.Random(seed)
    variables = [f"v{index}" for index in range(n_variables)]
    names: list[str] = []
    recent: list[str] = []
    for _ in range(length):
        if recent and rng.random() < locality:
            name = rng.choice(recent)
        else:
            name = rng.choice(variables)
        names.append(name)
        if name in recent:
            recent.remove(name)
        recent.insert(0, name)
        del recent[2:]
    return AccessSequence(tuple(names))
