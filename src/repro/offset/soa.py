"""Simple offset assignment: heuristics and the brute-force optimum.

An *assignment* is an ordering of the variables: the variable at index
``j`` lives at offset ``j``.  A transition between consecutively
accessed variables is free when their offsets differ by at most the
auto-modify range (1 for plain auto-inc/dec); every other transition
costs one extra instruction.  SOA asks for the ordering minimizing the
total cost of a given access sequence.

* :func:`ofu_assignment` -- lay variables out in order of first use
  (what a straightforward compiler does; the standard baseline).
* :func:`liao_soa` -- Liao et al. (PLDI 1995, the paper's ref [4]):
  greedy maximum-weight path cover of the access graph, Kruskal-style.
* :func:`tiebreak_soa` -- Leupers/Marwedel (ICCAD 1996, ref [5]):
  same skeleton, but equal-weight edges are ordered by a tie-break that
  prefers edges at vertices with little remaining weight.
* :func:`optimal_assignment` -- exhaustive search over orderings
  (factorial; a test oracle for small variable counts).
"""

from __future__ import annotations

import itertools

from repro.errors import OffsetAssignmentError
from repro.offset.access_graph import VariableAccessGraph
from repro.offset.sequence import AccessSequence

Assignment = tuple[str, ...]


def assignment_cost(assignment: Assignment, sequence: AccessSequence,
                    auto_range: int = 1) -> int:
    """Unit-cost address computations of a layout on a sequence."""
    if auto_range < 0:
        raise OffsetAssignmentError(
            f"auto_range must be >= 0, got {auto_range}")
    position = {name: index for index, name in enumerate(assignment)}
    missing = [name for name in sequence.variables()
               if name not in position]
    if missing:
        raise OffsetAssignmentError(
            f"assignment misses variables {missing}")
    if len(position) != len(assignment):
        raise OffsetAssignmentError("assignment repeats a variable")
    return sum(1 for a, b in sequence.transitions()
               if abs(position[a] - position[b]) > auto_range)


def ofu_assignment(sequence: AccessSequence) -> Assignment:
    """Order of first use: the naive compiler layout."""
    return sequence.variables()


def liao_soa(sequence: AccessSequence) -> Assignment:
    """Liao's greedy path-cover heuristic (ref [4])."""
    return _path_cover_soa(sequence, tie_break=False)


def tiebreak_soa(sequence: AccessSequence) -> Assignment:
    """Liao's heuristic with the Leupers/Marwedel tie-break (ref [5])."""
    return _path_cover_soa(sequence, tie_break=True)


def optimal_assignment(sequence: AccessSequence,
                       auto_range: int = 1,
                       max_variables: int = 9) -> Assignment:
    """Exhaustive optimum over all orderings (test oracle).

    Guarded by ``max_variables`` because the search is factorial.
    """
    variables = sequence.variables()
    if len(variables) > max_variables:
        raise OffsetAssignmentError(
            f"{len(variables)} variables exceed the exhaustive-search "
            f"guard of {max_variables}")
    if not variables:
        return ()
    best: Assignment = variables
    best_cost = assignment_cost(best, sequence, auto_range)
    # The layout's mirror image has equal cost: keep only the
    # lexicographically smaller endpoint ordering of each mirror pair,
    # which skips exactly one member of every pair and halves the
    # search.  (Endpoints are distinct variable names, so ties are
    # impossible for n >= 2.)
    for permutation in itertools.permutations(variables):
        if permutation[0] > permutation[-1]:
            continue
        cost = assignment_cost(permutation, sequence, auto_range)
        if cost < best_cost:
            best, best_cost = permutation, cost
            if best_cost == 0:
                break
    return best


# ----------------------------------------------------------------------
# The shared greedy path-cover skeleton
# ----------------------------------------------------------------------
def _path_cover_soa(sequence: AccessSequence, tie_break: bool) -> Assignment:
    graph = VariableAccessGraph(sequence)
    variables = graph.variables
    if not variables:
        return ()

    first_use = {name: index for index, name in enumerate(variables)}

    def edge_key(edge: tuple[int, str, str]) -> tuple:
        weight, u, v = edge
        if tie_break:
            # Prefer heavy edges; among equals, edges whose endpoints
            # have little total weight elsewhere (they are hardest to
            # serve later); finally first-use order for determinism.
            lost = graph.incident_weight(u) + graph.incident_weight(v) \
                - 2 * weight
            return (-weight, lost, first_use[u], first_use[v])
        return (-weight, first_use[u], first_use[v])

    degree: dict[str, int] = {name: 0 for name in variables}
    neighbor: dict[str, list[str]] = {name: [] for name in variables}
    leader: dict[str, str] = {name: name for name in variables}

    def find(name: str) -> str:
        while leader[name] != name:
            leader[name] = leader[leader[name]]
            name = leader[name]
        return name

    for _weight, u, v in sorted(graph.edges(), key=edge_key):
        if degree[u] >= 2 or degree[v] >= 2:
            continue
        if find(u) == find(v):
            continue  # would close a cycle
        degree[u] += 1
        degree[v] += 1
        neighbor[u].append(v)
        neighbor[v].append(u)
        leader[find(u)] = find(v)

    # Walk out the chains; isolated variables become 1-element chains.
    visited: set[str] = set()
    chains: list[list[str]] = []
    # Endpoints first (degree <= 1) so every chain is walked end-to-end.
    for name in sorted(variables, key=lambda n: first_use[n]):
        if name in visited or degree[name] > 1:
            continue
        chain = [name]
        visited.add(name)
        while True:
            nexts = [other for other in neighbor[chain[-1]]
                     if other not in visited]
            if not nexts:
                break
            chain.append(nexts[0])
            visited.add(nexts[0])
        chains.append(chain)
    # Any remaining unvisited vertices would sit on a cycle, which the
    # union-find excludes; this is a genuine invariant.
    unvisited = [name for name in variables if name not in visited]
    if unvisited:
        raise OffsetAssignmentError(
            f"internal error: cycle in SOA path cover at {unvisited}")

    layout: list[str] = []
    for chain in chains:
        layout.extend(chain)
    return tuple(layout)
