"""The weighted variable access graph of offset assignment.

Vertices are the scalar variables; the weight of edge ``{u, v}`` counts
how often ``u`` and ``v`` are accessed consecutively.  An assignment
that lays a path of this graph out contiguously makes all its
transitions free (auto-inc/dec), so SOA is a maximum-weight path cover
problem -- Liao et al.'s formulation (ref [4]).
"""

from __future__ import annotations

from repro.offset.sequence import AccessSequence


class VariableAccessGraph:
    """Undirected weighted graph over a sequence's variables."""

    def __init__(self, sequence: AccessSequence):
        self._variables = sequence.variables()
        weights: dict[frozenset[str], int] = {}
        for a, b in sequence.transitions():
            key = frozenset((a, b))
            weights[key] = weights.get(key, 0) + 1
        self._weights = weights

    @property
    def variables(self) -> tuple[str, ...]:
        """Vertices, in first-use order."""
        return self._variables

    def weight(self, u: str, v: str) -> int:
        """Transition count between two variables (0 when never
        adjacent)."""
        return self._weights.get(frozenset((u, v)), 0)

    def edges(self) -> list[tuple[int, str, str]]:
        """All edges as ``(weight, u, v)`` with ``u < v``."""
        result = []
        for key, weight in self._weights.items():
            u, v = sorted(key)
            result.append((weight, u, v))
        return result

    def incident_weight(self, vertex: str) -> int:
        """Sum of weights of all edges at ``vertex``.

        Used by the Leupers/Marwedel tie-break: when edge weights are
        equal, prefer edges at "poor" vertices, whose remaining
        opportunities are fewer.
        """
        return sum(weight for key, weight in self._weights.items()
                   if vertex in key)

    @property
    def total_weight(self) -> int:
        """Sum of all edge weights = number of costable transitions."""
        return sum(self._weights.values())

    def __repr__(self) -> str:
        return (f"VariableAccessGraph(|V|={len(self._variables)}, "
                f"|E|={len(self._weights)}, W={self.total_weight})")
