"""The modify-register (MR) extension of the paper's cost model.

Classic DSP AGUs (ADSP-21xx "M" registers, DSP56k "N" registers, the
TMS320C2x index register) provide *modify registers*: each holds one
constant, and post-modifying an address register by exactly that
constant is free (``*(ARx)+MRj`` executes in parallel).  This extends
the paper's zero-cost set from ``|d| <= M`` to ``|d| <= M or d in V``
for a chosen value set ``V`` with ``|V| <= R`` (the MR count).

The extension decomposes cleanly:

* :func:`select_modify_values` -- given a *fixed* allocation, the
  optimal ``V`` is simply the ``R`` most frequent non-free constant
  deltas (each transition is covered by exactly one value, so greedy by
  frequency is exact).
* :func:`allocate_with_modify_registers` -- value selection changes the
  cost landscape, so merging and selection are iterated to a fixed
  point (never worse than the MR-free allocation, by construction).
"""

from repro.modreg.selection import (
    delta_histogram,
    residual_cost,
    select_modify_values,
)
from repro.modreg.refine import (
    ModRegAllocation,
    allocate_with_modify_registers,
)

__all__ = [
    "ModRegAllocation",
    "allocate_with_modify_registers",
    "delta_histogram",
    "residual_cost",
    "select_modify_values",
]
