"""Joint path-merging + modify-register selection (iterative refinement).

Value selection is exact for a *fixed* allocation, but the best
allocation depends on which deltas are free -- a chicken-and-egg
problem.  The refinement loop alternates:

1. merge paths under the current free-delta set (best-pair merging with
   the MR-extended cost model),
2. re-select the optimal value set for the new allocation,

keeping the best (allocation, values) pair seen, until the cost stops
improving.  The result is never worse than the MR-free allocation with
values bolted on afterwards, and usually better.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agu.model import AguSpec
from repro.core.allocator import AddressRegisterAllocator, ProblemInput, \
    _coerce_pattern
from repro.core.config import AllocatorConfig
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel
from repro.merging.greedy import best_pair_merge
from repro.modreg.selection import residual_cost, select_modify_values
from repro.pathcover.paths import PathCover


@dataclass(frozen=True)
class ModRegAllocation:
    """An allocation together with its modify-register value set."""

    pattern: AccessPattern
    spec: AguSpec
    cover: PathCover
    modify_values: tuple[int, ...]
    #: Unit-cost computations per iteration with the MRs in effect.
    total_cost: int
    #: Cost of the plain (MR-free) allocation, for comparison.
    baseline_cost: int
    #: Refinement rounds actually executed.
    rounds: int

    @property
    def savings(self) -> int:
        """Unit-cost computations per iteration saved by the MRs."""
        return self.baseline_cost - self.total_cost


def allocate_with_modify_registers(
        problem: ProblemInput, spec: AguSpec,
        config: AllocatorConfig | None = None,
        max_rounds: int = 4) -> ModRegAllocation:
    """The paper's two-phase allocation, extended with MR selection.

    With ``spec.n_modify_registers == 0`` this reduces exactly to the
    paper's algorithm.
    """
    pattern = _coerce_pattern(problem)
    config = config if config is not None else AllocatorConfig()
    model: CostModel = config.cost_model
    allocator = AddressRegisterAllocator(spec, config)

    base = allocator.allocate(pattern)
    baseline_cost = base.total_cost
    initial_cover, _kt, _feasible, _optimal = \
        allocator.initial_cover(pattern)

    best_cover = base.cover
    best_values = select_modify_values(base.cover, pattern,
                                       spec.modify_range,
                                       spec.n_modify_registers, model)
    best_cost = residual_cost(base.cover, pattern, spec.modify_range,
                              best_values, model)

    rounds = 0
    if spec.n_modify_registers > 0 and len(pattern) > 0:
        values = best_values
        for rounds in range(1, max_rounds + 1):
            if initial_cover.n_paths <= spec.n_registers:
                break  # no merging happens; nothing to re-optimize
            # Re-merge under the MR-extended metric of the current
            # value set, then re-select values for the new allocation.
            merged = best_pair_merge(initial_cover, spec.n_registers,
                                     pattern, spec.modify_range, model,
                                     free_deltas=frozenset(values)).cover
            values = select_modify_values(merged, pattern,
                                          spec.modify_range,
                                          spec.n_modify_registers, model)
            cost = residual_cost(merged, pattern, spec.modify_range,
                                 values, model)
            if cost < best_cost:
                best_cost = cost
                best_cover = merged
                best_values = values
            else:
                break

    return ModRegAllocation(
        pattern=pattern, spec=spec, cover=best_cover,
        modify_values=best_values, total_cost=best_cost,
        baseline_cost=baseline_cost, rounds=rounds)
