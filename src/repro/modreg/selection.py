"""Optimal modify-register value selection for a fixed allocation.

Every unit-cost transition of an allocation either has no compile-time
constant distance (cross-array: an MR cannot help) or one specific
constant delta.  Preloading value ``v`` into a modify register makes
exactly the transitions with delta ``v`` free.  Values therefore cover
disjoint transition sets, and picking the ``R`` most frequent deltas is
*exactly* optimal -- no search needed.
"""

from __future__ import annotations

from collections import Counter

from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel, cover_cost
from repro.pathcover.paths import PathCover
from repro.pathcover.verify import path_intra_distances, path_wrap_distance


def delta_histogram(cover: PathCover, pattern: AccessPattern,
                    modify_range: int,
                    model: CostModel = CostModel.STEADY_STATE,
                    ) -> Counter[int]:
    """Histogram of the constant deltas of all unit-cost transitions.

    Transitions already free (``|d| <= M``) and transitions without a
    constant distance (cross-array) are excluded -- modify registers
    can help with neither.
    """
    histogram: Counter[int] = Counter()
    for path in cover:
        distances = list(path_intra_distances(path, pattern))
        if model is CostModel.STEADY_STATE:
            distances.append(path_wrap_distance(path, pattern))
        for distance in distances:
            if distance is not None and abs(distance) > modify_range:
                histogram[distance] += 1
    return histogram


def select_modify_values(cover: PathCover, pattern: AccessPattern,
                         modify_range: int, n_modify_registers: int,
                         model: CostModel = CostModel.STEADY_STATE,
                         ) -> tuple[int, ...]:
    """The optimal value set for up to ``n_modify_registers`` MRs.

    Returns the most frequent unit-cost deltas (ties broken towards
    smaller absolute value, then positive, for determinism).  May return
    fewer values than registers when fewer distinct deltas exist.
    """
    if n_modify_registers <= 0:
        return ()
    histogram = delta_histogram(cover, pattern, modify_range, model)
    ranked = sorted(histogram.items(),
                    key=lambda item: (-item[1], abs(item[0]), item[0] < 0))
    return tuple(delta for delta, _count in
                 ranked[:n_modify_registers])


def residual_cost(cover: PathCover, pattern: AccessPattern,
                  modify_range: int, values: tuple[int, ...],
                  model: CostModel = CostModel.STEADY_STATE) -> int:
    """Allocation cost once the given MR values are free."""
    return cover_cost(cover, pattern, modify_range, model,
                      free_deltas=frozenset(values))
