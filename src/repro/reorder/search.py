"""Reordering searches: greedy chain building and local search.

Both searches respect the dependence relation of
:mod:`repro.reorder.dependence` and score candidate orders with the
*actual* two-phase allocator, so improvements are improvements of the
quantity the paper minimizes (unit-cost address computations per
iteration), not of a proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agu.model import AguSpec
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.errors import AllocationError
from repro.graph.distance import intra_distance
from repro.ir.types import AccessPattern
from repro.reorder.dependence import dependence_edges, is_valid_order


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of a reordering search."""

    #: Permutation: ``order[j]`` is the original position scheduled at
    #: slot ``j``.
    order: tuple[int, ...]
    pattern: AccessPattern
    cost: int
    #: Allocator cost of the original (unreordered) pattern.
    baseline_cost: int
    strategy: str

    @property
    def improvement(self) -> int:
        """Cost units saved vs the fixed original order."""
        return self.baseline_cost - self.cost

    @property
    def is_reordered(self) -> bool:
        """Whether the chosen order differs from the original."""
        return self.order != tuple(range(len(self.order)))


def reorder_pattern(pattern: AccessPattern,
                    order: tuple[int, ...]) -> AccessPattern:
    """The pattern with accesses permuted into ``order``."""
    if sorted(order) != list(range(len(pattern))):
        raise AllocationError(
            f"order {order} is not a permutation of 0..{len(pattern) - 1}")
    return AccessPattern(pattern.subsequence(order), step=pattern.step,
                         loop_var=pattern.loop_var)


def greedy_chain_order(pattern: AccessPattern,
                       modify_range: int) -> tuple[int, ...]:
    """Dependence-respecting list schedule that builds tight chains.

    Repeatedly picks, among the accesses whose dependences are all
    satisfied, the one with the cheapest transition from the previously
    scheduled access (free same-array steps first, then small deltas,
    then anything); ties break towards program order.
    """
    n = len(pattern)
    edges = dependence_edges(pattern)
    pending_predecessors = {position: 0 for position in range(n)}
    successors: dict[int, list[int]] = {position: []
                                        for position in range(n)}
    for p, q in edges:
        pending_predecessors[q] += 1
        successors[p].append(q)

    ready = [position for position in range(n)
             if pending_predecessors[position] == 0]
    order: list[int] = []
    last: int | None = None
    while ready:
        def rank(position: int) -> tuple[int, int, int]:
            if last is None:
                return (1, 0, position)
            distance = intra_distance(pattern[last], pattern[position])
            if distance is None:
                return (2, 0, position)
            free = abs(distance) <= modify_range
            return (0 if free else 1, abs(distance), position)

        chosen = min(ready, key=rank)
        ready.remove(chosen)
        order.append(chosen)
        last = chosen
        for successor in successors[chosen]:
            pending_predecessors[successor] -= 1
            if pending_predecessors[successor] == 0:
                ready.append(successor)
    if len(order) != n:  # pragma: no cover - dependences are acyclic
        raise AllocationError("dependence relation is cyclic")
    return tuple(order)


def local_search_reorder(pattern: AccessPattern, spec: AguSpec,
                         config: AllocatorConfig | None = None,
                         start_order: tuple[int, ...] | None = None,
                         max_passes: int = 4) -> ReorderResult:
    """Hill-climb over dependence-respecting adjacent swaps.

    Starts from ``start_order`` (default: program order), sweeps over
    adjacent slots, applies any swap that strictly lowers the allocator
    cost, and stops after a sweep without improvement (or
    ``max_passes``).  The result is never worse than the start.
    """
    allocator = AddressRegisterAllocator(spec, config)
    edges = dependence_edges(pattern)
    n = len(pattern)
    order = list(start_order if start_order is not None else range(n))
    if sorted(order) != list(range(n)):
        raise AllocationError(f"start order {order} is not a permutation")
    if not is_valid_order(tuple(order), edges):
        raise AllocationError("start order violates dependences")

    baseline_cost = allocator.allocate(pattern).total_cost

    def cost_of(candidate: list[int]) -> int:
        return allocator.allocate(
            reorder_pattern(pattern, tuple(candidate))).total_cost

    best_cost = cost_of(order)
    for _sweep in range(max_passes):
        improved = False
        for slot in range(n - 1):
            p, q = order[slot], order[slot + 1]
            # Swapping adjacent slots only reverses the (p, q) relation;
            # illegal iff a dependence requires p before q.  (A
            # dependence (q, p) cannot exist here: the current valid
            # order already has p first.)
            if p < q and (p, q) in edges:
                continue
            order[slot], order[slot + 1] = q, p
            candidate_cost = cost_of(order)
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                improved = True
            else:
                order[slot], order[slot + 1] = p, q
        if not improved:
            break

    final_order = tuple(order)
    return ReorderResult(
        order=final_order,
        pattern=reorder_pattern(pattern, final_order),
        cost=best_cost, baseline_cost=baseline_cost,
        strategy="local_search")


def reorder_accesses(pattern: AccessPattern, spec: AguSpec,
                     config: AllocatorConfig | None = None,
                     max_passes: int = 4) -> ReorderResult:
    """The full reordering extension: greedy seed + local search.

    Runs the local search from both program order and the greedy chain
    order and returns the better result; never worse than not
    reordering.
    """
    from_identity = local_search_reorder(pattern, spec, config,
                                         max_passes=max_passes)
    seed = greedy_chain_order(pattern, spec.modify_range)
    from_greedy = local_search_reorder(pattern, spec, config,
                                       start_order=seed,
                                       max_passes=max_passes)
    # Ties prefer the unreordered result (stability for free).
    best = min((from_identity, from_greedy),
               key=lambda result: (result.cost, result.is_reordered))
    return ReorderResult(best.order, best.pattern, best.cost,
                         from_identity.baseline_cost, "greedy+local")
