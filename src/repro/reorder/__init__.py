"""Access-reordering extension: scheduling freedom for the allocator.

The paper takes the access order inside a loop iteration as fixed.  In
reality a code generator has freedom: accesses without data dependences
between them may be reordered, and a friendlier order can lower the
addressing cost the two-phase allocator achieves (sometimes all the way
to zero).  This extension package provides:

* :mod:`repro.reorder.dependence` -- a conservative intra-iteration
  dependence relation (affine indices make most same-array accesses
  provably distinct, so plenty of freedom remains);
* :mod:`repro.reorder.search` -- a chain-building greedy scheduler and
  a dependence-respecting local search over adjacent swaps, both scored
  by the real allocator.
"""

from repro.reorder.dependence import (
    dependence_edges,
    is_valid_order,
    may_alias,
)
from repro.reorder.search import (
    ReorderResult,
    greedy_chain_order,
    local_search_reorder,
    reorder_accesses,
    reorder_pattern,
)

__all__ = [
    "ReorderResult",
    "dependence_edges",
    "greedy_chain_order",
    "is_valid_order",
    "local_search_reorder",
    "may_alias",
    "reorder_accesses",
    "reorder_pattern",
]
