"""Intra-iteration dependence analysis for access reordering.

Two accesses of one iteration must keep their relative order iff they
may touch the same memory cell and at least one writes.  With affine
indices ``c*i + d`` the aliasing question is decidable exactly *within
an iteration*:

* different arrays never alias;
* same array, same coefficient: the accesses hit the same element iff
  their offsets are equal (``c*i + d1 = c*i + d2  <=>  d1 = d2``);
* same array, different coefficients: the difference
  ``(c1 - c2)*i + (d1 - d2)`` vanishes for some loop value unless the
  offset difference is not divisible by the coefficient difference --
  we keep the conservative answer (may alias) unless divisibility rules
  it out for every ``i``.

Read-read pairs never constrain the order.
"""

from __future__ import annotations

from repro.ir.types import AccessPattern, ArrayAccess


def may_alias(first: ArrayAccess, second: ArrayAccess) -> bool:
    """Whether the two accesses may touch the same element in one
    iteration."""
    if first.array != second.array:
        return False
    coefficient_difference = first.coefficient - second.coefficient
    offset_difference = second.offset - first.offset
    if coefficient_difference == 0:
        return offset_difference == 0
    # c_diff * i == d_diff has an integer solution iff divisible; the
    # loop may or may not hit that i, so divisibility = may alias.
    return offset_difference % coefficient_difference == 0


def dependence_edges(pattern: AccessPattern) -> frozenset[tuple[int, int]]:
    """Ordered pairs ``(p, q)``, ``p < q``, whose order must be kept."""
    edges: set[tuple[int, int]] = set()
    n = len(pattern)
    for p in range(n):
        for q in range(p + 1, n):
            first, second = pattern[p], pattern[q]
            if not (first.is_write or second.is_write):
                continue
            if may_alias(first, second):
                edges.add((p, q))
    return frozenset(edges)


def is_valid_order(order: tuple[int, ...],
                   edges: frozenset[tuple[int, int]]) -> bool:
    """Whether a permutation of positions respects every dependence."""
    rank = {position: index for index, position in enumerate(order)}
    return all(rank[p] < rank[q] for p, q in edges)
