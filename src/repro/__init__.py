"""repro: reproduction of Basu/Leupers/Marwedel, DATE 1998.

Register-constrained address computation for DSP programs: access-graph
modelling, minimum zero-cost path covers (phase 1), register-constrained
best-pair path merging (phase 2), and the substrates needed to evaluate
them: a C-like kernel frontend, an AGU model with code generation and a
verifying simulator, DSP workloads, and the statistical experiment
harness behind the paper's Results section.

Quickstart
----------
>>> from repro import AguSpec, AddressRegisterAllocator, parse_kernel
>>> kernel = parse_kernel('''
...     for (i = 2; i <= N; i++) {
...         A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
...     }
... ''')
>>> allocator = AddressRegisterAllocator(AguSpec(n_registers=2, modify_range=1))
>>> result = allocator.allocate(kernel)
>>> result.k_tilde, result.n_registers_used, result.total_cost
(3, 2, 2)
"""

from repro.agu import (
    AddressProgram,
    AguSpec,
    PRESETS,
    SimulationResult,
    generate_address_code,
    program_listing,
    simulate,
)
from repro.batch import (
    BatchCompiler,
    BatchJob,
    BatchReport,
    CacheServer,
    ClusterExecutor,
    InMemoryLRUCache,
    JobResult,
    JobServer,
    JsonFileCache,
    RemoteCache,
    ShardedDirectoryCache,
    Worker,
    job_digest,
    job_matrix,
    jobs_from_kernels,
    jobs_from_random,
    jobs_from_suite,
    open_cache,
    open_executor,
)
from repro.core import (
    AddressRegisterAllocator,
    AllocationResult,
    AllocatorConfig,
    CompilationArtifacts,
    compile_kernel,
)
from repro.graph import AccessGraph, graph_to_ascii, graph_to_dot
from repro.ir import (
    AccessPattern,
    AffineExpr,
    ArrayAccess,
    ArrayDecl,
    Kernel,
    Loop,
    LoopBuilder,
    MemoryLayout,
    loop_from_offsets,
    parse_kernel,
    pattern_from_offsets,
)
from repro.merging import (
    CostModel,
    best_pair_merge,
    cover_cost,
    naive_merge,
    optimal_allocation,
    path_cost,
)
from repro.modreg import allocate_with_modify_registers
from repro.pathcover import (
    Path,
    PathCover,
    greedy_zero_cost_cover,
    intra_cover_lower_bound,
    minimum_zero_cost_cover,
)
from repro.reorder import reorder_accesses
from repro.workloads import (
    RandomPatternConfig,
    load_trace,
    parse_trace,
    save_trace,
)

__version__ = "1.1.0"

__all__ = [
    "AccessGraph",
    "AccessPattern",
    "AddressProgram",
    "AddressRegisterAllocator",
    "AffineExpr",
    "AguSpec",
    "AllocationResult",
    "AllocatorConfig",
    "ArrayAccess",
    "ArrayDecl",
    "BatchCompiler",
    "BatchJob",
    "BatchReport",
    "CacheServer",
    "ClusterExecutor",
    "CompilationArtifacts",
    "CostModel",
    "InMemoryLRUCache",
    "JobResult",
    "JobServer",
    "JsonFileCache",
    "Kernel",
    "Loop",
    "LoopBuilder",
    "MemoryLayout",
    "PRESETS",
    "Path",
    "PathCover",
    "RandomPatternConfig",
    "RemoteCache",
    "ShardedDirectoryCache",
    "SimulationResult",
    "Worker",
    "allocate_with_modify_registers",
    "best_pair_merge",
    "compile_kernel",
    "cover_cost",
    "generate_address_code",
    "graph_to_ascii",
    "graph_to_dot",
    "greedy_zero_cost_cover",
    "intra_cover_lower_bound",
    "job_digest",
    "job_matrix",
    "jobs_from_kernels",
    "jobs_from_random",
    "jobs_from_suite",
    "load_trace",
    "loop_from_offsets",
    "minimum_zero_cost_cover",
    "naive_merge",
    "open_cache",
    "open_executor",
    "optimal_allocation",
    "parse_kernel",
    "parse_trace",
    "path_cost",
    "pattern_from_offsets",
    "program_listing",
    "reorder_accesses",
    "save_trace",
    "simulate",
]
