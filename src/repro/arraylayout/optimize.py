"""Gap selection between arrays to free cross-array transitions.

Given an allocation (path cover), every cross-array transition of a
register has a *symbolic* distance ``(base_target - base_source) +
constant``.  Placing arrays back-to-back with chosen gaps turns these
into concrete values; a gap that lands a frequent transition inside the
auto-modify range eliminates its unit cost.

The optimizer works pairwise over *adjacently placed* arrays (the gap
between two adjacent arrays is a single free variable; transitions
between non-adjacent arrays depend on sums of gaps and are scored but
not targeted).  For small array counts it additionally tries all
placement orders and keeps the cheapest.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import permutations

from repro.arraylayout.distance import layout_cover_cost
from repro.errors import LayoutError
from repro.ir.layout import MemoryLayout
from repro.ir.types import AccessPattern, ArrayDecl
from repro.merging.cost import CostModel
from repro.pathcover.paths import PathCover

#: Above this many arrays, only the natural (first-use) order is tried.
_PERMUTATION_LIMIT = 4


@dataclass(frozen=True)
class LayoutPlan:
    """An optimized layout and its accounting."""

    layout: MemoryLayout
    cost: int
    #: Cost under the reference (guard-gap) layout, for comparison.
    baseline_cost: int
    order: tuple[str, ...]

    @property
    def savings(self) -> int:
        """Cost units saved vs the reference guard-gap layout."""
        return self.baseline_cost - self.cost


def _cross_array_demands(cover: PathCover, pattern: AccessPattern,
                         model: CostModel) -> Counter[tuple[str, str, int]]:
    """Histogram of cross-array transitions as ``(src, dst, delta)``.

    ``delta`` is the transition's constant part: the concrete distance
    will be ``(base_dst - base_src) + delta``.  Only same-coefficient
    transitions are collected (others can never be constant).
    """
    demands: Counter[tuple[str, str, int]] = Counter()
    step = pattern.step

    def record(source_position: int, target_position: int,
               wrap: bool) -> None:
        source = pattern[source_position]
        target = pattern[target_position]
        if source.array == target.array:
            return
        if source.coefficient != target.coefficient:
            return
        delta = target.offset - source.offset
        if wrap:
            delta += target.coefficient * step
        demands[(source.array, target.array, delta)] += 1

    for path in cover:
        for p, q in path.transitions():
            record(p, q, wrap=False)
        if model is CostModel.STEADY_STATE and len(path) >= 1:
            record(path.last, path.first, wrap=True)
    return demands


def _sizes(decls: dict[str, ArrayDecl]) -> dict[str, int]:
    return {
        name: (decl.length if decl.length is not None
               else MemoryLayout.DEFAULT_LENGTH) * decl.element_size
        for name, decl in decls.items()
    }


def _build_layout(order: tuple[str, ...], gaps: dict[str, int],
                  decls: dict[str, ArrayDecl], origin: int) -> MemoryLayout:
    sizes = _sizes(decls)
    bases = {}
    cursor = origin
    for index, name in enumerate(order):
        bases[name] = cursor
        cursor += sizes[name] + gaps.get(name, 0)
    return MemoryLayout.explicit(bases, [decls[name] for name in order])


def _optimize_gaps_for_order(order: tuple[str, ...],
                             demands: Counter[tuple[str, str, int]],
                             decls: dict[str, ArrayDecl],
                             modify_range: int,
                             origin: int) -> MemoryLayout:
    """Pick each adjacent gap to free the heaviest transition pair."""
    sizes = _sizes(decls)
    gaps: dict[str, int] = {}
    for left, right in zip(order, order[1:]):
        # Candidate base distances B = base_right - base_left = size+gap.
        # left->right transition with delta D is free iff |B + D| <= M;
        # right->left iff |-B + D| <= M, i.e. B in [D - M, D + M].
        candidates: Counter[int] = Counter()
        minimum = sizes[left]
        for (src, dst, delta), count in demands.items():
            if (src, dst) == (left, right):
                window = range(-delta - modify_range,
                               -delta + modify_range + 1)
            elif (src, dst) == (right, left):
                window = range(delta - modify_range,
                               delta + modify_range + 1)
            else:
                continue
            for base_distance in window:
                if base_distance >= minimum:
                    candidates[base_distance] += count
        if candidates:
            # Heaviest coverage; ties towards the tightest packing.
            best_distance, _votes = min(
                candidates.items(), key=lambda item: (-item[1], item[0]))
            gaps[left] = best_distance - minimum
        else:
            # Nothing to gain: keep arrays out of accidental range.
            gaps[left] = modify_range + 1
    return _build_layout(order, gaps, decls, origin)


def optimize_layout(pattern: AccessPattern, cover: PathCover,
                    decls: list[ArrayDecl] | tuple[ArrayDecl, ...],
                    modify_range: int,
                    model: CostModel = CostModel.STEADY_STATE,
                    origin: int = 0,
                    try_permutations: bool = True) -> LayoutPlan:
    """Choose array placement minimizing the allocation's real cost.

    ``decls`` must declare every array the pattern touches.  The
    returned plan's ``baseline_cost`` refers to the reference layout
    (first-use order, guard gaps), so ``savings`` isolates the layout
    effect.
    """
    by_name = {decl.name: decl for decl in decls}
    missing = [name for name in pattern.arrays() if name not in by_name]
    if missing:
        raise LayoutError(f"no declarations for arrays {missing}")

    natural_order = pattern.arrays()
    reference = MemoryLayout.contiguous(
        [by_name[name] for name in natural_order], origin=origin,
        gap=modify_range + 1)
    baseline_cost = layout_cover_cost(cover, pattern, reference,
                                      modify_range, model)

    demands = _cross_array_demands(cover, pattern, model)
    orders: list[tuple[str, ...]] = [natural_order]
    if try_permutations and 1 < len(natural_order) <= _PERMUTATION_LIMIT:
        orders = [tuple(order)
                  for order in permutations(natural_order)]

    best_layout = reference
    best_cost = baseline_cost
    best_order = natural_order
    for order in orders:
        layout = _optimize_gaps_for_order(order, demands, by_name,
                                          modify_range, origin)
        cost = layout_cover_cost(cover, pattern, layout, modify_range,
                                 model)
        if cost < best_cost:
            best_layout, best_cost, best_order = layout, cost, order
    return LayoutPlan(layout=best_layout, cost=best_cost,
                      baseline_cost=baseline_cost, order=best_order)
