"""Concrete (layout-resolved) address distances and costs.

With a concrete :class:`~repro.ir.layout.MemoryLayout`, the address of
``A[c*i + d]`` is ``base_A + c*i + d`` (word-addressed), so the distance
between two accesses is loop-invariant exactly when their coefficients
agree -- *regardless of the arrays involved*.  These helpers mirror
:mod:`repro.graph.distance` and :mod:`repro.merging.cost` with the
layout plugged in.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.distance import transition_cost
from repro.ir.layout import MemoryLayout
from repro.ir.types import AccessPattern, ArrayAccess
from repro.merging.cost import CostModel
from repro.pathcover.paths import Path, PathCover


def _base(layout: MemoryLayout, access: ArrayAccess) -> int:
    placement = layout.placement(access.array)
    return placement.base


def concrete_intra_distance(source: ArrayAccess, target: ArrayAccess,
                            layout: MemoryLayout) -> int | None:
    """Layout-resolved distance ``target - source`` within an iteration.

    Constant iff the index coefficients agree; the arrays may differ.
    """
    if source.coefficient != target.coefficient:
        return None
    return (_base(layout, target) + target.offset) \
        - (_base(layout, source) + source.offset)


def concrete_wrap_distance(last: ArrayAccess, first: ArrayAccess,
                           step: int, layout: MemoryLayout) -> int | None:
    """Layout-resolved distance from ``last`` (iteration ``t``) to
    ``first`` (iteration ``t + 1``)."""
    if last.coefficient != first.coefficient:
        return None
    return (_base(layout, first) + first.coefficient * step
            + first.offset) - (_base(layout, last) + last.offset)


def layout_path_cost(path: Path, pattern: AccessPattern,
                     layout: MemoryLayout, modify_range: int,
                     model: CostModel = CostModel.STEADY_STATE,
                     free_deltas: frozenset[int] = frozenset()) -> int:
    """Unit-cost computations of a path under a concrete layout."""
    cost = 0
    for p, q in path.transitions():
        distance = concrete_intra_distance(pattern[p], pattern[q], layout)
        cost += transition_cost(distance, modify_range, free_deltas)
    if model is CostModel.STEADY_STATE:
        distance = concrete_wrap_distance(pattern[path.last],
                                          pattern[path.first],
                                          pattern.step, layout)
        cost += transition_cost(distance, modify_range, free_deltas)
    return cost


def layout_cover_cost(paths: PathCover | Iterable[Path],
                      pattern: AccessPattern, layout: MemoryLayout,
                      modify_range: int,
                      model: CostModel = CostModel.STEADY_STATE,
                      free_deltas: frozenset[int] = frozenset()) -> int:
    """Total allocation cost under a concrete layout."""
    return sum(layout_path_cost(path, pattern, layout, modify_range,
                                model, free_deltas)
               for path in paths)
