"""Layout-aware addressing: choosing array bases to help the AGU.

The paper (and this library's default model) treats the distance
between accesses to *different* arrays as unknown: a register crossing
arrays always pays a unit-cost re-load.  But array base addresses are
the compiler's to choose -- with a concrete :class:`MemoryLayout` the
distance between ``A[c*i + d1]`` and ``B[c*i + d2]`` *is* a compile-time
constant, and placing ``B`` cleverly relative to ``A`` can bring
frequent cross-array transitions into the auto-modify range.  This is
the address-calculation-by-layout idea of the paper's ref [1]
(Liem/Paulin/Jerraya).

* :mod:`repro.arraylayout.distance` -- concrete (layout-resolved)
  distances and the layout-aware cost model.
* :mod:`repro.arraylayout.optimize` -- gap selection between adjacently
  placed arrays (greedy, most-frequent-transition first), optionally
  over all placement orders for small array counts.

The extension composes with everything else: code generated against an
optimized layout folds the now-constant cross-array updates, and the
AGU simulator verifies every address as usual.
"""

from repro.arraylayout.distance import (
    concrete_intra_distance,
    concrete_wrap_distance,
    layout_cover_cost,
    layout_path_cost,
)
from repro.arraylayout.optimize import LayoutPlan, optimize_layout

__all__ = [
    "LayoutPlan",
    "concrete_intra_distance",
    "concrete_wrap_distance",
    "layout_cover_cost",
    "layout_path_cost",
    "optimize_layout",
]
