"""Hopcroft--Karp maximum bipartite matching, from scratch.

Used by :mod:`repro.pathcover.lower_bound` to compute minimum path covers
of the intra-iteration DAG via König's theorem: a DAG with ``n`` nodes
can be covered by ``n - |maximum matching|`` node-disjoint paths, where
the matching is taken in the bipartite graph that has one "source" copy
and one "target" copy of every node and an edge per DAG arc.

The implementation is the standard O(E * sqrt(V)) alternating-BFS/DFS
algorithm, written iteratively so deep graphs cannot overflow Python's
recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

_UNREACHED = -1


class HopcroftKarp:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two node sets (nodes are ``0 .. n-1`` on each side).
    adjacency:
        For each left node, the right nodes it may be matched to; either
        a mapping ``left -> iterable of right`` or a sequence indexed by
        the left node.
    """

    def __init__(self, n_left: int, n_right: int,
                 adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]]):
        if n_left < 0 or n_right < 0:
            raise ValueError("node counts must be >= 0")
        self._n_left = n_left
        self._n_right = n_right
        self._adjacency: list[tuple[int, ...]] = []
        for left in range(n_left):
            if isinstance(adjacency, Mapping):
                neighbors = tuple(adjacency.get(left, ()))
            else:
                neighbors = tuple(adjacency[left]) if left < len(adjacency) \
                    else ()
            for right in neighbors:
                if not 0 <= right < n_right:
                    raise ValueError(
                        f"right node {right} out of range 0..{n_right - 1}")
            self._adjacency.append(neighbors)
        #: match_left[u] = matched right node or -1; similarly match_right.
        self.match_left = [-1] * n_left
        self.match_right = [-1] * n_right
        self._distance: list[int] = []
        self._solved = False

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def solve(self) -> int:
        """Compute and return the maximum matching size."""
        if self._solved:
            return self.size
        matching = 0
        while self._bfs_layers():
            for left in range(self._n_left):
                if self.match_left[left] == -1 and self._dfs_augment(left):
                    matching += 1
        self._solved = True
        return matching

    @property
    def size(self) -> int:
        """Number of matched pairs."""
        return sum(1 for right in self.match_left if right != -1)

    def pairs(self) -> list[tuple[int, int]]:
        """Matched ``(left, right)`` pairs (solving first if needed)."""
        self.solve()
        return [(left, right) for left, right in enumerate(self.match_left)
                if right != -1]

    # ------------------------------------------------------------------
    # Hopcroft--Karp phases
    # ------------------------------------------------------------------
    def _bfs_layers(self) -> bool:
        """Layer left nodes from the free ones; True iff an augmenting
        path can exist this phase."""
        self._distance = [_UNREACHED] * self._n_left
        queue: deque[int] = deque()
        for left in range(self._n_left):
            if self.match_left[left] == -1:
                self._distance[left] = 0
                queue.append(left)
        found_free_right = False
        while queue:
            left = queue.popleft()
            for right in self._adjacency[left]:
                partner = self.match_right[right]
                if partner == -1:
                    found_free_right = True
                elif self._distance[partner] == _UNREACHED:
                    self._distance[partner] = self._distance[left] + 1
                    queue.append(partner)
        return found_free_right

    def _dfs_augment(self, root: int) -> bool:
        """Find and apply one augmenting path from ``root`` along the BFS
        layers.  Iterative DFS; each frame records the matched edge that
        led into it so the path can be flipped on success."""
        no_edge = (-1, -1)
        # Frame: (left node, next adjacency index, incoming (left, right)).
        stack: list[tuple[int, int, tuple[int, int]]] = [(root, 0, no_edge)]
        while stack:
            left, edge_index, incoming = stack[-1]
            if edge_index >= len(self._adjacency[left]):
                # Dead end: exclude from the rest of this phase.
                self._distance[left] = _UNREACHED
                stack.pop()
                continue
            stack[-1] = (left, edge_index + 1, incoming)
            right = self._adjacency[left][edge_index]
            partner = self.match_right[right]
            if partner == -1:
                # Free right endpoint: flip every incoming edge on the
                # stack, then add the final edge.  Each left/right node
                # occurs in exactly one of these pairs, so assignment
                # order does not matter.
                for _node, _index, (u, v) in stack[1:]:
                    self.match_left[u] = v
                    self.match_right[v] = u
                self.match_left[left] = right
                self.match_right[right] = left
                return True
            if self._distance[partner] == self._distance[left] + 1:
                stack.append((partner, 0, (left, right)))
        return False


def maximum_bipartite_matching(
        n_left: int, n_right: int,
        adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
) -> tuple[int, list[int]]:
    """Convenience wrapper returning ``(matching size, match_left)``."""
    solver = HopcroftKarp(n_left, n_right, adjacency)
    size = solver.solve()
    return size, list(solver.match_left)
