"""Paths and path covers over access positions.

A *path* is a strictly increasing sequence of access positions: the
subsequence of the loop iteration's accesses served by one address
register (the register visits them in program order).  A *path cover*
partitions all ``N`` positions into node-disjoint paths -- one per
(virtual or physical) register.

The paper's merge operator ``P_i (+) P_j`` (section 3.2) "retains the
order of array accesses in the original access pattern": it is exactly
the sorted union of the two index sets, implemented by :meth:`Path.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import PathCoverError


@dataclass(frozen=True)
class Path:
    """A strictly increasing tuple of access positions (0-based)."""

    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.indices, tuple):
            object.__setattr__(self, "indices", tuple(self.indices))
        if not self.indices:
            raise PathCoverError("a path must contain at least one access")
        for value in self.indices:
            if not isinstance(value, int) or isinstance(value, bool):
                raise PathCoverError(
                    f"path positions must be ints, got {value!r}")
            if value < 0:
                raise PathCoverError(
                    f"path positions must be >= 0, got {value}")
        for earlier, later in zip(self.indices, self.indices[1:]):
            if later <= earlier:
                raise PathCoverError(
                    f"path positions must be strictly increasing, got "
                    f"{self.indices}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def first(self) -> int:
        """Position of the register's first access in the iteration."""
        return self.indices[0]

    @property
    def last(self) -> int:
        """Position of the register's last access in the iteration."""
        return self.indices[-1]

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __contains__(self, position: int) -> bool:
        return position in self.indices

    def transitions(self) -> Iterator[tuple[int, int]]:
        """Consecutive position pairs along the path."""
        return zip(self.indices, self.indices[1:])

    # ------------------------------------------------------------------
    # The paper's merge operator
    # ------------------------------------------------------------------
    def merge(self, other: "Path") -> "Path":
        """The paper's ``(+)``: order-preserving union of two paths.

        Example: merging ``(a_1, a_4, a_6)`` and ``(a_3, a_5)`` gives
        ``(a_1, a_3, a_4, a_5, a_6)``.
        """
        overlap = set(self.indices) & set(other.indices)
        if overlap:
            raise PathCoverError(
                f"cannot merge overlapping paths (shared positions "
                f"{sorted(overlap)})")
        return Path(tuple(sorted((*self.indices, *other.indices))))

    def __str__(self) -> str:
        body = ", ".join(f"a_{position + 1}" for position in self.indices)
        return f"({body})"


@dataclass(frozen=True)
class PathCover:
    """A partition of positions ``0 .. n_accesses-1`` into paths.

    Paths are stored in canonical order (by first position) so equal
    covers compare equal regardless of construction order.
    """

    paths: tuple[Path, ...]
    n_accesses: int

    def __post_init__(self) -> None:
        if not isinstance(self.paths, tuple):
            object.__setattr__(self, "paths", tuple(self.paths))
        ordered = tuple(sorted(self.paths, key=lambda path: path.first))
        object.__setattr__(self, "paths", ordered)

        seen: set[int] = set()
        for path in self.paths:
            for position in path:
                if position in seen:
                    raise PathCoverError(
                        f"position {position} covered twice")
                if position >= self.n_accesses:
                    raise PathCoverError(
                        f"position {position} out of range for "
                        f"{self.n_accesses} accesses")
                seen.add(position)
        if len(seen) != self.n_accesses:
            missing = sorted(set(range(self.n_accesses)) - seen)
            raise PathCoverError(
                f"cover misses positions {missing}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(cls, groups: Iterable[Sequence[int]],
                   n_accesses: int) -> "PathCover":
        """Build a cover from any iterable of position groups."""
        return cls(tuple(Path(tuple(sorted(group))) for group in groups),
                   n_accesses)

    @classmethod
    def finest(cls, n_accesses: int) -> "PathCover":
        """One singleton path per access (the trivial cover)."""
        return cls(tuple(Path((position,))
                         for position in range(n_accesses)), n_accesses)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_paths(self) -> int:
        """Number of paths (= address registers required)."""
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def __len__(self) -> int:
        return len(self.paths)

    def assignment(self) -> tuple[int, ...]:
        """Register index serving each access position.

        ``assignment()[p]`` is the index (into :attr:`paths`) of the path
        containing position ``p``.
        """
        owner = [0] * self.n_accesses
        for register, path in enumerate(self.paths):
            for position in path:
                owner[position] = register
        return tuple(owner)

    def path_of(self, position: int) -> Path:
        """The path containing a given access position."""
        if not 0 <= position < self.n_accesses:
            raise PathCoverError(
                f"position {position} out of range for "
                f"{self.n_accesses} accesses")
        for path in self.paths:
            if position in path:
                return path
        raise PathCoverError(f"position {position} not covered")  # unreachable

    def replace(self, remove: tuple[Path, Path], add: Path) -> "PathCover":
        """A new cover with two paths replaced by their merge result."""
        first, second = remove
        remaining = [path for path in self.paths
                     if path is not first and path is not second]
        if len(remaining) != len(self.paths) - 2:
            raise PathCoverError(
                "replace() requires two distinct paths of this cover")
        return PathCover((*remaining, add), self.n_accesses)

    def __str__(self) -> str:
        return "{" + ", ".join(str(path) for path in self.paths) + "}"
