"""Exact minimum zero-cost path cover: the branch-and-bound of ref [3].

Computes ``K~``, the minimum number of virtual address registers that
can serve all accesses with zero-cost address computations only, taking
inter-iteration (wrap-around) dependencies into account -- the problem
the paper declares exponential and solves with the fast branch-and-bound
procedure of its companion paper [3].

Search organisation
-------------------
Accesses are assigned in program order; each is either appended to an
open path (requires a zero-cost intra edge from the path's tail) or
opens a new path (a single canonical branch -- paths are identified by
their first access, which breaks all permutation symmetry).  A leaf is a
solution iff every path's wrap-around transition is free.

Pruning:

* **bound** -- a state with ``>= best`` open paths can never improve;
  opening a new path is only allowed while ``open + 1 < best``;
* **wrap feasibility** -- an open path whose wrap-around is not yet free
  and for which no remaining access could serve as a free-wrapping last
  element is a dead end;
* **bootstrap** -- the matching lower bound and the greedy upper bound
  (sections on refs [2] and the heuristic) initialise the incumbent;
  search stops as soon as the incumbent meets the lower bound.

Accesses to different arrays (or with different index coefficients)
share no zero-cost edges, so the instance decomposes into independent
per-group subproblems that are solved separately and recombined; this is
both an optimization and how ``K~`` naturally splits per array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleZeroCostCover, SearchBudgetExceeded
from repro.graph.access_graph import AccessGraph
from repro.graph.distance import intra_distance
from repro.ir.types import AccessPattern
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.pathcover.paths import Path, PathCover

#: Default cap on explored search nodes per independent subproblem.
DEFAULT_NODE_BUDGET = 200_000


@dataclass(frozen=True)
class CoverSearchResult:
    """Outcome of the phase-1 search for ``K~``.

    Attributes
    ----------
    cover:
        A zero-cost path cover with ``k_tilde`` paths.
    k_tilde:
        Number of virtual registers (paths) found.
    optimal:
        True when the search proved minimality (no budget exhaustion).
    lower_bound, upper_bound:
        The bootstrap bounds (matching LB, greedy UB).
    nodes_explored:
        Total branch-and-bound nodes over all subproblems.
    """

    cover: PathCover
    k_tilde: int
    optimal: bool
    lower_bound: int
    upper_bound: int
    nodes_explored: int


def minimum_zero_cost_cover(
        pattern: AccessPattern,
        modify_range: int,
        node_budget: int = DEFAULT_NODE_BUDGET,
) -> CoverSearchResult:
    """Compute ``K~`` and a witnessing zero-cost cover for a pattern.

    Raises
    ------
    InfeasibleZeroCostCover
        If no zero-cost cover exists at all (some access's per-iteration
        step exceeds the modify range).
    SearchBudgetExceeded
        Never raised for the cover itself -- on budget exhaustion the
        best cover found so far (at worst the greedy one) is returned
        with ``optimal=False``.  Raised only if the budget dies before
        *any* cover is known.
    """
    n = len(pattern)
    if n == 0:
        empty = PathCover((), 0)
        return CoverSearchResult(empty, 0, True, 0, 0, 0)

    groups: dict[tuple[str, int], list[int]] = {}
    for position, access in enumerate(pattern):
        groups.setdefault(access.group_key, []).append(position)

    all_paths: list[Path] = []
    lower_bound = 0
    upper_bound = 0
    nodes_total = 0
    optimal = True
    for positions in groups.values():
        sub_pattern = AccessPattern(pattern.subsequence(positions),
                                    step=pattern.step,
                                    loop_var=pattern.loop_var)
        outcome = _search_group(sub_pattern, modify_range, node_budget)
        lower_bound += outcome.lower_bound
        upper_bound += outcome.upper_bound
        nodes_total += outcome.nodes_explored
        optimal = optimal and outcome.optimal
        for path in outcome.cover:
            all_paths.append(
                Path(tuple(positions[local] for local in path)))

    cover = PathCover(tuple(all_paths), n)
    return CoverSearchResult(cover, cover.n_paths, optimal, lower_bound,
                             upper_bound, nodes_total)


# ----------------------------------------------------------------------
# Per-group exact search
# ----------------------------------------------------------------------
class _OpenPath:
    """Mutable path under construction (first fixed, tail grows)."""

    __slots__ = ("indices",)

    def __init__(self, start: int):
        self.indices = [start]

    @property
    def first(self) -> int:
        return self.indices[0]

    @property
    def last(self) -> int:
        return self.indices[-1]


def _search_group(pattern: AccessPattern, modify_range: int,
                  node_budget: int) -> CoverSearchResult:
    graph = AccessGraph(pattern, modify_range)
    n = graph.n_nodes
    lower_bound = intra_cover_lower_bound(graph)

    incumbent: PathCover | None
    try:
        incumbent = greedy_zero_cost_cover(graph)
        upper_bound = incumbent.n_paths
    except InfeasibleZeroCostCover:
        incumbent = None
        upper_bound = n + 1  # sentinel: any real cover beats it

    if incumbent is not None and incumbent.n_paths == lower_bound:
        return CoverSearchResult(incumbent, lower_bound, True, lower_bound,
                                 upper_bound, 0)

    # max_wrap_source[f]: latest position whose wrap-around to f is free.
    max_wrap_source = [-1] * n
    for source, target in graph.inter_edges:
        if source > max_wrap_source[target]:
            max_wrap_source[target] = source

    best_size = incumbent.n_paths if incumbent is not None else n + 1
    best_paths: list[tuple[int, ...]] | None = (
        [tuple(path) for path in incumbent] if incumbent is not None else None)
    open_paths: list[_OpenPath] = []
    nodes = 0
    budget_hit = False

    def wrap_still_possible(path: _OpenPath, next_position: int) -> bool:
        """Could this path still end with a free wrap-around?"""
        if graph.has_inter_edge(path.last, path.first):
            return True
        return max_wrap_source[path.first] >= next_position

    def descend(position: int) -> None:
        nonlocal nodes, best_size, best_paths, budget_hit
        if budget_hit or best_size == lower_bound:
            return
        nodes += 1
        if nodes > node_budget:
            budget_hit = True
            return

        if position == n:
            if all(graph.has_inter_edge(path.last, path.first)
                   for path in open_paths):
                if len(open_paths) < best_size:
                    best_size = len(open_paths)
                    best_paths = [tuple(path.indices)
                                  for path in open_paths]
            return

        if len(open_paths) >= best_size:
            return
        for path in open_paths:
            if not wrap_still_possible(path, position):
                return

        # Extension branches, most promising first.
        candidates: list[tuple[tuple[int, int, int], _OpenPath]] = []
        for path in open_paths:
            if not graph.has_intra_edge(path.last, position):
                continue
            distance = intra_distance(pattern[path.last], pattern[position])
            assert distance is not None
            closes = graph.has_inter_edge(position, path.first)
            candidates.append(
                ((0 if closes else 1, abs(distance), -path.last), path))
        candidates.sort(key=lambda item: item[0])
        for _key, path in candidates:
            path.indices.append(position)
            descend(position + 1)
            path.indices.pop()
            if budget_hit or best_size == lower_bound:
                return

        # Canonical new-path branch.
        if len(open_paths) + 1 < best_size:
            fresh = _OpenPath(position)
            open_paths.append(fresh)
            descend(position + 1)
            open_paths.pop()

    descend(0)

    if best_paths is None:
        if budget_hit:
            raise SearchBudgetExceeded(
                f"no zero-cost cover found within {node_budget} nodes "
                f"(N={n}, M={modify_range})")
        raise InfeasibleZeroCostCover(
            f"no zero-cost cover exists for this group "
            f"(N={n}, M={modify_range}, step={pattern.step})")

    cover = PathCover.from_lists(best_paths, n)
    return CoverSearchResult(cover, cover.n_paths, not budget_hit,
                             lower_bound, min(upper_bound, cover.n_paths),
                             nodes)
