"""Exact minimum zero-cost path cover: the branch-and-bound of ref [3].

Computes ``K~``, the minimum number of virtual address registers that
can serve all accesses with zero-cost address computations only, taking
inter-iteration (wrap-around) dependencies into account -- the problem
the paper declares exponential and solves with the fast branch-and-bound
procedure of its companion paper [3].

Search organisation
-------------------
Accesses are assigned in program order; each is either appended to an
open path (requires a zero-cost intra edge from the path's tail) or
opens a new path (a single canonical branch -- paths are identified by
their first access, which breaks all permutation symmetry).  A leaf is a
solution iff every path's wrap-around transition is free.

Pruning:

* **bound** -- a state with ``>= best`` open paths can never improve;
  opening a new path is only allowed while ``open + 1 < best``;
* **wrap feasibility** -- an open path whose wrap-around is not yet free
  and for which no remaining access could serve as a free-wrapping last
  element is a dead end;
* **bootstrap** -- the matching lower bound and the greedy upper bound
  (sections on refs [2] and the heuristic) initialise the incumbent;
  search stops as soon as the incumbent meets the lower bound;
* **forced-open suffix bound** (opt-in, ``tight_bounds=True``) -- every
  unassigned access with no intra-iteration predecessor must open a
  path of its own, so ``open + forced(position) >= best`` subtrees are
  dead.  This is the tiling-style register-pressure bound ("A Tiling
  Perspective for Register Optimization" frames pressure search as
  tiling with exactly this kind of occupancy floor): it only removes
  subtrees that cannot improve the incumbent, hence the cover, its
  size, and the ``optimal`` flag are unchanged -- but the node count
  (and with it budget-exhaustion behaviour on huge instances) differs,
  which is why the legacy node-for-node search order stays the default
  (experiment goldens pin ``nodes_explored``).

Accesses to different arrays (or with different index coefficients)
share no zero-cost edges, so the instance decomposes into independent
per-group subproblems that are solved separately and recombined; this is
both an optimization and how ``K~`` naturally splits per array.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter

from repro.errors import InfeasibleZeroCostCover, SearchBudgetExceeded
from repro.graph.access_graph import cached_access_graph
from repro.ir.types import AccessPattern
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.pathcover.paths import Path, PathCover

#: Default cap on explored search nodes per independent subproblem.
DEFAULT_NODE_BUDGET = 200_000


@dataclass(frozen=True)
class CoverSearchResult:
    """Outcome of the phase-1 search for ``K~``.

    Attributes
    ----------
    cover:
        A zero-cost path cover with ``k_tilde`` paths.
    k_tilde:
        Number of virtual registers (paths) found.
    optimal:
        True when the search proved minimality (no budget exhaustion).
    lower_bound, upper_bound:
        The bootstrap bounds (matching LB, greedy UB).
    nodes_explored:
        Total branch-and-bound nodes over all subproblems.
    """

    cover: PathCover
    k_tilde: int
    optimal: bool
    lower_bound: int
    upper_bound: int
    nodes_explored: int


def minimum_zero_cost_cover(
        pattern: AccessPattern,
        modify_range: int,
        node_budget: int = DEFAULT_NODE_BUDGET,
        tight_bounds: bool = False,
) -> CoverSearchResult:
    """Compute ``K~`` and a witnessing zero-cost cover for a pattern.

    ``tight_bounds=True`` enables the forced-open suffix bound (see
    the module docstring): identical cover and ``k_tilde``, strictly
    fewer-or-equal nodes explored.  It stays opt-in because the
    explored node count itself is part of the EXP-A1 experiment's
    published (and golden-pinned) measurements.

    Raises
    ------
    InfeasibleZeroCostCover
        If no zero-cost cover exists at all (some access's per-iteration
        step exceeds the modify range).
    SearchBudgetExceeded
        Never raised for the cover itself -- on budget exhaustion the
        best cover found so far (at worst the greedy one) is returned
        with ``optimal=False``.  Raised only if the budget dies before
        *any* cover is known.
    """
    n = len(pattern)
    if n == 0:
        empty = PathCover((), 0)
        return CoverSearchResult(empty, 0, True, 0, 0, 0)

    groups: dict[tuple[str, int], list[int]] = {}
    for position, access in enumerate(pattern):
        groups.setdefault(access.group_key, []).append(position)

    all_paths: list[Path] = []
    lower_bound = 0
    upper_bound = 0
    nodes_total = 0
    optimal = True
    for positions in groups.values():
        sub_pattern = AccessPattern(pattern.subsequence(positions),
                                    step=pattern.step,
                                    loop_var=pattern.loop_var)
        outcome = _search_group(sub_pattern, modify_range, node_budget,
                                tight_bounds)
        lower_bound += outcome.lower_bound
        upper_bound += outcome.upper_bound
        nodes_total += outcome.nodes_explored
        optimal = optimal and outcome.optimal
        for path in outcome.cover:
            all_paths.append(
                Path(tuple(positions[local] for local in path)))

    cover = PathCover(tuple(all_paths), n)
    return CoverSearchResult(cover, cover.n_paths, optimal, lower_bound,
                             upper_bound, nodes_total)


# ----------------------------------------------------------------------
# Per-group exact search
# ----------------------------------------------------------------------
#: Deadline sentinel for paths whose wrap-around is already free: no
#: ``position`` can ever exceed it, so the feasibility scan skips them.
_NO_DEADLINE = 1 << 60


class _OpenPath:
    """Mutable path under construction (first fixed, tail grows).

    ``deadline`` caches the wrap-feasibility horizon: the last position
    by which this path must either already wrap for free
    (``_NO_DEADLINE``) or still be able to pick up a free-wrapping tail
    (``max_wrap_source[first]``).  It is refreshed on every tail change,
    so the per-node feasibility scan is one integer compare per path
    instead of two edge-set probes.
    """

    __slots__ = ("indices", "first", "last", "deadline")

    def __init__(self, start: int):
        self.indices = [start]
        self.first = start
        self.last = start


def _search_group(pattern: AccessPattern, modify_range: int,
                  node_budget: int,
                  tight_bounds: bool = False) -> CoverSearchResult:
    graph = cached_access_graph(pattern, modify_range)
    n = graph.n_nodes
    lower_bound = intra_cover_lower_bound(graph)

    incumbent: PathCover | None
    try:
        incumbent = greedy_zero_cost_cover(graph)
        upper_bound = incumbent.n_paths
    except InfeasibleZeroCostCover:
        incumbent = None
        upper_bound = n + 1  # sentinel: any real cover beats it

    if incumbent is not None and incumbent.n_paths == lower_bound:
        return CoverSearchResult(incumbent, lower_bound, True, lower_bound,
                                 upper_bound, 0)

    # max_wrap_source[f]: latest position whose wrap-around to f is free.
    max_wrap_source = [-1] * n
    for source, target in graph.inter_edges:
        if source > max_wrap_source[target]:
            max_wrap_source[target] = source

    # Bitmask adjacency: bit q of succ_bits[p] is the intra edge p -> q,
    # bit p of inter_bits[q] the wrap edge q -> p.  Single shift-and-test
    # probes replace tuple-in-frozenset lookups in the search core.
    succ_bits = [0] * n
    for p, q in graph.intra_edges:
        succ_bits[p] |= 1 << q
    inter_bits = [0] * n
    for q, p in graph.inter_edges:
        inter_bits[q] |= 1 << p

    # Offsets are valid distance material between intra-adjacent nodes
    # (an intra edge implies same array / coefficient / loop variable).
    offsets = [access.offset for access in pattern]

    # forced[p]: accesses at positions >= p that no intra edge can ever
    # reach -- each must open a path of its own (the tiling-style
    # occupancy floor used by the opt-in tight bound).
    forced = [0] * (n + 1)
    if tight_bounds:
        predecessors = graph._predecessors
        for p in range(n - 1, -1, -1):
            forced[p] = forced[p + 1] + (not predecessors[p])

    best_size = incumbent.n_paths if incumbent is not None else n + 1
    best_paths: list[tuple[int, ...]] | None = (
        [tuple(path) for path in incumbent] if incumbent is not None else None)
    open_paths: list[_OpenPath] = []
    nodes = 0
    budget_hit = False
    sort_key = itemgetter(0)

    def deadline_of(path: _OpenPath) -> int:
        if inter_bits[path.last] >> path.first & 1:
            return _NO_DEADLINE
        return max_wrap_source[path.first]

    def descend(position: int) -> None:
        nonlocal nodes, best_size, best_paths, budget_hit
        if budget_hit or best_size == lower_bound:
            return
        nodes += 1
        if nodes > node_budget:
            budget_hit = True
            return

        n_open = len(open_paths)
        if position == n:
            # Every deadline is _NO_DEADLINE exactly when every path
            # already wraps for free.
            if n_open < best_size and all(
                    path.deadline == _NO_DEADLINE for path in open_paths):
                best_size = n_open
                best_paths = [tuple(path.indices) for path in open_paths]
            return

        if n_open >= best_size:
            return
        if tight_bounds and n_open + forced[position] >= best_size:
            return
        for path in open_paths:
            if path.deadline < position:
                return

        # Extension branches, most promising first.
        candidates: list[tuple[tuple[int, int, int], _OpenPath]] = []
        position_offset = offsets[position]
        for path in open_paths:
            last = path.last
            if not succ_bits[last] >> position & 1:
                continue
            closes = inter_bits[position] >> path.first & 1
            candidates.append(
                ((0 if closes else 1, abs(position_offset - offsets[last]),
                  -last), path))
        candidates.sort(key=sort_key)
        for _key, path in candidates:
            saved_last, saved_deadline = path.last, path.deadline
            path.indices.append(position)
            path.last = position
            path.deadline = deadline_of(path)
            descend(position + 1)
            path.indices.pop()
            path.last, path.deadline = saved_last, saved_deadline
            if budget_hit or best_size == lower_bound:
                return

        # Canonical new-path branch.
        if len(open_paths) + 1 < best_size:
            fresh = _OpenPath(position)
            fresh.deadline = deadline_of(fresh)
            open_paths.append(fresh)
            descend(position + 1)
            open_paths.pop()

    descend(0)

    if best_paths is None:
        if budget_hit:
            raise SearchBudgetExceeded(
                f"no zero-cost cover found within {node_budget} nodes "
                f"(N={n}, M={modify_range})")
        raise InfeasibleZeroCostCover(
            f"no zero-cost cover exists for this group "
            f"(N={n}, M={modify_range}, step={pattern.step})")

    cover = PathCover.from_lists(best_paths, n)
    return CoverSearchResult(cover, cover.n_paths, not budget_hit,
                             lower_bound, min(upper_bound, cover.n_paths),
                             nodes)
