"""Greedy zero-cost path cover: the upper-bound heuristic of phase 1.

The paper bootstraps its branch-and-bound with "a heuristic algorithm
for determination of a tight upper bound" (section 3.1).  We run a small
portfolio of two constructions and keep the smaller cover:

* a wrap-aware greedy scan over the accesses in program order, and
* the exact minimum *intra-iteration* cover (via matching) followed by a
  wrap-repair pass.

Both end with the same repair step, so the result is always a valid
*zero-cost* cover (intra and wrap-around transitions all free), whose
size upper-bounds ``K~``.

A path can only wrap for free when its last offset lands in the "home
window" ``[o_first + S - M, o_first + S + M]``; the scan therefore
(a) refuses attachments that would make a free wrap unreachable, and
(b) prefers attachments that keep the path close to its home window.
"""

from __future__ import annotations

from repro.errors import InfeasibleZeroCostCover
from repro.graph.access_graph import AccessGraph
from repro.graph.distance import intra_distance
from repro.pathcover.lower_bound import min_intra_path_cover
from repro.pathcover.paths import PathCover


def greedy_zero_cost_cover(graph: AccessGraph) -> PathCover:
    """A zero-cost path cover of the access graph (upper bound on ``K~``).

    Raises
    ------
    InfeasibleZeroCostCover
        If even singleton paths cannot wrap for free (an access's
        per-iteration address step exceeds the modify range).
    """
    candidates = [_scan_cover(graph), _repaired_matching_cover(graph)]
    return min(candidates, key=lambda cover: cover.n_paths)


# ----------------------------------------------------------------------
# Construction 1: wrap-aware greedy scan
# ----------------------------------------------------------------------
def _scan_cover(graph: AccessGraph) -> PathCover:
    pattern = graph.pattern
    n = graph.n_nodes

    # max_wrap_source[f]: latest position whose wrap-around to f is free.
    max_wrap_source = [-1] * n
    for source, target in graph.inter_edges:
        if source > max_wrap_source[target]:
            max_wrap_source[target] = source

    open_paths: list[list[int]] = []
    for position in range(n):
        best: list[int] | None = None
        best_key: tuple[int, int, int, int] | None = None
        for path in open_paths:
            tail = path[-1]
            if not graph.has_intra_edge(tail, position):
                continue
            closes = graph.has_inter_edge(position, path[0])
            if not closes and max_wrap_source[path[0]] < position:
                # Attaching would make a free wrap unreachable forever.
                continue
            distance = intra_distance(pattern[tail], pattern[position])
            assert distance is not None  # implied by the intra edge
            home = _home_gap(graph, path[0], position)
            key = (0 if closes else 1, home, abs(distance), -tail)
            if best_key is None or key < best_key:
                best, best_key = path, key
        if best is not None:
            best.append(position)
        else:
            open_paths.append([position])

    repaired: list[list[int]] = []
    for path in open_paths:
        repaired.extend(_repair_wrap(path, graph))
    return PathCover.from_lists(repaired, n)


def _home_gap(graph: AccessGraph, first: int, candidate: int) -> int:
    """How far ``candidate``'s offset is from the path's home window.

    The home window is where a path starting at ``first`` must end for a
    free wrap-around.  0 means the candidate could close the path.
    """
    pattern = graph.pattern
    first_access = pattern[first]
    candidate_access = pattern[candidate]
    home = first_access.offset + first_access.coefficient * pattern.step
    return max(0, abs(candidate_access.offset - home) - graph.modify_range)


# ----------------------------------------------------------------------
# Construction 2: minimum intra cover + wrap repair
# ----------------------------------------------------------------------
def _repaired_matching_cover(graph: AccessGraph) -> PathCover:
    intra_cover = min_intra_path_cover(graph)
    repaired: list[list[int]] = []
    for path in intra_cover:
        repaired.extend(_repair_wrap(list(path), graph))
    return PathCover.from_lists(repaired, graph.n_nodes)


# ----------------------------------------------------------------------
# Shared wrap-repair pass
# ----------------------------------------------------------------------
def _repair_wrap(indices: list[int], graph: AccessGraph) -> list[list[int]]:
    """Split a chain with zero-cost intra steps into wrap-valid chains.

    Every contiguous slice of the chain keeps its intra steps free, so
    splitting only has to fix wrap-around transitions.  Preference: a
    single split fixing both halves, then a split whose head is fixed
    (recursing on the tail), then shedding the last element.
    """
    if _wrap_ok(indices, graph):
        return [indices]
    if len(indices) == 1:
        access = graph.pattern[indices[0]]
        raise InfeasibleZeroCostCover(
            f"access {access} cannot follow the loop for free: its "
            f"per-iteration address step exceeds the modify range "
            f"M={graph.modify_range}")
    for cut in range(len(indices) - 1, 0, -1):
        if _wrap_ok(indices[:cut], graph) and _wrap_ok(indices[cut:], graph):
            return [indices[:cut], indices[cut:]]
    for cut in range(len(indices) - 1, 0, -1):
        if _wrap_ok(indices[:cut], graph):
            return [indices[:cut]] + _repair_wrap(indices[cut:], graph)
    return (_repair_wrap(indices[:-1], graph)
            + _repair_wrap([indices[-1]], graph))


def _wrap_ok(indices: list[int], graph: AccessGraph) -> bool:
    return graph.has_inter_edge(indices[-1], indices[0])
