"""Matching-based lower bound on ``K~`` (role of ref [2] in the paper).

The intra-iteration access graph is a DAG (edges only go from earlier to
later positions).  By König's theorem its minimum node-disjoint path
cover has size ``N - |maximum bipartite matching|``.  Every zero-cost
steady-state cover is in particular a path cover of that DAG (dropping
the wrap-around requirement only removes constraints), hence::

    minimum intra cover size  <=  K~

which is the lower bound used to bootstrap the branch-and-bound.  As a
by-product the matching yields an actual minimum intra-iteration cover,
which is also the allocator's fallback starting point when no zero-cost
steady-state cover exists (``M`` smaller than the per-iteration step).
"""

from __future__ import annotations

from repro.graph.access_graph import AccessGraph
from repro.pathcover.matching import HopcroftKarp
from repro.pathcover.paths import Path, PathCover


def _solved_matching(graph: AccessGraph) -> HopcroftKarp:
    adjacency = [list(graph.successors(node)) for node in graph.nodes()]
    solver = HopcroftKarp(graph.n_nodes, graph.n_nodes, adjacency)
    solver.solve()
    return solver


def intra_cover_lower_bound(graph: AccessGraph) -> int:
    """Minimum number of node-disjoint paths covering the intra DAG.

    This equals ``N - |maximum matching|`` and lower-bounds ``K~``.
    """
    solver = _solved_matching(graph)
    return graph.n_nodes - solver.size


def min_intra_path_cover(graph: AccessGraph) -> PathCover:
    """An exact minimum path cover of the intra-iteration DAG.

    The matching links each position to at most one successor; chains of
    links are the paths.  Wrap-around (inter-iteration) costs are *not*
    considered here -- see :func:`repro.pathcover.minimum_zero_cost_cover`
    for the full phase-1 problem.
    """
    solver = _solved_matching(graph)
    next_of = solver.match_left
    has_predecessor = [right != -1 for right in solver.match_right]

    paths: list[Path] = []
    for start in graph.nodes():
        if has_predecessor[start]:
            continue
        chain = [start]
        while next_of[chain[-1]] != -1:
            chain.append(next_of[chain[-1]])
        paths.append(Path(tuple(chain)))
    return PathCover(tuple(paths), graph.n_nodes)
