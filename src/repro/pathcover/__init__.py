"""Phase 1 of the paper's algorithm: minimum zero-cost path covers.

Given the access graph, compute the minimum number ``K~`` of "virtual"
address registers for which every address computation is free
(section 3.1).  The subpackage provides:

* :mod:`repro.pathcover.paths` -- the :class:`Path`/:class:`PathCover`
  datatypes shared by the whole library.
* :mod:`repro.pathcover.matching` -- a from-scratch Hopcroft--Karp
  maximum bipartite matching.
* :mod:`repro.pathcover.lower_bound` -- the matching-based lower bound
  on ``K~`` (role of ref [2]) and the exact minimum *intra-iteration*
  path cover it induces.
* :mod:`repro.pathcover.heuristic` -- a wrap-aware greedy cover giving a
  tight upper bound.
* :mod:`repro.pathcover.branch_and_bound` -- the exact search of the
  companion paper [3], bootstrapped by the two bounds.
"""

from repro.pathcover.branch_and_bound import (
    CoverSearchResult,
    minimum_zero_cost_cover,
)
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import (
    intra_cover_lower_bound,
    min_intra_path_cover,
)
from repro.pathcover.matching import HopcroftKarp
from repro.pathcover.paths import Path, PathCover
from repro.pathcover.verify import (
    is_zero_cost_path,
    path_intra_distances,
    path_wrap_distance,
)

__all__ = [
    "CoverSearchResult",
    "HopcroftKarp",
    "Path",
    "PathCover",
    "greedy_zero_cost_cover",
    "intra_cover_lower_bound",
    "is_zero_cost_path",
    "min_intra_path_cover",
    "minimum_zero_cost_cover",
    "path_intra_distances",
    "path_wrap_distance",
]
