"""Validity checks for paths and covers against the cost model.

These helpers are deliberately implemented straight from the distance
definitions (not via the search algorithms) so they can serve as an
independent oracle in tests.
"""

from __future__ import annotations

from repro.errors import PathCoverError
from repro.graph.distance import intra_distance, is_zero_cost, wrap_distance
from repro.ir.types import AccessPattern
from repro.pathcover.paths import Path, PathCover


def path_intra_distances(path: Path,
                         pattern: AccessPattern) -> list[int | None]:
    """Address distances along the path's consecutive intra-iteration
    transitions (``None`` where not compile-time constant)."""
    _check_positions(path, pattern)
    return [intra_distance(pattern[p], pattern[q])
            for p, q in path.transitions()]


def path_wrap_distance(path: Path, pattern: AccessPattern) -> int | None:
    """Address distance of the path's wrap-around transition.

    From the register's last access in iteration ``t`` to its first
    access in iteration ``t + 1``; ``None`` if not constant.
    """
    _check_positions(path, pattern)
    return wrap_distance(pattern[path.last], pattern[path.first],
                         pattern.step)


def is_zero_cost_path(path: Path, pattern: AccessPattern,
                      modify_range: int, include_wrap: bool = True) -> bool:
    """Whether a register can serve the whole path for free.

    With ``include_wrap`` (the steady-state model and the phase-1
    definition of ``K~``) the wrap-around transition must be free too.
    """
    for distance in path_intra_distances(path, pattern):
        if not is_zero_cost(distance, modify_range):
            return False
    if include_wrap:
        return is_zero_cost(path_wrap_distance(path, pattern), modify_range)
    return True


def is_zero_cost_cover(cover: PathCover, pattern: AccessPattern,
                       modify_range: int, include_wrap: bool = True) -> bool:
    """Whether every path of the cover is zero-cost."""
    if cover.n_accesses != len(pattern):
        raise PathCoverError(
            f"cover is over {cover.n_accesses} accesses but the pattern "
            f"has {len(pattern)}")
    return all(is_zero_cost_path(path, pattern, modify_range, include_wrap)
               for path in cover)


def _check_positions(path: Path, pattern: AccessPattern) -> None:
    if path.last >= len(pattern):
        raise PathCoverError(
            f"path position {path.last} out of range for pattern of "
            f"length {len(pattern)}")
