"""Exhaustive optimal register allocation (small-instance reference).

Any allocation of the ``N`` accesses to ``K`` registers is a partition
of the positions into at most ``K`` increasing subsequences (the merge
operator preserves program order, so order within a register is never a
choice).  This module searches all such partitions with cost-based
pruning, yielding the true optimum -- used to measure how close the
paper's two-phase heuristic gets (experiment EXP-A3) and as a test
oracle.  Exponential: intended for ``N`` up to roughly 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, SearchBudgetExceeded
from repro.graph.distance import intra_distance, transition_cost, wrap_distance
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel
from repro.pathcover.paths import PathCover

#: Default cap on explored assignment nodes.
DEFAULT_NODE_BUDGET = 2_000_000


@dataclass(frozen=True)
class OptimalAllocation:
    """Result of the exhaustive search."""

    cover: PathCover
    total_cost: int
    nodes_explored: int
    #: False when the node budget was hit (result then only an incumbent).
    proven_optimal: bool


def optimal_allocation(pattern: AccessPattern, n_registers: int,
                       modify_range: int,
                       model: CostModel = CostModel.STEADY_STATE,
                       node_budget: int = DEFAULT_NODE_BUDGET,
                       ) -> OptimalAllocation:
    """Minimum-cost allocation of a pattern to ``n_registers`` registers.

    Raises
    ------
    AllocationError
        For a non-positive register count.
    SearchBudgetExceeded
        Only if the budget is exhausted before any complete assignment
        is found (cannot happen for ``node_budget >= N``).
    """
    if n_registers < 1:
        raise AllocationError(
            f"need at least one address register, got {n_registers}")
    n = len(pattern)
    if n == 0:
        return OptimalAllocation(PathCover((), 0), 0, 0, True)
    limit = min(n_registers, n)

    include_wrap = model is CostModel.STEADY_STATE
    step = pattern.step

    groups: list[list[int]] = []
    best_cost: int | None = None
    best_groups: list[tuple[int, ...]] | None = None
    nodes = 0
    budget_hit = False

    def leaf_wrap_cost() -> int:
        if not include_wrap:
            return 0
        return sum(
            transition_cost(
                wrap_distance(pattern[group[-1]], pattern[group[0]], step),
                modify_range)
            for group in groups)

    def descend(position: int, cost: int) -> None:
        nonlocal nodes, best_cost, best_groups, budget_hit
        if budget_hit or best_cost == 0:
            return
        nodes += 1
        if nodes > node_budget:
            budget_hit = True
            return
        if best_cost is not None and cost >= best_cost:
            return
        if position == n:
            total = cost + leaf_wrap_cost()
            if best_cost is None or total < best_cost:
                best_cost = total
                best_groups = [tuple(group) for group in groups]
            return

        for group in groups:
            extra = transition_cost(
                intra_distance(pattern[group[-1]], pattern[position]),
                modify_range)
            group.append(position)
            descend(position + 1, cost + extra)
            group.pop()
            if budget_hit or best_cost == 0:
                return
        if len(groups) < limit:
            groups.append([position])
            descend(position + 1, cost)
            groups.pop()

    descend(0, 0)

    if best_groups is None:
        raise SearchBudgetExceeded(
            f"no complete assignment found within {node_budget} nodes")
    cover = PathCover.from_lists(best_groups, n)
    assert best_cost is not None
    return OptimalAllocation(cover, best_cost, nodes, not budget_hit)
