"""Phase 2 of the paper's algorithm: meeting the register constraint.

When ``K~ > K``, the path set must shrink by merging paths (section
3.2).  This subpackage provides the cost model ``C(P)``
(:mod:`repro.merging.cost`), the paper's best-pair greedy merging
(:mod:`repro.merging.greedy`), the naive arbitrary-merging baselines of
the Results section (:mod:`repro.merging.naive`), and an exhaustive
optimal allocator used as a reference on small instances
(:mod:`repro.merging.exhaustive`).
"""

from repro.merging.cost import (
    CostModel,
    cover_cost,
    merge_cost,
    path_cost,
)
from repro.merging.exhaustive import OptimalAllocation, optimal_allocation
from repro.merging.greedy import MergeResult, MergeStep, best_pair_merge
from repro.merging.naive import NAIVE_STRATEGIES, naive_merge

__all__ = [
    "CostModel",
    "MergeResult",
    "MergeStep",
    "NAIVE_STRATEGIES",
    "OptimalAllocation",
    "best_pair_merge",
    "cover_cost",
    "merge_cost",
    "naive_merge",
    "optimal_allocation",
    "path_cost",
]
