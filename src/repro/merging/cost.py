"""Path costs ``C(P)`` and the cost model of the paper.

Section 3.2 defines the cost of a path ``P = (a_i1, ..., a_in)`` as the
number of consecutive pairs whose address distance exceeds the modify
range ``M`` -- the number of unit-cost address computations the register
serving ``P`` needs per loop iteration.

Two variants are provided:

* :attr:`CostModel.INTRA` -- the literal formula above: only pairs
  within the iteration count.
* :attr:`CostModel.STEADY_STATE` -- additionally counts the wrap-around
  transition (from the path's last access back to its first access of
  the next iteration) when it is not free.  This is what phase 1's
  zero-cost definition uses and what generated code actually pays per
  iteration in a steady-state loop, so it is the library default.

Transitions whose distance is not a compile-time constant (different
arrays, different index coefficients) always cost one unit.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Iterable

from repro.graph.distance import transition_cost
from repro.ir.types import AccessPattern
from repro.pathcover.paths import Path, PathCover
from repro.pathcover.verify import path_intra_distances, path_wrap_distance


@unique
class CostModel(Enum):
    """Which transitions of a path are charged."""

    #: Only intra-iteration consecutive pairs (the paper's literal C(P)).
    INTRA = "intra"
    #: Intra pairs plus the inter-iteration wrap-around transition.
    STEADY_STATE = "steady_state"


def path_cost(path: Path, pattern: AccessPattern, modify_range: int,
              model: CostModel = CostModel.STEADY_STATE,
              free_deltas: frozenset[int] = frozenset()) -> int:
    """Number of unit-cost address computations of one path.

    Under :attr:`CostModel.STEADY_STATE` this is the per-iteration count
    of extra instructions for the register serving ``path`` in a
    steady-state loop.  ``free_deltas`` extends the free set for AGUs
    with modify registers (see :mod:`repro.modreg`).
    """
    cost = sum(transition_cost(distance, modify_range, free_deltas)
               for distance in path_intra_distances(path, pattern))
    if model is CostModel.STEADY_STATE:
        cost += transition_cost(path_wrap_distance(path, pattern),
                                modify_range, free_deltas)
    return cost


def cover_cost(paths: PathCover | Iterable[Path], pattern: AccessPattern,
               modify_range: int,
               model: CostModel = CostModel.STEADY_STATE,
               free_deltas: frozenset[int] = frozenset()) -> int:
    """Total unit-cost address computations of an allocation.

    The allocation's cost is simply the sum of its path costs: registers
    are independent of each other.
    """
    return sum(path_cost(path, pattern, modify_range, model, free_deltas)
               for path in paths)


def merge_cost(first: Path, second: Path, pattern: AccessPattern,
               modify_range: int,
               model: CostModel = CostModel.STEADY_STATE,
               free_deltas: frozenset[int] = frozenset()) -> int:
    """Cost ``C(P_i (+) P_j)`` of the would-be merged path.

    This is the quantity the paper's phase-2 heuristic minimizes over
    all path pairs.
    """
    return path_cost(first.merge(second), pattern, modify_range, model,
                     free_deltas)
