"""Naive merging baselines: the paper's comparison point (section 4).

The paper evaluates its heuristic "as compared to a non-optimized
address register allocation, which repetitively merges two arbitrary
paths until the register constraint is met".  ``arbitrary`` is realized
by three interchangeable strategies:

* ``random`` -- merge a uniformly random pair (seeded; the default, and
  what the statistical experiment averages over);
* ``first_pair`` -- always merge the two paths that start earliest;
* ``last_pair`` -- always merge the two paths that start latest.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import AllocationError
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel, cover_cost
from repro.merging.greedy import MergeResult, MergeStep
from repro.pathcover.paths import Path, PathCover

_PairPicker = Callable[[list[Path], random.Random], tuple[int, int]]


def _pick_random(paths: list[Path], rng: random.Random) -> tuple[int, int]:
    i, j = rng.sample(range(len(paths)), 2)
    return (i, j) if i < j else (j, i)


def _pick_first_pair(paths: list[Path],
                     rng: random.Random) -> tuple[int, int]:
    return (0, 1)


def _pick_last_pair(paths: list[Path], rng: random.Random) -> tuple[int, int]:
    return (len(paths) - 2, len(paths) - 1)


NAIVE_STRATEGIES: dict[str, _PairPicker] = {
    "random": _pick_random,
    "first_pair": _pick_first_pair,
    "last_pair": _pick_last_pair,
}


def naive_merge(cover: PathCover, n_registers: int, pattern: AccessPattern,
                modify_range: int,
                model: CostModel = CostModel.STEADY_STATE,
                strategy: str = "random",
                seed: int | None = 0) -> MergeResult:
    """Merge arbitrary path pairs until ``n_registers`` remain.

    ``seed`` only matters for the ``random`` strategy; passing ``None``
    uses a nondeterministic seed (not recommended outside exploration).
    """
    if n_registers < 1:
        raise AllocationError(
            f"need at least one address register, got {n_registers}")
    if cover.n_accesses != len(pattern):
        raise AllocationError(
            f"cover is over {cover.n_accesses} accesses but the pattern "
            f"has {len(pattern)}")
    try:
        picker = NAIVE_STRATEGIES[strategy]
    except KeyError:
        raise AllocationError(
            f"unknown naive strategy {strategy!r}; available: "
            f"{sorted(NAIVE_STRATEGIES)}") from None

    rng = random.Random(seed)
    paths: list[Path] = list(cover)
    steps: list[MergeStep] = []
    while len(paths) > n_registers:
        paths.sort(key=lambda path: path.first)
        i, j = picker(paths, rng)
        if not (0 <= i < j < len(paths)):
            raise AllocationError(
                f"strategy {strategy!r} picked invalid pair ({i}, {j})")
        merged = paths[i].merge(paths[j])
        merged_cost = cover_cost([merged], pattern, modify_range, model)
        steps.append(MergeStep(paths[i], paths[j], merged, merged_cost))
        del paths[j]
        del paths[i]
        paths.append(merged)

    final = PathCover(tuple(paths), cover.n_accesses)
    total = cover_cost(final, pattern, modify_range, model)
    return MergeResult(final, total, tuple(steps),
                       strategy=f"naive/{strategy}")
