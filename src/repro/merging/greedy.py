"""Best-pair path merging: the paper's phase-2 heuristic (section 3.2).

While more paths exist than physical registers, select the pair
``(P_i, P_j)`` whose merged cost ``C(P_i (+) P_j)`` is minimal among all
pairs, replace the two paths by their merge, and repeat.  Ties are
broken deterministically towards the lexicographically first pair (by
first access position), so results are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel, cover_cost, path_cost
from repro.pathcover.paths import Path, PathCover


@dataclass(frozen=True)
class MergeStep:
    """One merge performed while reducing the path count."""

    left: Path
    right: Path
    merged: Path
    merged_cost: int

    def __str__(self) -> str:
        return (f"{self.left} (+) {self.right} -> {self.merged} "
                f"[C={self.merged_cost}]")


@dataclass(frozen=True)
class MergeResult:
    """Final allocation after merging down to the register limit."""

    cover: PathCover
    total_cost: int
    steps: tuple[MergeStep, ...] = field(default=())
    strategy: str = "best_pair"

    @property
    def n_registers(self) -> int:
        """Address registers the merged cover needs (its path count)."""
        return self.cover.n_paths


def best_pair_merge(cover: PathCover, n_registers: int,
                    pattern: AccessPattern, modify_range: int,
                    model: CostModel = CostModel.STEADY_STATE,
                    free_deltas: frozenset[int] = frozenset(),
                    ) -> MergeResult:
    """Merge paths until at most ``n_registers`` remain (paper phase 2).

    The input cover is typically phase 1's zero-cost cover (``K~``
    paths); any valid cover works, e.g. the intra-only fallback cover
    used when no zero-cost cover exists.  ``free_deltas`` extends the
    free-transition set for the modify-register extension
    (:mod:`repro.modreg`).
    """
    if n_registers < 1:
        raise AllocationError(
            f"need at least one address register, got {n_registers}")
    if cover.n_accesses != len(pattern):
        raise AllocationError(
            f"cover is over {cover.n_accesses} accesses but the pattern "
            f"has {len(pattern)}")

    paths: list[Path] = list(cover)
    steps: list[MergeStep] = []
    while len(paths) > n_registers:
        best_pair: tuple[int, int] | None = None
        best_key: tuple[int, int, int] | None = None
        # Canonical order makes tie-breaking deterministic.
        paths.sort(key=lambda path: path.first)
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                merged_cost = path_cost(paths[i].merge(paths[j]), pattern,
                                        modify_range, model, free_deltas)
                key = (merged_cost, paths[i].first, paths[j].first)
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (i, j)
        assert best_pair is not None and best_key is not None
        i, j = best_pair
        merged = paths[i].merge(paths[j])
        steps.append(MergeStep(paths[i], paths[j], merged, best_key[0]))
        # Remove j first (j > i) so i's index stays valid.
        del paths[j]
        del paths[i]
        paths.append(merged)

    final = PathCover(tuple(paths), cover.n_accesses)
    total = cover_cost(final, pattern, modify_range, model, free_deltas)
    return MergeResult(final, total, tuple(steps), strategy="best_pair")
