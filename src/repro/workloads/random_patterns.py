"""Seeded random access-pattern generation (the paper's section 4 input).

The paper evaluates on "random access patterns and a variety of
parameters N, M, and K" without fixing a distribution.  We provide four
seedable offset distributions so the statistical experiment can show its
result is not an artifact of one shape:

* ``uniform`` -- offsets i.i.d. uniform over ``[-span, span]``;
* ``clustered`` -- offsets gather around a few cluster centres, like
  code touching a handful of window neighbourhoods;
* ``sweep`` -- sorted offsets, like a sliding-window walk;
* ``mixed`` -- half clustered, half uniform, shuffled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.ir.expr import AffineExpr
from repro.ir.types import AccessPattern, ArrayAccess

#: Names the generator can hand out for multi-array patterns.
_ARRAY_NAMES = tuple("ABCDEFGH")


@dataclass(frozen=True)
class RandomPatternConfig:
    """Parameters of one random-pattern family.

    Attributes
    ----------
    n_accesses:
        The paper's ``N``.
    offset_span:
        Offsets are drawn from ``[-offset_span, +offset_span]``.
    distribution:
        One of :data:`DISTRIBUTIONS`.
    n_arrays:
        Accesses are spread uniformly over this many arrays (1 for the
        paper's single-array setting).
    write_fraction:
        Fraction of accesses marked as writes (cost-neutral; kept for
        realism of generated kernels).
    step:
        Loop step ``S``.
    cluster_spread:
        Half-width of a cluster for the ``clustered`` distribution.
    """

    n_accesses: int
    offset_span: int = 8
    distribution: str = "uniform"
    n_arrays: int = 1
    write_fraction: float = 0.0
    step: int = 1
    cluster_spread: int = 2

    def __post_init__(self) -> None:
        if self.n_accesses < 0:
            raise WorkloadError(
                f"n_accesses must be >= 0, got {self.n_accesses}")
        if self.offset_span < 0:
            raise WorkloadError(
                f"offset_span must be >= 0, got {self.offset_span}")
        if self.distribution not in DISTRIBUTIONS:
            raise WorkloadError(
                f"unknown distribution {self.distribution!r}; available: "
                f"{sorted(DISTRIBUTIONS)}")
        if not 1 <= self.n_arrays <= len(_ARRAY_NAMES):
            raise WorkloadError(
                f"n_arrays must be in 1..{len(_ARRAY_NAMES)}, got "
                f"{self.n_arrays}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(
                f"write_fraction must be in [0, 1], got "
                f"{self.write_fraction}")
        if self.step == 0:
            raise WorkloadError("step must be non-zero")
        if self.cluster_spread < 0:
            raise WorkloadError(
                f"cluster_spread must be >= 0, got {self.cluster_spread}")


def _offsets_uniform(config: RandomPatternConfig,
                     rng: random.Random) -> list[int]:
    span = config.offset_span
    return [rng.randint(-span, span) for _ in range(config.n_accesses)]


def _offsets_clustered(config: RandomPatternConfig,
                       rng: random.Random) -> list[int]:
    span = config.offset_span
    n_clusters = max(1, config.n_accesses // 5)
    centres = [rng.randint(-span, span) for _ in range(n_clusters)]
    spread = config.cluster_spread
    offsets = []
    for _ in range(config.n_accesses):
        centre = rng.choice(centres)
        offset = centre + rng.randint(-spread, spread)
        offsets.append(max(-span, min(span, offset)))
    return offsets


def _offsets_sweep(config: RandomPatternConfig,
                   rng: random.Random) -> list[int]:
    return sorted(_offsets_uniform(config, rng))


def _offsets_mixed(config: RandomPatternConfig,
                   rng: random.Random) -> list[int]:
    half = config.n_accesses // 2
    first = _offsets_clustered(
        RandomPatternConfig(half, config.offset_span, "clustered",
                            cluster_spread=config.cluster_spread), rng)
    second = _offsets_uniform(
        RandomPatternConfig(config.n_accesses - half, config.offset_span),
        rng)
    offsets = first + second
    rng.shuffle(offsets)
    return offsets


DISTRIBUTIONS = {
    "uniform": _offsets_uniform,
    "clustered": _offsets_clustered,
    "sweep": _offsets_sweep,
    "mixed": _offsets_mixed,
}


def generate_pattern(config: RandomPatternConfig,
                     seed: int | random.Random = 0) -> AccessPattern:
    """One random access pattern drawn from the configured family."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    offsets = DISTRIBUTIONS[config.distribution](config, rng)
    accesses = []
    for offset in offsets:
        array = _ARRAY_NAMES[rng.randrange(config.n_arrays)] \
            if config.n_arrays > 1 else _ARRAY_NAMES[0]
        is_write = rng.random() < config.write_fraction
        accesses.append(ArrayAccess(array, AffineExpr(1, offset),
                                    is_write=is_write))
    return AccessPattern(tuple(accesses), step=config.step)


def generate_batch(config: RandomPatternConfig, count: int,
                   seed: int = 0) -> list[AccessPattern]:
    """``count`` independent patterns from one master seed.

    Reproducible: the same ``(config, count, seed)`` always yields the
    same batch.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    return [generate_pattern(config, rng) for _ in range(count)]
