"""Named kernel suites for experiments and benchmarks."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.kernels import KERNELS, DspKernel

#: Named subsets of the kernel library.
SUITES: dict[str, tuple[str, ...]] = {
    # Small, fast suite for smoke benchmarks.
    "core8": (
        "paper_example", "fir8", "iir_biquad_df1", "convolution8",
        "dot_product", "matvec_row4", "fft_butterfly", "complex_mac",
    ),
    # Filters only (the archetypal DSP workloads).
    "filters": (
        "fir8", "fir16", "fir8_symmetric", "iir_biquad_df1",
        "iir_biquad_df2", "convolution8", "moving_average4",
        "biquad_cascade2",
    ),
    # Everything.
    "full": tuple(sorted(KERNELS)),
}


def suite_kernels(name: str) -> list[DspKernel]:
    """The kernels of a named suite, in suite order."""
    try:
        members = SUITES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}") \
            from None
    return [KERNELS[kernel_name] for kernel_name in members]
