"""Plain-text access-trace format: patterns in and out of files.

A trace file describes one loop iteration's access pattern, one access
per line, so users can feed measured or hand-written patterns to the
allocator without writing kernel source:

.. code-block:: text

    # anything after '#' is a comment
    step 1            # optional header: loop step (default 1)
    A +1              # read  A[i+1]
    A 0               # read  A[i]
    A -2 w            # write A[i-2]
    B 3 coeff=2       # read  B[2*i+3]

Token order after the array name is free (``w`` marks a write,
``coeff=<c>`` sets the index coefficient).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import WorkloadError
from repro.ir.expr import AffineExpr
from repro.ir.types import AccessPattern, ArrayAccess


def parse_trace(text: str) -> AccessPattern:
    """Parse trace text into an :class:`AccessPattern`."""
    step = 1
    accesses: list[ArrayAccess] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "step":
            if accesses:
                raise WorkloadError(
                    f"trace line {line_number}: 'step' must precede all "
                    f"accesses")
            if len(tokens) != 2:
                raise WorkloadError(
                    f"trace line {line_number}: expected 'step <int>'")
            step = _parse_int(tokens[1], line_number)
            if step == 0:
                raise WorkloadError(
                    f"trace line {line_number}: step must be non-zero")
            continue

        if len(tokens) < 2:
            raise WorkloadError(
                f"trace line {line_number}: expected "
                f"'<array> <offset> [coeff=<c>] [w]', got {line!r}")
        array = tokens[0]
        if not array.isidentifier():
            raise WorkloadError(
                f"trace line {line_number}: invalid array name {array!r}")
        offset = _parse_int(tokens[1], line_number)
        coefficient = 1
        is_write = False
        for token in tokens[2:]:
            if token == "w":
                is_write = True
            elif token.startswith("coeff="):
                coefficient = _parse_int(token[len("coeff="):],
                                         line_number)
            else:
                raise WorkloadError(
                    f"trace line {line_number}: unknown token {token!r}")
        accesses.append(ArrayAccess(array, AffineExpr(coefficient, offset),
                                    is_write=is_write))
    return AccessPattern(tuple(accesses), step=step)


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise WorkloadError(
            f"trace line {line_number}: expected an integer, got "
            f"{token!r}") from None


def format_trace(pattern: AccessPattern) -> str:
    """Render a pattern in the trace format (round-trips with
    :func:`parse_trace`)."""
    lines = [f"step {pattern.step}"]
    for access in pattern:
        parts = [access.array, f"{access.offset:+d}"]
        if access.coefficient != 1:
            parts.append(f"coeff={access.coefficient}")
        if access.is_write:
            parts.append("w")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def load_trace(path: str | Path) -> AccessPattern:
    """Read a trace file."""
    return parse_trace(Path(path).read_text(encoding="utf-8"))


def save_trace(pattern: AccessPattern, path: str | Path) -> Path:
    """Write a pattern as a trace file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(format_trace(pattern), encoding="utf-8")
    return target
