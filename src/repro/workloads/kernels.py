"""A library of classic DSP loop kernels in the C-like frontend language.

These mirror the workloads the paper's introduction motivates ("iterative
accesses to data array elements within loops") and the realistic DSP
programs referenced for the 30 %/60 % improvement figures [1]: FIR and
IIR filters, convolution/correlation, adaptive filters, transforms, and
vector kernels.  Every kernel is plain source text, so the whole
frontend is exercised on realistic inputs; parsing results are cached.

Loop bounds are concrete so the AGU simulator can run each kernel
without extra configuration, and start values are chosen so no negative
array element is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import WorkloadError
from repro.ir.parser import parse_kernel
from repro.ir.types import Kernel


@dataclass(frozen=True)
class DspKernel:
    """One named kernel: metadata plus frontend source text."""

    name: str
    category: str
    description: str
    source: str

    def kernel(self) -> Kernel:
        """Parse (cached) into the IR."""
        return _parse_cached(self.name)

    @property
    def n_accesses(self) -> int:
        """Array accesses per loop iteration."""
        return len(self.kernel().pattern)


@lru_cache(maxsize=None)
def _parse_cached(name: str) -> Kernel:
    entry = KERNELS[name]
    return parse_kernel(entry.source, name=name)


def get_kernel(name: str) -> DspKernel:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}") \
            from None


def _k(name: str, category: str, description: str, source: str) -> DspKernel:
    return DspKernel(name, category, description, source)


KERNELS: dict[str, DspKernel] = {
    kernel.name: kernel for kernel in [
        _k("paper_example", "synthetic",
           "The example loop of the paper's section 2 (Figure 1).",
           """
           /* Access pattern a_1..a_7 with offsets 1,0,2,-1,1,0,-2. */
           for (i = 2; i <= 100; i++) {
               A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
           }
           """),
        _k("fir8", "filter",
           "8-tap FIR filter, coefficients in h, sliding window over x.",
           """
           int x[128], h[8], y[128], acc;
           for (i = 0; i < 120; i++) {
               acc = x[i]*h[0] + x[i+1]*h[1] + x[i+2]*h[2] + x[i+3]*h[3]
                   + x[i+4]*h[4] + x[i+5]*h[5] + x[i+6]*h[6] + x[i+7]*h[7];
               y[i] = acc;
           }
           """),
        _k("fir16", "filter",
           "16-tap FIR filter (twice the window of fir8).",
           """
           int x[160], h[16], y[160], acc;
           for (i = 0; i < 140; i++) {
               acc = x[i]*h[0] + x[i+1]*h[1] + x[i+2]*h[2] + x[i+3]*h[3]
                   + x[i+4]*h[4] + x[i+5]*h[5] + x[i+6]*h[6] + x[i+7]*h[7]
                   + x[i+8]*h[8] + x[i+9]*h[9] + x[i+10]*h[10]
                   + x[i+11]*h[11] + x[i+12]*h[12] + x[i+13]*h[13]
                   + x[i+14]*h[14] + x[i+15]*h[15];
               y[i] = acc;
           }
           """),
        _k("fir8_symmetric", "filter",
           "Symmetric 8-tap FIR: taps paired from both window ends.",
           """
           int x[128], h[4], y[128], acc;
           for (i = 0; i < 120; i++) {
               acc = (x[i] + x[i+7])*h[0] + (x[i+1] + x[i+6])*h[1]
                   + (x[i+2] + x[i+5])*h[2] + (x[i+3] + x[i+4])*h[3];
               y[i] = acc;
           }
           """),
        _k("iir_biquad_df1", "filter",
           "Direct-form-I biquad IIR section (feedback through y).",
           """
           int x[128], y[128], b0, b1, b2, a1, a2;
           for (i = 2; i < 120; i++) {
               y[i] = b0*x[i] + b1*x[i-1] + b2*x[i-2]
                    - a1*y[i-1] - a2*y[i-2];
           }
           """),
        _k("iir_biquad_df2", "filter",
           "Direct-form-II biquad IIR section with state array w.",
           """
           int x[128], y[128], w[128], b0, b1, b2, a1, a2;
           for (i = 2; i < 120; i++) {
               w[i] = x[i] - a1*w[i-1] - a2*w[i-2];
               y[i] = b0*w[i] + b1*w[i-1] + b2*w[i-2];
           }
           """),
        _k("convolution8", "filter",
           "8-point convolution: kernel h slides backwards over x.",
           """
           int x[160], h[8], y[160], acc;
           for (i = 8; i < 150; i++) {
               acc = x[i]*h[0] + x[i-1]*h[1] + x[i-2]*h[2] + x[i-3]*h[3]
                   + x[i-4]*h[4] + x[i-5]*h[5] + x[i-6]*h[6] + x[i-7]*h[7];
               y[i] = acc;
           }
           """),
        _k("correlation5", "analysis",
           "5-lag cross-correlation of two signals.",
           """
           int x[128], y[128], r[128], acc;
           for (i = 0; i < 120; i++) {
               acc = x[i]*y[i] + x[i+1]*y[i+1] + x[i+2]*y[i+2]
                   + x[i+3]*y[i+3] + x[i+4]*y[i+4];
               r[i] = acc;
           }
           """),
        _k("moving_average4", "filter",
           "4-point moving average (boxcar) filter.",
           """
           int x[128], y[128];
           for (i = 3; i < 120; i++) {
               y[i] = (x[i] + x[i-1] + x[i-2] + x[i-3]) / 4;
           }
           """),
        _k("dot_product", "vector",
           "Dot product accumulation over two vectors.",
           """
           int x[128], y[128], s;
           for (i = 0; i < 128; i++) {
               s += x[i]*y[i];
           }
           """),
        _k("vector_add", "vector",
           "Element-wise vector addition z = x + y.",
           """
           int x[128], y[128], z[128];
           for (i = 0; i < 128; i++) {
               z[i] = x[i] + y[i];
           }
           """),
        _k("energy", "analysis",
           "Signal energy: sum of squares.",
           """
           int x[128], s;
           for (i = 0; i < 128; i++) {
               s += x[i]*x[i];
           }
           """),
        _k("lms_update", "adaptive",
           "LMS adaptive-filter coefficient update h += mu*e*x.",
           """
           int x[128], h[128], mu, e;
           for (i = 0; i < 64; i++) {
               h[i] += mu*e*x[i];
           }
           """),
        _k("matvec_row4", "linear_algebra",
           "Row-major 4-column matrix-vector product (index 4*i+t).",
           """
           int a[512], b[4], c[128], acc;
           for (i = 0; i < 120; i++) {
               acc = a[4*i]*b[0] + a[4*i+1]*b[1] + a[4*i+2]*b[2]
                   + a[4*i+3]*b[3];
               c[i] = acc;
           }
           """),
        _k("fft_butterfly", "transform",
           "Radix-2 FFT butterfly over interleaved re/im pairs.",
           """
           int x[512], wr, wi, tr, ti;
           for (i = 0; i < 120; i++) {
               tr = x[2*i+240]*wr - x[2*i+241]*wi;
               ti = x[2*i+240]*wi + x[2*i+241]*wr;
               x[2*i+240] = x[2*i] - tr;
               x[2*i+241] = x[2*i+1] - ti;
               x[2*i] += tr;
               x[2*i+1] += ti;
           }
           """),
        _k("complex_mac", "vector",
           "Complex multiply-accumulate over split re/im arrays.",
           """
           int ar[128], ai[128], br[128], bi[128], yr[128], yi[128];
           for (i = 0; i < 120; i++) {
               yr[i] = ar[i]*br[i] - ai[i]*bi[i];
               yi[i] = ar[i]*bi[i] + ai[i]*br[i];
           }
           """),
        _k("delay_line", "buffer",
           "Delay-line shift d[i] = d[i+1] (tap update).",
           """
           int d[128];
           for (i = 0; i < 100; i++) {
               d[i] = d[i+1];
           }
           """),
        _k("downsample2", "rate_conversion",
           "Decimation by 2: y[i] = x[2*i].",
           """
           int x[256], y[128];
           for (i = 0; i < 120; i++) {
               y[i] = x[2*i];
           }
           """),
        _k("wavelet_lift", "transform",
           "Lifting-scheme predict step of a Haar-like wavelet.",
           """
           int x[300], d[128];
           for (i = 0; i < 120; i++) {
               d[i] = x[2*i+1] - (x[2*i] + x[2*i+2]) / 2;
           }
           """),
        _k("biquad_cascade2", "filter",
           "Two cascaded direct-form-I biquad sections.",
           """
           int x[140], u[140], y[140], b0, b1, b2, a1, a2, c0, c1, c2,
               d1, d2;
           for (i = 2; i < 120; i++) {
               u[i] = b0*x[i] + b1*x[i-1] + b2*x[i-2]
                    - a1*u[i-1] - a2*u[i-2];
               y[i] = c0*u[i] + c1*u[i-1] + c2*u[i-2]
                    - d1*y[i-1] - d2*y[i-2];
           }
           """),
        _k("goertzel", "transform",
           "Goertzel single-bin DFT recurrence over a state array.",
           """
           int x[128], s[132], c;
           for (i = 2; i < 120; i++) {
               s[i] = x[i] + c*s[i-1] - s[i-2];
           }
           """),
        _k("saxpy", "vector",
           "Scaled vector accumulation y += a*x (BLAS saxpy).",
           """
           int x[128], y[128], a;
           for (i = 0; i < 128; i++) {
               y[i] += a*x[i];
           }
           """),
        _k("vector_scale", "vector",
           "Vector scaling by a gain scalar.",
           """
           int x[128], y[128], g;
           for (i = 0; i < 128; i++) {
               y[i] = x[i]*g;
           }
           """),
        _k("fir4_decimate2", "rate_conversion",
           "4-tap FIR combined with decimation by 2 (polyphase-style).",
           """
           int x[300], h[4], y[128], acc;
           for (i = 0; i < 120; i++) {
               acc = x[2*i]*h[0] + x[2*i+1]*h[1] + x[2*i+2]*h[2]
                   + x[2*i+3]*h[3];
               y[i] = acc;
           }
           """),
        _k("lattice2", "filter",
           "Two-stage lattice filter over forward/backward arrays.",
           """
           int x[128], f[132], g[132], k1, k2;
           for (i = 2; i < 120; i++) {
               f[i] = x[i] - k1*g[i-1];
               g[i] = g[i-1] + k1*f[i] - k2*g[i-2];
           }
           """),
        _k("autocorr4", "analysis",
           "First four autocorrelation lags, accumulated in scalars.",
           """
           int x[132], r0, r1, r2, r3;
           for (i = 0; i < 120; i++) {
               r0 += x[i]*x[i];
               r1 += x[i]*x[i+1];
               r2 += x[i]*x[i+2];
               r3 += x[i]*x[i+3];
           }
           """),
    ]
}
