"""Workloads: random access patterns and realistic DSP kernels.

* :mod:`repro.workloads.random_patterns` -- the seeded random-pattern
  generator behind the paper's statistical analysis (section 4).
* :mod:`repro.workloads.kernels` -- a library of classic DSP loop
  kernels written in the C-like frontend language, mirroring the
  realistic programs the paper's introduction motivates.
* :mod:`repro.workloads.suite` -- named kernel suites.
"""

from repro.workloads.kernels import DspKernel, KERNELS, get_kernel
from repro.workloads.random_patterns import (
    DISTRIBUTIONS,
    RandomPatternConfig,
    generate_batch,
    generate_pattern,
)
from repro.workloads.suite import SUITES, suite_kernels
from repro.workloads.trace import (
    format_trace,
    load_trace,
    parse_trace,
    save_trace,
)

__all__ = [
    "DISTRIBUTIONS",
    "DspKernel",
    "KERNELS",
    "RandomPatternConfig",
    "SUITES",
    "format_trace",
    "generate_batch",
    "generate_pattern",
    "get_kernel",
    "load_trace",
    "parse_trace",
    "save_trace",
    "suite_kernels",
]
