"""``repro-agu``: compile kernels, inspect graphs, run experiments.

Subcommands
-----------
compile
    Parse a kernel (file or stdin), run the two-phase allocator, print
    the allocation summary and the address-code listing, and verify by
    simulation.
graph
    Print the access graph of a kernel (ASCII or Graphviz DOT).
kernels
    List or show the bundled DSP kernel library.
experiment
    Run one of the paper's experiments and print its table(s).
batch
    Compile a whole kernel suite through the batch engine: process-pool
    fan-out, content-addressed result caching, aggregate report.
stats
    Run the EXP-S1 statistical grid sharded through the batch engine,
    with live streaming progress, worker fan-out, and a persistent
    (optionally shared) grid-point cache.
ablate
    Run any registered ablation experiment (EXP-A1..A3, EXP-O1,
    EXP-X1..X3) sharded through the batch engine: per-point streaming
    progress, grid overrides (``--set``), persistent point caches, and
    zero-recompile cached re-runs.
cache-serve
    Run a remote result-cache server in front of any cache store, so
    batch/stats/ablate runs on other processes or hosts can share one
    store via ``--cache tcp://HOST:PORT``.
job-serve
    Run the distributed execution service: a job server that queues
    batch jobs and leases them to connected workers (with lease
    timeouts and requeue on worker death), so batch/stats/ablate runs
    can execute on many hosts via ``--executor tcp://HOST:PORT``.
worker
    Serve a running job server: lease jobs, execute them with the
    standard engine contract, stream results back; any number of
    workers on any number of hosts may serve one server.
serve
    Run the compile-as-a-service front door: a persistent TCP endpoint
    that answers single-kernel compile requests -- admission-controlled
    and micro-batched through the batch engine, with a warm in-process
    cache tier in front of any cache store and any executor backend.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro import __version__
from repro.agu.model import PRESETS, AguSpec
from repro.analysis import reports
from repro.analysis import render
from repro.analysis.experiments import (
    KernelComparisonConfig,
    StatisticalConfig,
    quick_statistical_config,
    run_kernel_comparison,
    run_statistical_comparison,
)
from repro.core.pipeline import compile_kernel
from repro.errors import ReproError
from repro.graph.access_graph import AccessGraph
from repro.graph.dot import graph_to_ascii, graph_to_dot
from repro.ir.parser import parse_kernel
from repro.workloads.kernels import KERNELS, get_kernel
from repro.workloads.random_patterns import DISTRIBUTIONS
from repro.workloads.suite import SUITES


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text(encoding="utf-8")


def _spec_from_args(args: argparse.Namespace) -> AguSpec:
    if args.preset:
        base = PRESETS[args.preset]
        spec = base
        if args.registers is not None:
            spec = spec.with_registers(args.registers)
        if args.modify_range is not None:
            spec = spec.with_modify_range(args.modify_range)
        return spec
    return AguSpec(args.registers if args.registers is not None else 4,
                   args.modify_range if args.modify_range is not None else 1)


def _executor_from_args(args: argparse.Namespace):
    """The ``executor=`` value for a batch-engine entry point.

    ``--executor`` and a non-default ``-j/--workers`` are mutually
    exclusive (an executor spec carries its own parallelism width);
    reject the combination here with CLI-flavored wording instead of
    letting the engine's generic error surface.
    """
    if args.executor is not None and args.workers != 1:
        raise ReproError(
            "--executor and -j/--workers are mutually exclusive: an "
            "executor spec carries its own width (use --executor "
            f"local:{args.workers} for a local pool)")
    return args.executor


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default=None,
                        help="execution backend: inline, local:N "
                             "(process pool), or tcp://HOST:PORT (a "
                             "running job-serve with workers); "
                             "overrides -j/--workers")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="append structured scheduler events as "
                             "JSONL to PATH (analyze with "
                             "'repro-agu trace PATH'; default: off, "
                             "zero overhead)")


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-k", "--registers", type=int, default=None,
                        help="number of address registers (default 4)")
    parser.add_argument("-m", "--modify-range", type=int, default=None,
                        help="auto-modify range M (default 1)")
    parser.add_argument("--preset", choices=sorted(PRESETS), default=None,
                        help="start from a named AGU preset")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_compile(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    spec = _spec_from_args(args)
    artifacts = compile_kernel(source, spec,
                               run_simulation=not args.no_sim,
                               n_iterations=args.iterations,
                               name=Path(args.file).stem
                               if args.file != "-" else "stdin")
    print(artifacts.allocation.summary())
    print()
    print(artifacts.listing)
    if artifacts.simulation is not None:
        sim = artifacts.simulation
        print(f"; simulation: {sim.n_accesses_verified} accesses verified "
              f"over {sim.n_iterations} iterations, "
              f"{sim.overhead_per_iteration} unit-cost instructions "
              f"per iteration")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    kernel = parse_kernel(source)
    modify_range = args.modify_range if args.modify_range is not None else 1
    graph = AccessGraph(kernel.pattern, modify_range)
    if args.dot:
        print(graph_to_dot(graph, include_inter=args.wrap), end="")
    else:
        print(graph_to_ascii(graph, include_inter=args.wrap), end="")
    return 0


def _cluster_trace_report(args: argparse.Namespace, text: str) -> int:
    """Analyze a JSONL scheduler trace (see :mod:`repro.batch.trace`)."""
    import io
    import json

    from repro.batch.trace import analyze_trace, read_trace

    trace = read_trace(io.StringIO(text))
    report = analyze_trace(trace,
                           straggler_factor=args.straggler_factor)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(report.render(top=args.top))
    if args.timeline:
        print()
        print(report.render_timeline())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.allocator import AddressRegisterAllocator
    from repro.workloads.trace import parse_trace

    text = _read_source(args.file)
    # Two trace dialects share this subcommand: JSONL scheduler traces
    # (every line a JSON object, so the file starts with '{') and the
    # legacy plain-text access traces (which never do).
    if text.lstrip().startswith("{"):
        return _cluster_trace_report(args, text)
    pattern = parse_trace(text)
    spec = _spec_from_args(args)
    allocator = AddressRegisterAllocator(spec)
    result = allocator.allocate(pattern)
    print(result.summary())
    if args.listing:
        from repro.agu.codegen import generate_address_code
        from repro.agu.listing import program_listing
        program = generate_address_code(pattern, result.cover, spec)
        print()
        print(program_listing(program,
                              title=f"trace {args.file}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportConfig, save_report_markdown

    config = ReportConfig(quick=args.quick)
    if args.only:
        config = ReportConfig(quick=args.quick,
                              include=tuple(args.only.split(",")))
    target = save_report_markdown(args.output, config)
    print(f"report written to {target}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    spec = _spec_from_args(args)
    artifacts = compile_kernel(source, spec,
                               n_iterations=args.iterations,
                               name=Path(args.file).stem
                               if args.file != "-" else "stdin")
    simulation = artifacts.simulation
    assert simulation is not None
    print(f"ok: {simulation.n_accesses_verified} addresses verified over "
          f"{simulation.n_iterations} iterations on {spec}; "
          f"{simulation.overhead_per_iteration} unit-cost "
          f"instruction(s)/iteration (model agrees)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.tables import Column, Table
    from repro.core.allocator import AddressRegisterAllocator

    source = _read_source(args.file)
    kernel = parse_kernel(source)
    modify_range = args.modify_range if args.modify_range is not None else 1
    table = Table([
        Column("K", "k"), Column("K~", "k_tilde"),
        Column("registers used", "used"),
        Column("cost/iter", "cost"),
    ], title=f"register-pressure sweep (M={modify_range}, "
             f"N={len(kernel.pattern)})")
    for k in range(args.max_registers, 0, -1):
        allocator = AddressRegisterAllocator(AguSpec(k, modify_range))
        result = allocator.allocate(kernel)
        table.add_row(k=k, k_tilde=result.k_tilde,
                      used=result.n_registers_used,
                      cost=result.total_cost)
    print(table.render())
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.analysis.selftest import run_self_test

    report = run_self_test(n_instances=args.instances, seed=args.seed)
    print(report.summary())
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    if args.name is None:
        width = max(len(name) for name in KERNELS)
        for name in sorted(KERNELS):
            entry = KERNELS[name]
            print(f"{name:<{width}}  [{entry.category}] "
                  f"{entry.description}")
        return 0
    entry = get_kernel(args.name)
    print(f"// {entry.name} [{entry.category}]: {entry.description}")
    print(entry.source.strip())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchCompiler, jobs_from_kernels, open_cache
    from repro.batch.jobs import jobs_from_suite

    spec = _spec_from_args(args)
    if args.kernels:
        names = [name.strip() for name in args.kernels.split(",")]
        jobs = jobs_from_kernels(names, spec,
                                 run_simulation=not args.no_sim,
                                 n_iterations=args.iterations,
                                 include_baseline=args.baseline)
    else:
        jobs = jobs_from_suite(args.suite, spec,
                               run_simulation=not args.no_sim,
                               n_iterations=args.iterations,
                               include_baseline=args.baseline)
    cache = open_cache(args.cache) if args.cache else None
    compiler = BatchCompiler(cache=cache, n_workers=args.workers,
                             executor=_executor_from_args(args),
                             trace=args.trace)
    report = compiler.compile(jobs)
    title = f"batch: {args.kernels or args.suite} on {spec}"
    print(report.render(title=title))
    print(report.summary())
    if args.json:
        path = reports.save_report(report, args.json)
        print(f"(report saved to {path})")
    return 0 if report.all_audits_ok else 1


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.batch.cache import open_cache
    from repro.batch.service import CacheServer

    store = open_cache(args.store)
    try:
        server = CacheServer(store, args.host, args.port,
                             readonly=args.readonly,
                             idle_timeout=args.idle_timeout or None)
    except OSError as error:
        # Port in use, unresolvable host, privileged port, ...
        raise ReproError(
            f"cannot serve on tcp://{args.host}:{args.port}: {error}")
    print(f"serving cache store {args.store!r} at {server.endpoint}"
          f"{' (read-only)' if args.readonly else ''}; "
          f"stop with SIGINT/SIGTERM", flush=True)

    def terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        print(f"cache server stopped; {store.stats}", flush=True)
    return 0


def _cmd_job_serve(args: argparse.Namespace) -> int:
    """Run the distributed execution service's job server."""
    import signal

    from repro.batch.cluster import JobServer

    try:
        server = JobServer(args.host, args.port,
                           lease_timeout=args.lease_timeout,
                           max_attempts=args.max_attempts,
                           idle_timeout=args.idle_timeout or None,
                           order=args.order,
                           speculate=args.speculate,
                           adaptive_lease=args.adaptive_lease,
                           trace=args.trace)
    except OSError as error:
        # Port in use, unresolvable host, privileged port, ...
        raise ReproError(
            f"cannot serve on tcp://{args.host}:{args.port}: {error}")
    print(f"job server at {server.endpoint} (lease timeout "
          f"{args.lease_timeout:.0f} s); start workers with: "
          f"repro-agu worker {server.endpoint}; point runs at it with "
          f"--executor {server.endpoint}; stop with SIGINT/SIGTERM",
          flush=True)
    policies = [name for name, on in
                (("order=size", args.order == "size"),
                 ("speculate", args.speculate),
                 ("adaptive-lease", args.adaptive_lease)) if on]
    if policies:
        print(f"scheduling policies: {', '.join(policies)}", flush=True)
    if args.trace:
        print(f"tracing scheduler events to {args.trace} "
              f"(analyze with: repro-agu trace {args.trace})", flush=True)

    def terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        print(f"job server stopped; {server.stats}", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile-as-a-service front door."""
    import signal

    from repro.batch.serving import CompileService

    try:
        service = CompileService(
            args.cache, host=args.host, port=args.port,
            executor=_executor_from_args(args), n_workers=args.workers,
            batch_window=args.batch_window, max_batch=args.max_batch,
            max_pending=args.max_pending,
            warm_capacity=args.warm_capacity,
            idle_timeout=args.idle_timeout or None)
    except OSError as error:
        # Port in use, unresolvable host, privileged port, ...
        raise ReproError(
            f"cannot serve on tcp://{args.host}:{args.port}: {error}")
    print(f"compile service at {service.endpoint} "
          f"(window {1000 * args.batch_window:.0f} ms, "
          f"max {args.max_pending} in flight); connect with "
          f"ServeClient({service.endpoint!r}); stop with "
          f"SIGINT/SIGTERM", flush=True)

    def terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, terminate)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        service.shutdown()
        print(f"compile service stopped; {service.stats}; cache: "
              f"{service.cache.stats}", flush=True)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Serve a job server: lease, execute, stream results back."""
    import signal

    from repro.batch.cluster import Worker, parse_endpoint

    host, port, _options = parse_endpoint(args.server, options={})

    def on_event(kind: str, detail: str) -> None:
        if args.quiet:
            return
        if kind == "connected":
            print(f"worker serving {detail}; leasing jobs "
                  f"(stop with SIGINT/SIGTERM)", flush=True)
        elif kind in ("executed", "failed"):
            print(f"[{kind}] {detail}", flush=True)

    worker = Worker(host, port, poll=args.poll, max_jobs=args.max_jobs,
                    idle_exit=args.idle_exit,
                    connect_retry=args.connect_retry, on_event=on_event,
                    trace=args.trace)

    def terminate(signum, frame):
        worker.stop()

    previous = signal.signal(signal.SIGTERM, terminate)
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        worker.close()
        print(f"worker stopped; {worker.jobs_executed} job(s) executed",
              flush=True)
    return 0


def _int_tuple(text: str) -> tuple[int, ...]:
    """Argparse ``type=``: a comma-separated int list (clean usage
    errors -- argparse turns the ValueError into one)."""
    return tuple(int(part) for part in text.split(",") if part.strip())


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis.stats import percent_reduction
    from repro.batch.cache import open_cache

    config = quick_statistical_config() if args.quick \
        else StatisticalConfig()
    overrides: dict = {}
    if args.n_values:
        overrides["n_values"] = args.n_values
    if args.m_values:
        overrides["m_values"] = args.m_values
    if args.k_values:
        overrides["k_values"] = args.k_values
    if args.patterns is not None:
        overrides["patterns_per_config"] = args.patterns
    if args.repeats is not None:
        overrides["naive_repeats"] = args.repeats
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.distribution is not None:
        overrides["distribution"] = args.distribution
    if overrides:
        config = dataclasses.replace(config, **overrides)

    def progress(done: int, total: int, result) -> None:
        state = "cached" if result.from_cache \
            else f"{1000 * result.wall_seconds:.0f} ms"
        reduction = percent_reduction(result.mean_naive,
                                      result.mean_optimized)
        print(f"[{done}/{total}] n={result.n} m={result.m} "
              f"k={result.k}: best-pair {result.mean_optimized:.2f} vs "
              f"naive {result.mean_naive:.2f} "
              f"({reduction:+.1f} %) [{state}]", flush=True)

    summary = run_statistical_comparison(
        config, n_workers=args.workers,
        cache=open_cache(args.cache) if args.cache else None,
        progress=None if args.no_progress else progress,
        executor=_executor_from_args(args), trace=args.trace)

    print()
    print(render.statistical_table(summary).render())
    for axis in ("n", "m", "k"):
        print(render.statistical_marginal_table(summary, axis).render())
    print(f"average reduction: {summary.average_reduction_pct:.1f} % "
          f"(paper: about 40 %); overall "
          f"{summary.overall_reduction_pct:.1f} %")
    print(f"{len(summary.rows)} grid point(s): "
          f"{summary.n_points_compiled} compiled, "
          f"{summary.n_points_cached} cache hit(s); "
          f"{summary.elapsed_seconds:.3f} s on "
          f"{args.executor or f'{args.workers} worker(s)'}")
    if args.json:
        path = reports.save_report(summary, args.json)
        print(f"(report saved to {path})")
    return 0


def _convert_override(current, text: str):
    """Convert an ``--set`` value to the type of the field's current
    value (configs are frozen dataclasses with fully typed defaults)."""
    from enum import Enum

    if isinstance(current, bool):
        return text.lower() in ("1", "true", "yes", "on")
    if isinstance(current, Enum):
        return type(current)(text)
    if isinstance(current, int):
        return int(text)
    if isinstance(current, float):
        return float(text)
    if isinstance(current, tuple):
        element = current[0] if current else 0
        cast = str if isinstance(element, str) else \
            float if isinstance(element, float) else int
        return tuple(cast(part) for part in text.split(",")
                     if part.strip())
    if current is None:
        return int(text)
    return text


def _apply_overrides(config, assignments):
    """Apply ``field=value`` grid overrides to a config dataclass."""
    names = {field.name for field in dataclasses.fields(config)}
    overrides = {}
    for assignment in assignments:
        key, sep, text = assignment.partition("=")
        if not sep:
            raise ReproError(
                f"override {assignment!r} is not of the form "
                f"field=value")
        if key not in names:
            raise ReproError(
                f"unknown config field {key!r} (available: "
                f"{', '.join(sorted(names))})")
        try:
            overrides[key] = _convert_override(getattr(config, key), text)
        except ValueError:
            raise ReproError(
                f"invalid value {text!r} for config field {key!r}")
    return dataclasses.replace(config, **overrides)


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_experiment
    from repro.batch.cache import open_cache
    from repro.batch.registry import get_experiment

    definition = get_experiment(args.which)
    config = definition.quick_config() if args.quick \
        else definition.default_config()
    if args.set:
        config = _apply_overrides(config, args.set)

    def progress(done: int, total: int, result) -> None:
        state = "cached" if result.from_cache \
            else f"{1000 * result.wall_seconds:.0f} ms"
        print(f"[{done}/{total}] {result.name} [{state}]", flush=True)

    summary = run_experiment(
        args.which, config, n_workers=args.workers,
        cache=open_cache(args.cache) if args.cache else None,
        progress=None if args.no_progress else progress,
        executor=_executor_from_args(args), trace=args.trace)

    print()
    if definition.render is not None:
        for table in definition.render(summary):
            print(table.render())
    if definition.headline is not None:
        print(definition.headline(summary))
    n_points = summary.n_points_compiled + summary.n_points_cached
    print(f"{n_points} point(s): "
          f"{summary.n_points_compiled} compiled, "
          f"{summary.n_points_cached} cache hit(s); "
          f"{summary.elapsed_seconds:.3f} s on "
          f"{args.executor or f'{args.workers} worker(s)'}")
    if args.json:
        path = reports.save_report(summary, args.json)
        print(f"(report saved to {path})")
    return 0


def _experiment_choices() -> tuple[str, ...]:
    """`experiment` subcommand ids: the two engine-native experiments
    plus whatever the registry holds (a newly registered experiment
    appears here and under `ablate` automatically)."""
    from repro.batch.registry import registered_experiments

    return ("stats", "kernels") + registered_experiments()


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.batch.registry import registered_experiments

    tables = []
    if args.which == "stats":
        config = quick_statistical_config() if args.quick \
            else StatisticalConfig()
        summary = run_statistical_comparison(config)
        tables.append(render.statistical_table(summary))
        for axis in ("n", "m", "k"):
            tables.append(render.statistical_marginal_table(summary, axis))
        headline = (f"average reduction: "
                    f"{summary.average_reduction_pct:.1f} % "
                    f"(paper: about 40 %); overall "
                    f"{summary.overall_reduction_pct:.1f} %")
    elif args.which == "kernels":
        summary = run_kernel_comparison(KernelComparisonConfig())
        tables.append(render.kernel_table(summary))
        headline = (f"mean addressing-overhead reduction "
                    f"{summary.mean_overhead_reduction_pct:.1f} %, mean "
                    f"speed improvement "
                    f"{summary.mean_speed_improvement_pct:.1f} %")
    elif args.which in registered_experiments():
        # The registry is the single source of presentation truth for
        # the per-point ablations ('ablate' and 'experiment' agree).
        from repro.analysis.experiments import run_experiment
        from repro.batch.registry import get_experiment

        definition = get_experiment(args.which)
        config = definition.quick_config() if args.quick \
            else definition.default_config()
        summary = run_experiment(args.which, config)
        if definition.render is not None:
            tables.extend(definition.render(summary))
        headline = definition.headline(summary) \
            if definition.headline is not None else ""
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown experiment {args.which!r}")

    for table in tables:
        print(table.render())
    if headline:
        print(headline)
    if args.json:
        path = reports.save_report(summary, args.json)
        print(f"(report saved to {path})")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-agu`` argument parser (every subcommand).
    """
    parser = argparse.ArgumentParser(
        prog="repro-agu",
        description="Register-constrained address computation for DSP "
                    "programs (Basu/Leupers/Marwedel, DATE 1998)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="allocate registers and emit address code")
    compile_parser.add_argument("file", help="kernel source ('-' = stdin)")
    _add_spec_arguments(compile_parser)
    compile_parser.add_argument("--no-sim", action="store_true",
                                help="skip the simulator audit")
    compile_parser.add_argument("--iterations", type=int, default=None,
                                help="simulated iterations (symbolic "
                                     "bounds default to 16)")
    compile_parser.set_defaults(func=_cmd_compile)

    graph_parser = commands.add_parser(
        "graph", help="print a kernel's access graph")
    graph_parser.add_argument("file", help="kernel source ('-' = stdin)")
    graph_parser.add_argument("-m", "--modify-range", type=int,
                              default=None, help="auto-modify range M")
    graph_parser.add_argument("--dot", action="store_true",
                              help="emit Graphviz DOT instead of ASCII")
    graph_parser.add_argument("--wrap", action="store_true",
                              help="include inter-iteration edges")
    graph_parser.set_defaults(func=_cmd_graph)

    kernels_parser = commands.add_parser(
        "kernels", help="list or show the bundled DSP kernels")
    kernels_parser.add_argument("name", nargs="?", default=None,
                                help="kernel to show (omit to list)")
    kernels_parser.set_defaults(func=_cmd_kernels)

    experiment_parser = commands.add_parser(
        "experiment", help="run one of the paper's experiments")
    experiment_parser.add_argument("which",
                                   choices=_experiment_choices())
    experiment_parser.add_argument("--quick", action="store_true",
                                   help="scaled-down grid (stats and the "
                                        "registered ablations)")
    experiment_parser.add_argument("--json", default=None,
                                   help="also save the summary as JSON")
    experiment_parser.set_defaults(func=_cmd_experiment)

    batch_parser = commands.add_parser(
        "batch", help="compile a kernel suite through the batch engine")
    batch_parser.add_argument("--suite", default="core8",
                              help="kernel suite to compile (default "
                                   "core8; available: "
                                   f"{', '.join(sorted(SUITES))})")
    batch_parser.add_argument("--kernels", default=None,
                              help="comma-separated kernel names "
                                   "(overrides --suite; see the "
                                   "'kernels' subcommand)")
    _add_spec_arguments(batch_parser)
    batch_parser.add_argument("-j", "--workers", type=int, default=1,
                              help="process-pool width (default 1: "
                                   "compile inline)")
    _add_executor_argument(batch_parser)
    batch_parser.add_argument("--cache", default=None,
                              help="result cache spec: PATH.json, a "
                                   "directory, or tcp://HOST:PORT (a "
                                   "running cache-serve); re-runs skip "
                                   "recompilation")
    batch_parser.add_argument("--iterations", type=int, default=None,
                              help="simulated iterations per kernel")
    batch_parser.add_argument("--no-sim", action="store_true",
                              help="skip the simulator audits")
    batch_parser.add_argument("--baseline", action="store_true",
                              help="also measure the unoptimized "
                                   "baseline overhead")
    batch_parser.add_argument("--json", default=None,
                              help="also save the report as JSON")
    _add_trace_argument(batch_parser)
    batch_parser.set_defaults(func=_cmd_batch)

    stats_parser = commands.add_parser(
        "stats", help="EXP-S1 statistical grid, sharded through the "
                      "batch engine with streaming progress")
    stats_parser.add_argument("--quick", action="store_true",
                              help="start from the scaled-down grid")
    stats_parser.add_argument("--n", dest="n_values", type=_int_tuple,
                              default=None,
                              help="comma-separated N values")
    stats_parser.add_argument("--m", dest="m_values", type=_int_tuple,
                              default=None,
                              help="comma-separated M values")
    stats_parser.add_argument("--k", dest="k_values", type=_int_tuple,
                              default=None,
                              help="comma-separated K values")
    stats_parser.add_argument("--patterns", type=int, default=None,
                              help="random patterns per grid point")
    stats_parser.add_argument("--repeats", type=int, default=None,
                              help="naive merge orders per pattern")
    stats_parser.add_argument("--seed", type=int, default=None,
                              help="base seed of the grid")
    stats_parser.add_argument("--distribution", default=None,
                              choices=sorted(DISTRIBUTIONS),
                              help="offset distribution")
    stats_parser.add_argument("-j", "--workers", type=int, default=1,
                              help="process-pool width (default 1: "
                                   "compute inline)")
    _add_executor_argument(stats_parser)
    stats_parser.add_argument("--cache", default=None,
                              help="grid-point cache: PATH.json (single "
                                   "JSON store), a directory (sharded "
                                   "store, shareable across hosts), or "
                                   "tcp://HOST:PORT (a running "
                                   "cache-serve); re-runs skip solved "
                                   "points")
    stats_parser.add_argument("--no-progress", action="store_true",
                              help="suppress per-point streaming output")
    stats_parser.add_argument("--json", default=None,
                              help="also save the summary as JSON")
    _add_trace_argument(stats_parser)
    stats_parser.set_defaults(func=_cmd_stats)

    from repro.batch.registry import get_experiment, registered_experiments

    ablate_parser = commands.add_parser(
        "ablate", help="run a registered ablation experiment sharded "
                       "through the batch engine")
    ablate_parser.add_argument(
        "which", choices=registered_experiments(),
        help="experiment id; descriptions: " + "; ".join(
            f"{name} = {get_experiment(name).title}"
            for name in registered_experiments()))
    ablate_parser.add_argument("--quick", action="store_true",
                               help="scaled-down grid for smokes and CI")
    ablate_parser.add_argument("--set", action="append", default=[],
                               metavar="FIELD=VALUE",
                               help="override a config field (repeatable; "
                                    "grid axes take comma-separated "
                                    "values, e.g. --set n_values=8,12)")
    ablate_parser.add_argument("-j", "--workers", type=int, default=1,
                               help="process-pool width (default 1: "
                                    "compute inline)")
    _add_executor_argument(ablate_parser)
    ablate_parser.add_argument("--cache", default=None,
                               help="point cache: PATH.json (single JSON "
                                    "store), a directory (sharded "
                                    "store, shareable across hosts), or "
                                    "tcp://HOST:PORT (a running "
                                    "cache-serve); re-runs skip solved "
                                    "points")
    ablate_parser.add_argument("--no-progress", action="store_true",
                               help="suppress per-point streaming output")
    ablate_parser.add_argument("--json", default=None,
                               help="also save the summary as JSON")
    _add_trace_argument(ablate_parser)
    ablate_parser.set_defaults(func=_cmd_ablate)

    serve_parser = commands.add_parser(
        "cache-serve", help="serve a shared result cache over TCP for "
                            "multi-process / multi-host runs")
    serve_parser.add_argument("--store", default="mem:65536",
                              help="backing store spec: mem[:CAPACITY], "
                                   "PATH.json, json:PATH, or a directory "
                                   "(default mem:65536)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1; "
                                   "use 0.0.0.0 to serve other hosts)")
    serve_parser.add_argument("--port", type=int, default=8741,
                              help="TCP port (default 8741; 0 picks an "
                                   "ephemeral port, printed on startup)")
    serve_parser.add_argument("--readonly", action="store_true",
                              help="serve cache hits but reject stores "
                                   "(clients keep working and skip "
                                   "their puts)")
    serve_parser.add_argument("--idle-timeout", type=float, default=300.0,
                              help="seconds an idle connection may sit "
                                   "between requests before the server "
                                   "closes it (default 300; 0 disables)")
    serve_parser.set_defaults(func=_cmd_cache_serve)

    job_serve_parser = commands.add_parser(
        "job-serve", help="serve a job queue to a fleet of workers for "
                          "multi-host batch execution")
    job_serve_parser.add_argument("--host", default="127.0.0.1",
                                  help="bind address (default "
                                       "127.0.0.1; use 0.0.0.0 to "
                                       "serve other hosts)")
    job_serve_parser.add_argument("--port", type=int, default=8742,
                                  help="TCP port (default 8742; 0 "
                                       "picks an ephemeral port, "
                                       "printed on startup)")
    job_serve_parser.add_argument("--lease-timeout", type=float,
                                  default=60.0,
                                  help="seconds a worker may hold a "
                                       "job before it is requeued "
                                       "(default 60; size above the "
                                       "slowest expected job)")
    job_serve_parser.add_argument("--max-attempts", type=int, default=3,
                                  help="leases per job before the "
                                       "server gives up on it "
                                       "(default 3)")
    job_serve_parser.add_argument("--idle-timeout", type=float,
                                  default=600.0,
                                  help="seconds an idle connection may "
                                       "sit between frames before the "
                                       "server closes it (default 600; "
                                       "0 disables; size above the "
                                       "slowest job and the lease "
                                       "timeout)")
    job_serve_parser.add_argument("--order", choices=("fifo", "size"),
                                  default="fifo",
                                  help="job dispatch order: fifo "
                                       "(default, submission order) or "
                                       "size (largest size hint first, "
                                       "shrinking the straggler tail)")
    job_serve_parser.add_argument("--speculate", action="store_true",
                                  help="re-lease stragglers to idle "
                                       "workers once a job's lease age "
                                       "passes a trace-derived "
                                       "duration percentile "
                                       "(first result wins; default "
                                       "off)")
    job_serve_parser.add_argument("--adaptive-lease",
                                  action="store_true",
                                  help="derive the effective lease "
                                       "timeout from observed job "
                                       "durations instead of the "
                                       "static --lease-timeout "
                                       "(default off)")
    _add_trace_argument(job_serve_parser)
    job_serve_parser.set_defaults(func=_cmd_job_serve)

    worker_parser = commands.add_parser(
        "worker", help="execute jobs leased from a running job-serve")
    worker_parser.add_argument("server",
                               help="the job server, as tcp://HOST:PORT "
                                    "(printed by job-serve on startup)")
    worker_parser.add_argument("--poll", type=float, default=2.0,
                               help="seconds one lease request waits "
                                    "for work before re-polling "
                                    "(default 2)")
    worker_parser.add_argument("--max-jobs", type=int, default=None,
                               help="exit after executing this many "
                                    "jobs (default: run until "
                                    "stopped)")
    worker_parser.add_argument("--idle-exit", type=float, default=None,
                               help="exit after this many consecutive "
                                    "idle seconds (default: run until "
                                    "stopped)")
    worker_parser.add_argument("--connect-retry", type=float,
                               default=10.0,
                               help="seconds to keep retrying the "
                                    "initial connection, so workers "
                                    "may start before their server "
                                    "(default 10)")
    worker_parser.add_argument("--quiet", action="store_true",
                               help="suppress per-job log lines")
    _add_trace_argument(worker_parser)
    worker_parser.set_defaults(func=_cmd_worker)

    compile_serve_parser = commands.add_parser(
        "serve", help="serve single-kernel compile requests over TCP "
                      "(compile-as-a-service front door)")
    compile_serve_parser.add_argument(
        "--cache", default=None,
        help="result store behind the warm tier: PATH.json, a "
             "directory, or tcp://HOST:PORT (a running cache-serve); "
             "default: warm in-process LRU only")
    compile_serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; use 0.0.0.0 to serve "
             "other hosts)")
    compile_serve_parser.add_argument(
        "--port", type=int, default=8743,
        help="TCP port (default 8743; 0 picks an ephemeral port, "
             "printed on startup)")
    compile_serve_parser.add_argument(
        "-j", "--workers", type=int, default=1,
        help="process-pool width for cache misses (default 1: "
             "compile inline)")
    _add_executor_argument(compile_serve_parser)
    compile_serve_parser.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds to wait for concurrent requests to coalesce "
             "into one engine batch (default 0.005)")
    compile_serve_parser.add_argument(
        "--max-batch", type=int, default=16,
        help="requests per micro-batch at most (default 16)")
    compile_serve_parser.add_argument(
        "--max-pending", type=int, default=64,
        help="bound of the in-flight queue; further requests get an "
             "explicit busy rejection (default 64)")
    compile_serve_parser.add_argument(
        "--warm-capacity", type=int, default=4096,
        help="entries in the warm in-process cache tier (default 4096)")
    compile_serve_parser.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="seconds an idle connection may sit between requests "
             "before the server closes it (default 300; 0 disables)")
    compile_serve_parser.set_defaults(func=_cmd_serve)

    verify_parser = commands.add_parser(
        "verify", help="compile a kernel and fail on any audit mismatch")
    verify_parser.add_argument("file", help="kernel source ('-' = stdin)")
    _add_spec_arguments(verify_parser)
    verify_parser.add_argument("--iterations", type=int, default=None)
    verify_parser.set_defaults(func=_cmd_verify)

    sweep_parser = commands.add_parser(
        "sweep", help="register-pressure sweep for a kernel")
    sweep_parser.add_argument("file", help="kernel source ('-' = stdin)")
    sweep_parser.add_argument("-m", "--modify-range", type=int,
                              default=None)
    sweep_parser.add_argument("--max-registers", type=int, default=8)
    sweep_parser.set_defaults(func=_cmd_sweep)

    selftest_parser = commands.add_parser(
        "selftest", help="random end-to-end audit of the whole pipeline")
    selftest_parser.add_argument("--instances", type=int, default=100)
    selftest_parser.add_argument("--seed", type=int, default=0)
    selftest_parser.set_defaults(func=_cmd_selftest)

    trace_parser = commands.add_parser(
        "trace", help="allocate registers for a plain-text access "
                      "trace, or analyze a JSONL scheduler trace "
                      "(from --trace; auto-detected)")
    trace_parser.add_argument("file", help="trace file ('-' = stdin)")
    _add_spec_arguments(trace_parser)
    trace_parser.add_argument("--listing", action="store_true",
                              help="also print the address-code listing")
    trace_parser.add_argument("--json", action="store_true",
                              help="scheduler traces: emit the report "
                                   "as JSON instead of text")
    trace_parser.add_argument("--top", type=int, default=5,
                              help="scheduler traces: stragglers and "
                                   "critical-path jobs to list "
                                   "(default 5)")
    trace_parser.add_argument("--straggler-factor", type=float,
                              default=2.0,
                              help="scheduler traces: flag jobs slower "
                                   "than this multiple of the median "
                                   "execution time (default 2.0)")
    trace_parser.add_argument("--timeline", action="store_true",
                              help="scheduler traces: also render the "
                                   "per-worker busy/idle timeline")
    trace_parser.set_defaults(func=_cmd_trace)

    report_parser = commands.add_parser(
        "report", help="run all experiments into one Markdown report")
    report_parser.add_argument("-o", "--output",
                               default="results/REPORT.md")
    report_parser.add_argument("--quick", action="store_true",
                               help="scaled-down statistical grid")
    report_parser.add_argument("--only", default=None,
                               help="comma-separated experiment keys "
                                    "(e.g. 's1,k1,x2')")
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
