"""Command-line interface (``repro-agu`` / ``python -m repro.cli``)."""

from repro.cli.main import main

__all__ = ["main"]
