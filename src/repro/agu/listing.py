"""Human-readable assembly listing of a generated address program."""

from __future__ import annotations

from repro.agu.codegen import AddressProgram
from repro.agu.isa import Use


def program_listing(program: AddressProgram, title: str | None = None) -> str:
    """Pseudo-assembly listing with per-instruction comments.

    ``Use`` lines show the folded post-modify operand (free); ``ADAR``/
    ``SBAR``/``LDAR`` lines are the unit-cost computations the paper
    counts.
    """
    pattern = program.pattern
    lines: list[str] = []
    if title:
        lines.append(f"; {title}")
    lines.append(f"; AGU: {program.spec}")
    lines.append(f"; registers used: {program.n_registers_used}, "
                 f"unit-cost instructions/iteration: "
                 f"{program.overhead_per_iteration}")

    lines.append("; --- prologue ---")
    for instruction in program.prologue:
        lines.append(_format(instruction))

    lines.append(f"; --- loop body (per iteration over "
                 f"{pattern.loop_var}) ---")
    for instruction in program.body:
        lines.append(_format(instruction))
    return "\n".join(lines) + "\n"


def _format(instruction) -> str:
    text = f"    {instruction}"
    comment = getattr(instruction, "comment", "")
    if comment:
        text = f"{text:<36}; {comment}"
    if isinstance(instruction, Use) and instruction.cost == 0:
        return text
    return text
