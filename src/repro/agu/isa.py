"""The address-computation instruction set.

Three instructions suffice to express any allocation's address code:

* :class:`Use` -- the address-register operand of a data instruction.
  Reading memory through a register is free, and a *post-modify* by a
  constant within the AGU's range rides along for free (this is the
  ``*(ARx)+d`` addressing mode of classic DSPs).
* :class:`Modify` -- an explicit add-immediate to an address register
  (``ADAR``/``SBAR`` style).  One instruction word, one cycle: this is
  the paper's "unit-cost computation".
* :class:`PointTo` -- (re-)load a register with the address of a
  symbolic array element for the *current* loop-variable value.  Also
  unit cost; used in the prologue and whenever a register crosses to a
  different array (no constant distance exists).

Costs are attached as class attributes so the simulator and the static
accounting agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.ir.layout import MemoryLayout


@dataclass(frozen=True)
class PointTo:
    """Load ``register`` with the address of ``array[coeff*i + offset]``.

    Resolved against the memory layout with the loop variable's value at
    execution time.
    """

    register: int
    array: str
    coefficient: int
    offset: int
    comment: str = ""

    #: Unit cost: one extra instruction word, one extra cycle.
    cost = 1

    def resolve(self, layout: MemoryLayout, loop_value: int) -> int:
        """Concrete target address for the given loop-variable value."""
        placement = layout.placement(self.array)
        element = self.coefficient * loop_value + self.offset
        return placement.base + element * placement.decl.element_size

    def __str__(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        index = f"i{sign}{abs(self.offset)}" if self.coefficient == 1 \
            else f"{self.coefficient}*i{sign}{abs(self.offset)}"
        if self.coefficient == 0:
            index = str(self.offset)
        return f"LDAR  AR{self.register}, &{self.array}[{index}]"


@dataclass(frozen=True)
class Modify:
    """Add the constant ``delta`` to ``register`` (explicit instruction)."""

    register: int
    delta: int
    comment: str = ""

    #: Unit cost: one extra instruction word, one extra cycle.
    cost = 1

    def __post_init__(self) -> None:
        if self.delta == 0:
            raise CodegenError("a Modify by 0 is useless; do not emit it")

    def __str__(self) -> str:
        mnemonic = "ADAR" if self.delta >= 0 else "SBAR"
        return f"{mnemonic}  AR{self.register}, #{abs(self.delta)}"


@dataclass(frozen=True)
class LoadMr:
    """Preload modify register ``mr_index`` with the constant ``value``.

    One-time setup instruction of the MR extension; unit cost, emitted
    in the prologue only.
    """

    mr_index: int
    value: int
    comment: str = ""

    #: Unit cost: one extra instruction word, one extra cycle.
    cost = 1

    def __post_init__(self) -> None:
        if self.mr_index < 0:
            raise CodegenError(
                f"modify register index must be >= 0, got {self.mr_index}")

    def __str__(self) -> str:
        return f"LDMR  MR{self.mr_index}, #{self.value}"


@dataclass(frozen=True)
class Use:
    """Memory operand through ``register`` for access ``position``.

    ``post_modify`` is the free parallel update applied after the
    access, or ``None`` when the next update needs an explicit
    instruction.  ``post_modify_mr`` instead names a *modify register*
    whose preloaded constant is added for free (``*(ARx)+MRj``, the MR
    extension).  Free by definition either way: the data instruction
    carrying this operand exists anyway.
    """

    register: int
    position: int
    post_modify: int | None = None
    post_modify_mr: int | None = None
    comment: str = ""

    #: The access itself costs nothing extra.
    cost = 0

    def __post_init__(self) -> None:
        if self.post_modify is not None and self.post_modify_mr is not None:
            raise CodegenError(
                "a Use cannot fold both an immediate and an MR post-modify")
        if self.post_modify_mr is not None and self.post_modify_mr < 0:
            raise CodegenError(
                f"modify register index must be >= 0, got "
                f"{self.post_modify_mr}")

    def __str__(self) -> str:
        if self.post_modify_mr is not None:
            operand = f"*(AR{self.register})+MR{self.post_modify_mr}"
        elif self.post_modify is None:
            operand = f"*(AR{self.register})"
        elif self.post_modify >= 0:
            operand = f"*(AR{self.register})+{self.post_modify}"
        else:
            operand = f"*(AR{self.register})-{-self.post_modify}"
        return f"USE   {operand}"


AddressInstruction = PointTo | Modify | Use | LoadMr
