"""Parametric AGU specifications.

An :class:`AguSpec` captures the two parameters the paper's problem
depends on: the number of address registers ``K`` and the auto-modify
range ``M`` (post-increment/decrement reach that executes in parallel
with the data path).  Presets are shaped after the address units of
well-known fixed-point DSPs of the paper's era; they are *models*, not
cycle-accurate replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError


@dataclass(frozen=True)
class AguSpec:
    """An address generation unit with ``K`` registers and range ``M``.

    Attributes
    ----------
    n_registers:
        Number of address registers (the paper's ``K``).
    modify_range:
        Maximum ``|d|`` of a free post-modify (the paper's ``M``).
        ``M = 1`` models plain auto-increment/decrement.
    name:
        Human-readable identifier for reports.
    n_modify_registers:
        Number of *modify registers* (MR extension): each can be
        preloaded with one constant, and a post-modify by that constant
        is then free (``*(ARx)+MRj``).  0 reproduces the paper's model.
    """

    n_registers: int
    modify_range: int
    name: str = "generic"
    n_modify_registers: int = 0

    def __post_init__(self) -> None:
        if self.n_registers < 1:
            raise AllocationError(
                f"an AGU needs at least one address register, got "
                f"{self.n_registers}")
        if self.modify_range < 0:
            raise AllocationError(
                f"modify range must be >= 0, got {self.modify_range}")
        if self.n_modify_registers < 0:
            raise AllocationError(
                f"modify register count must be >= 0, got "
                f"{self.n_modify_registers}")

    def with_registers(self, n_registers: int) -> "AguSpec":
        """Same AGU with a different register count (for K sweeps)."""
        return AguSpec(n_registers, self.modify_range, self.name,
                       self.n_modify_registers)

    def with_modify_range(self, modify_range: int) -> "AguSpec":
        """Same AGU with a different modify range (for M sweeps)."""
        return AguSpec(self.n_registers, modify_range, self.name,
                       self.n_modify_registers)

    def with_modify_registers(self, n_modify_registers: int) -> "AguSpec":
        """Same AGU with a different modify-register count (MR sweeps)."""
        return AguSpec(self.n_registers, self.modify_range, self.name,
                       n_modify_registers)

    def __str__(self) -> str:
        text = f"{self.name}(K={self.n_registers}, M={self.modify_range}"
        if self.n_modify_registers:
            text += f", MR={self.n_modify_registers}"
        return text + ")"


#: Example AGU configurations, loosely modelled after classic DSP
#: address units (register counts per accessible file; modify range 1 is
#: the plain auto-increment/decrement every one of them supports; the
#: MR counts mirror the index/modify register files of the originals).
PRESETS: dict[str, AguSpec] = {
    "ti_c25_like": AguSpec(8, 1, "ti_c25_like", 1),
    "adsp210x_like": AguSpec(4, 1, "adsp210x_like", 4),
    "dsp56k_like": AguSpec(8, 1, "dsp56k_like", 8),
    "dsp16xx_like": AguSpec(4, 2, "dsp16xx_like", 2),
    "tight_k2": AguSpec(2, 1, "tight_k2"),
    "tight_k3": AguSpec(3, 1, "tight_k3"),
}
