"""Address code generation: from an allocation to an AGU program.

Given an access pattern and a path cover (one path per address
register), emit:

* a **prologue** pointing every register at its path's first access for
  the loop's first iteration, and
* a **loop body template** with one :class:`~repro.agu.isa.Use` per
  access in program order, each followed -- when the next transition of
  that register is not free -- by the explicit
  :class:`~repro.agu.isa.Modify`/:class:`~repro.agu.isa.PointTo` that
  unit-cost transitions require.

After its last access of the iteration a register is retargeted at its
*first* access of the next iteration (the wrap-around transition), so
the body is iteration-invariant and the program's per-iteration
overhead is a static count -- exactly the steady-state cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agu.isa import AddressInstruction, LoadMr, Modify, PointTo, Use
from repro.agu.model import AguSpec
from repro.errors import CodegenError
from repro.graph.distance import intra_distance, wrap_distance
from repro.ir.layout import MemoryLayout
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel, cover_cost
from repro.pathcover.paths import PathCover


@dataclass(frozen=True)
class AddressProgram:
    """A generated address program plus its static accounting.

    ``overhead_per_iteration`` counts the unit-cost instructions in the
    body; by construction it equals the allocation's steady-state cost,
    and the simulator re-verifies that dynamically.
    """

    spec: AguSpec
    pattern: AccessPattern
    cover: PathCover
    prologue: tuple[AddressInstruction, ...]
    body: tuple[AddressInstruction, ...]
    #: MR extension: the constants preloaded into modify registers
    #: (``modify_values[j]`` lives in ``MRj``).  Empty = paper's model.
    modify_values: tuple[int, ...] = ()

    @property
    def overhead_per_iteration(self) -> int:
        """Unit-cost address instructions executed per loop iteration."""
        return sum(instruction.cost for instruction in self.body)

    @property
    def prologue_cost(self) -> int:
        """One-time setup instructions before the loop."""
        return sum(instruction.cost for instruction in self.prologue)

    @property
    def n_registers_used(self) -> int:
        """Distinct address registers the program drives (cover paths).
        """
        return self.cover.n_paths

    def body_uses(self) -> list[Use]:
        """The body's access operands, in program order."""
        return [instruction for instruction in self.body
                if isinstance(instruction, Use)]


def generate_address_code(pattern: AccessPattern, cover: PathCover,
                          spec: AguSpec,
                          modify_values: tuple[int, ...] = (),
                          layout: "MemoryLayout | None" = None,
                          ) -> AddressProgram:
    """Emit the address program realizing ``cover`` on ``spec``.

    ``modify_values`` (MR extension) lists constants preloaded into the
    AGU's modify registers; transitions by exactly those deltas fold
    into the access for free.

    ``layout`` (array-layout extension) enables layout-aware codegen:
    cross-array transitions whose concrete distance is constant are
    emitted as folded post-modifies or ``Modify`` instructions instead
    of unit-cost re-loads.  The program must then be simulated against
    the *same* layout (the simulator verifies this).

    Raises
    ------
    CodegenError
        If the cover needs more registers than the AGU has, does not
        match the pattern, or ``modify_values`` exceed the AGU's modify
        registers / repeat values.  (Word-addressing -- element size 1
        -- is validated by the simulator against its memory layout; the
        cost model counts element distances.)
    """
    if cover.n_accesses != len(pattern):
        raise CodegenError(
            f"cover is over {cover.n_accesses} accesses but the pattern "
            f"has {len(pattern)}")
    if cover.n_paths > spec.n_registers:
        raise CodegenError(
            f"allocation uses {cover.n_paths} paths but {spec} has only "
            f"{spec.n_registers} address registers")
    if len(modify_values) > spec.n_modify_registers:
        raise CodegenError(
            f"{len(modify_values)} modify values but {spec} has only "
            f"{spec.n_modify_registers} modify registers")
    if len(set(modify_values)) != len(modify_values):
        raise CodegenError(
            f"duplicate modify values {modify_values}")
    mr_index_of = {value: index
                   for index, value in enumerate(modify_values)}

    register_of = cover.assignment()
    paths = cover.paths

    prologue: list[AddressInstruction] = []
    for index, value in enumerate(modify_values):
        prologue.append(LoadMr(index, value,
                               comment="MR extension preload"))
    for register, path in enumerate(paths):
        first = pattern[path.first]
        prologue.append(PointTo(register, first.array, first.coefficient,
                                first.offset,
                                comment=f"{pattern.label(path.first)} of "
                                        f"first iteration"))

    body: list[AddressInstruction] = []
    for position in range(len(pattern)):
        register = register_of[position]
        path = paths[register]
        access = pattern[position]
        rank = path.indices.index(position)
        is_last = rank == len(path) - 1

        if not is_last:
            target_position = path.indices[rank + 1]
            target = pattern[target_position]
            delta = intra_distance(access, target)
            target_comment = pattern.label(target_position)
            # The target is touched in the same iteration: point at its
            # address for the *current* loop value.
            retarget_offset = target.offset
        else:
            target_position = path.first
            target = pattern[target_position]
            delta = wrap_distance(access, target, pattern.step)
            target_comment = pattern.label(target_position) + "'"
            # The target is touched in the *next* iteration: evaluated
            # with the current loop value, its offset must absorb one
            # loop step.
            retarget_offset = target.offset + target.coefficient * pattern.step

        if delta is None and layout is not None:
            # Layout-aware mode: with concrete bases the cross-array
            # distance is constant whenever the coefficients agree.
            from repro.arraylayout.distance import (
                concrete_intra_distance,
                concrete_wrap_distance,
            )
            if not is_last:
                delta = concrete_intra_distance(access, target, layout)
            else:
                delta = concrete_wrap_distance(access, target,
                                               pattern.step, layout)

        use_comment = (f"{pattern.label(position)}: {access}"
                       f"  then -> {target_comment}")
        if delta is not None and abs(delta) <= spec.modify_range:
            if delta == 0:
                body.append(Use(register, position, post_modify=None,
                                comment=use_comment))
            else:
                body.append(Use(register, position, post_modify=delta,
                                comment=use_comment))
        elif delta is not None and delta in mr_index_of:
            body.append(Use(register, position,
                            post_modify_mr=mr_index_of[delta],
                            comment=use_comment))
        elif delta is not None:
            body.append(Use(register, position, post_modify=None,
                            comment=use_comment))
            body.append(Modify(register, delta,
                               comment=f"-> {target_comment}"))
        else:
            body.append(Use(register, position, post_modify=None,
                            comment=use_comment))
            body.append(PointTo(register, target.array, target.coefficient,
                                retarget_offset,
                                comment=f"-> {target_comment} "
                                        f"(cross-array)"))

    program = AddressProgram(spec, pattern, cover, tuple(prologue),
                             tuple(body), tuple(modify_values))
    _check_static_cost(program, layout)
    return program


def generate_unoptimized_code(pattern: AccessPattern,
                              spec: AguSpec) -> AddressProgram:
    """The "regular C compiler" baseline: no auto-modify exploitation.

    One address register; every access is preceded by an explicit
    address computation (a :class:`~repro.agu.isa.PointTo`).  This is
    the reference point for the code-size/speed comparisons the paper
    cites from [1]: per-iteration addressing overhead equals ``N``.

    The program still runs and verifies on the simulator, so baseline
    and optimized numbers come from the same audited machinery.
    """
    if len(pattern) == 0:
        return AddressProgram(spec, pattern, PathCover((), 0), (), ())
    # A single path covering everything (the register is re-pointed
    # before every access anyway, so the path structure is nominal).
    cover = PathCover.from_lists([range(len(pattern))], len(pattern))
    body: list[AddressInstruction] = []
    for position, access in enumerate(pattern):
        body.append(PointTo(0, access.array, access.coefficient,
                            access.offset,
                            comment=f"{pattern.label(position)} address"))
        body.append(Use(0, position,
                        comment=f"{pattern.label(position)}: {access}"))
    return AddressProgram(spec, pattern, cover, (), tuple(body))


def _check_static_cost(program: AddressProgram,
                       layout: "MemoryLayout | None" = None) -> None:
    """Codegen must agree with the cost model by construction."""
    if layout is not None:
        from repro.arraylayout.distance import layout_cover_cost
        modelled = layout_cover_cost(
            program.cover, program.pattern, layout,
            program.spec.modify_range, CostModel.STEADY_STATE,
            free_deltas=frozenset(program.modify_values))
    else:
        modelled = cover_cost(program.cover, program.pattern,
                              program.spec.modify_range,
                              CostModel.STEADY_STATE,
                              free_deltas=frozenset(program.modify_values))
    emitted = program.overhead_per_iteration
    if modelled != emitted:
        raise CodegenError(
            f"internal inconsistency: cost model says {modelled} "
            f"unit-cost computations per iteration, codegen emitted "
            f"{emitted}")
