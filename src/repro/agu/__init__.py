"""Address generation unit (AGU) model, code generation, and simulation.

The paper's cost model is a claim about hardware: updates within the
auto-modify range are free because the AGU performs them in parallel
with the data path.  This subpackage makes the claim auditable:

* :mod:`repro.agu.model` -- parametric AGU specifications (``K``
  registers, modify range ``M``) plus presets shaped after classic DSPs.
* :mod:`repro.agu.isa` -- the address-computation instruction set.
* :mod:`repro.agu.codegen` -- turn an allocation (a path cover) into an
  address program for a loop.
* :mod:`repro.agu.simulator` -- execute the program, verify that every
  access sees the right address, and count the unit-cost instructions,
  which must equal the allocation's modelled cost.
* :mod:`repro.agu.listing` -- human-readable assembly listing.
"""

from repro.agu.codegen import (
    AddressProgram,
    generate_address_code,
    generate_unoptimized_code,
)
from repro.agu.isa import Modify, PointTo, Use
from repro.agu.listing import program_listing
from repro.agu.model import PRESETS, AguSpec
from repro.agu.simulator import SimulationResult, simulate

__all__ = [
    "AddressProgram",
    "AguSpec",
    "Modify",
    "PRESETS",
    "PointTo",
    "SimulationResult",
    "Use",
    "generate_address_code",
    "generate_unoptimized_code",
    "program_listing",
    "simulate",
]
