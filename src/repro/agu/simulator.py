"""AGU simulator: execute an address program and audit the cost model.

The simulator runs the generated program for a concrete number of loop
iterations over a concrete memory layout and checks, access by access,
that the address register handed to each :class:`~repro.agu.isa.Use`
holds exactly the address the source program requires.  It also counts
the unit-cost instructions actually executed, which must equal the
static per-iteration overhead -- turning the paper's cost model from an
assumption into a verified property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agu.codegen import AddressProgram
from repro.agu.isa import LoadMr, Modify, PointTo, Use
from repro.errors import SimulationError
from repro.ir.layout import MemoryLayout
from repro.ir.types import Loop


@dataclass(frozen=True)
class TraceEntry:
    """One simulated memory access."""

    iteration: int
    loop_value: int
    position: int
    register: int
    address: int


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a verified simulation run."""

    n_iterations: int
    #: Unit-cost address instructions executed inside the loop, total.
    loop_overhead_instructions: int
    #: Unit-cost instructions per iteration (constant; the body is
    #: iteration-invariant).
    overhead_per_iteration: int
    #: One-time prologue instructions.
    prologue_instructions: int
    #: Number of verified accesses (n_iterations * pattern length).
    n_accesses_verified: int
    trace: tuple[TraceEntry, ...] = field(repr=False, default=())

    @property
    def total_address_instructions(self) -> int:
        """Unit-cost address instructions over prologue plus loop body.
        """
        return self.prologue_instructions + self.loop_overhead_instructions


def simulate(program: AddressProgram, loop: Loop, layout: MemoryLayout,
             n_iterations: int | None = None,
             keep_trace: bool = False) -> SimulationResult:
    """Run ``program`` against ``loop``/``layout`` and verify it.

    Parameters
    ----------
    n_iterations:
        Number of iterations to execute; defaults to the loop's own
        count and must be supplied when the loop bound is symbolic.
    keep_trace:
        Record every access in :attr:`SimulationResult.trace`
        (memory-hungry for long runs; off by default).

    Raises
    ------
    SimulationError
        On any address mismatch, use of an unwritten register, or a
        layout whose accessed arrays are not word-addressed.
    """
    pattern = program.pattern
    if loop.pattern is not pattern and loop.pattern != pattern:
        raise SimulationError(
            "the loop's access pattern differs from the program's")
    for array in pattern.arrays():
        if layout.placement(array).decl.element_size != 1:
            raise SimulationError(
                f"array {array!r} has element size "
                f"{layout.placement(array).decl.element_size}; the AGU "
                f"model is word-addressed (element size 1)")

    values = loop.iteration_values(n_iterations)
    registers: dict[int, int] = {}
    modify_registers: dict[int, int] = {}
    trace: list[TraceEntry] = []

    def execute(instruction: LoadMr | Modify | PointTo | Use,
                loop_value: int, iteration: int) -> int:
        """Execute one instruction; returns its cost."""
        if isinstance(instruction, PointTo):
            registers[instruction.register] = instruction.resolve(
                layout, loop_value)
            return instruction.cost
        if isinstance(instruction, LoadMr):
            modify_registers[instruction.mr_index] = instruction.value
            return instruction.cost
        if isinstance(instruction, Modify):
            if instruction.register not in registers:
                raise SimulationError(
                    f"Modify of unwritten register AR{instruction.register}")
            registers[instruction.register] += instruction.delta
            return instruction.cost
        # Use: verify, then post-modify.
        if instruction.register not in registers:
            raise SimulationError(
                f"Use of unwritten register AR{instruction.register}")
        actual = registers[instruction.register]
        expected = layout.address_of(pattern[instruction.position],
                                     loop_value)
        if actual != expected:
            raise SimulationError(
                f"address mismatch at iteration {iteration} "
                f"({pattern.loop_var}={loop_value}), access "
                f"{pattern.label(instruction.position)} "
                f"({pattern[instruction.position]}): register "
                f"AR{instruction.register} holds {actual}, expected "
                f"{expected}")
        if keep_trace:
            trace.append(TraceEntry(iteration, loop_value,
                                    instruction.position,
                                    instruction.register, actual))
        if instruction.post_modify is not None:
            registers[instruction.register] += instruction.post_modify
        elif instruction.post_modify_mr is not None:
            if instruction.post_modify_mr not in modify_registers:
                raise SimulationError(
                    f"Use folds MR{instruction.post_modify_mr}, which was "
                    f"never loaded")
            registers[instruction.register] += \
                modify_registers[instruction.post_modify_mr]
        return instruction.cost

    prologue_cost = 0
    if values:
        for instruction in program.prologue:
            prologue_cost += execute(instruction, values[0], 0)

    loop_cost = 0
    verified = 0
    for iteration, loop_value in enumerate(values):
        for instruction in program.body:
            loop_cost += execute(instruction, loop_value, iteration)
            if isinstance(instruction, Use):
                verified += 1

    expected_static = program.overhead_per_iteration
    if values and loop_cost != expected_static * len(values):
        raise SimulationError(
            f"dynamic overhead {loop_cost} over {len(values)} iterations "
            f"disagrees with static per-iteration overhead "
            f"{expected_static}")

    return SimulationResult(
        n_iterations=len(values),
        loop_overhead_instructions=loop_cost,
        overhead_per_iteration=expected_static,
        prologue_instructions=prologue_cost,
        n_accesses_verified=verified,
        trace=tuple(trace),
    )
