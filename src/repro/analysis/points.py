"""The registered per-point experiment definitions (EXP-A1..A3,
EXP-O1, EXP-X1..X3).

Each experiment that used to run as an ad-hoc sequential loop in
:mod:`repro.analysis.experiments` is decomposed here into the registry
contract of :mod:`repro.batch.registry`:

* an ``enumerate`` function lowering its config to one JSON-able
  params dict per grid point (including that point's *derived seeds*,
  so the params fully determine the outcome and can serve as its cache
  identity);
* a ``point`` function computing one grid point from its params alone
  (this is what runs inside pool workers); and
* an ``assemble`` function folding the streamed point results -- in
  enumeration order -- back into the experiment's summary dataclass,
  bit-identically to what the retired sequential loop produced.

The module registers all seven definitions at import time;
:data:`repro.batch.registry.AUTOLOAD_MODULES` imports it on first
lookup, so CLI processes and pool workers alike resolve experiment ids
without any setup.
"""

from __future__ import annotations

import time

from repro.agu.model import AguSpec
from repro.analysis import render
from repro.analysis.experiments import (
    ArrayLayoutAblationConfig,
    ArrayLayoutAblationRow,
    ArrayLayoutAblationSummary,
    CostModelAblationConfig,
    CostModelAblationRow,
    CostModelAblationSummary,
    MergingAblationConfig,
    MergingAblationRow,
    MergingAblationSummary,
    ModRegAblationConfig,
    ModRegAblationRow,
    ModRegAblationSummary,
    OffsetComparisonConfig,
    OffsetGoaRow,
    OffsetComparisonSummary,
    OffsetSoaRow,
    PathCoverAblationConfig,
    PathCoverAblationRow,
    PathCoverAblationSummary,
    ReorderAblationConfig,
    ReorderAblationRow,
    ReorderAblationSummary,
)
from repro.analysis.stats import mean, percent_reduction
from repro.batch.jobs import NAIVE_SEED_STRIDE, naive_baseline_seed
from repro.batch.registry import (
    ExperimentDefinition,
    register_experiment,
)
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.graph.access_graph import cached_access_graph
from repro.merging.cost import CostModel, cover_cost
from repro.merging.exhaustive import optimal_allocation
from repro.merging.greedy import best_pair_merge
from repro.merging.naive import naive_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)


# ======================================================================
# EXP-A1: path-cover ablation (LB vs exact vs greedy)
# ======================================================================
def _pathcover_points(config: PathCoverAblationConfig) -> list[dict]:
    return [
        {"n": n, "m": m, "patterns": config.patterns_per_config,
         "offset_span": config.offset_span,
         "distribution": config.distribution,
         "seed": config.seed + 31 * grid_index,
         "node_budget": config.node_budget}
        for grid_index, (n, m) in enumerate(
            (n, m) for n in config.n_values for m in config.m_values)
    ]


def _pathcover_point(params: dict) -> dict:
    n, m = params["n"], params["m"]
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"],
                            distribution=params["distribution"]),
        params["patterns"], seed=params["seed"])
    lbs, exacts, greedies, nodes = [], [], [], []
    exact_ms, greedy_ms = [], []
    lb_tight = greedy_tight = proven = 0
    for pattern in patterns:
        # The exact cover below rebuilds the same graph internally;
        # the shared memo makes that a cache hit instead of a second
        # O(E + n log n) construction per pattern.
        graph = cached_access_graph(pattern, m)
        lb = intra_cover_lower_bound(graph)

        t0 = time.perf_counter()
        greedy = greedy_zero_cost_cover(graph)
        greedy_ms.append(1000 * (time.perf_counter() - t0))

        t0 = time.perf_counter()
        outcome = minimum_zero_cost_cover(
            pattern, m, node_budget=params["node_budget"])
        exact_ms.append(1000 * (time.perf_counter() - t0))

        lbs.append(float(lb))
        exacts.append(float(outcome.k_tilde))
        greedies.append(float(greedy.n_paths))
        nodes.append(float(outcome.nodes_explored))
        lb_tight += lb == outcome.k_tilde
        greedy_tight += greedy.n_paths == outcome.k_tilde
        proven += outcome.optimal
    count = len(patterns)
    return {"n": n, "m": m, "n_patterns": count,
            "mean_lower_bound": mean(lbs), "mean_k_tilde": mean(exacts),
            "mean_greedy": mean(greedies),
            "lb_tight_fraction": lb_tight / count,
            "greedy_tight_fraction": greedy_tight / count,
            "exact_fraction": proven / count,
            "mean_nodes": mean(nodes),
            "mean_exact_ms": mean(exact_ms),
            "mean_greedy_ms": mean(greedy_ms)}


def _pathcover_assemble(config: PathCoverAblationConfig,
                        results) -> PathCoverAblationSummary:
    rows = tuple(PathCoverAblationRow(**result.values)
                 for result in results)
    return PathCoverAblationSummary(config, rows, 0.0)


# ======================================================================
# EXP-A2: cost-model ablation (INTRA vs STEADY_STATE)
# ======================================================================
def _costmodel_points(config: CostModelAblationConfig) -> list[dict]:
    return [
        {"n": n, "m": m, "k": k, "patterns": config.patterns_per_config,
         "offset_span": config.offset_span,
         "seed": config.seed + 53 * grid_index,
         "exact_cover_limit": config.exact_cover_limit,
         "cover_node_budget": config.cover_node_budget}
        for grid_index, (n, m, k) in enumerate(
            (n, m, k) for n in config.n_values for m in config.m_values
            for k in config.k_values)
    ]


def _costmodel_point(params: dict) -> dict:
    n, m, k = params["n"], params["m"], params["k"]
    allocator = AddressRegisterAllocator(AguSpec(k, m), AllocatorConfig(
        exact_cover_limit=params["exact_cover_limit"],
        cover_node_budget=params["cover_node_budget"]))
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"]),
        params["patterns"], seed=params["seed"])
    steady_costs_intra, steady_costs_steady = [], []
    for pattern in patterns:
        cover, _kt, _feasible, _optimal = allocator.initial_cover(pattern)
        if cover.n_paths <= k:
            cost = float(cover_cost(cover, pattern, m,
                                    CostModel.STEADY_STATE))
            steady_costs_intra.append(cost)
            steady_costs_steady.append(cost)
            continue
        merged_intra = best_pair_merge(cover, k, pattern, m,
                                       CostModel.INTRA)
        merged_steady = best_pair_merge(cover, k, pattern, m,
                                        CostModel.STEADY_STATE)
        steady_costs_intra.append(float(cover_cost(
            merged_intra.cover, pattern, m, CostModel.STEADY_STATE)))
        steady_costs_steady.append(float(merged_steady.total_cost))
    mean_intra = mean(steady_costs_intra)
    mean_steady = mean(steady_costs_steady)
    return {"n": n, "m": m, "k": k, "n_patterns": len(patterns),
            "mean_steady_when_merged_intra": mean_intra,
            "mean_steady_when_merged_steady": mean_steady,
            "penalty_pct": percent_reduction(mean_intra, mean_steady)}


def _costmodel_assemble(config: CostModelAblationConfig,
                        results) -> CostModelAblationSummary:
    rows = tuple(CostModelAblationRow(**result.values)
                 for result in results)
    return CostModelAblationSummary(
        config, rows,
        mean_penalty_pct=mean([row.penalty_pct for row in rows]),
        elapsed_seconds=0.0)


# ======================================================================
# EXP-A3: merging-strategy ablation incl. the exhaustive optimum
# ======================================================================
def _merging_points(config: MergingAblationConfig) -> list[dict]:
    return [
        {"n": n, "m": m, "k": k, "patterns": config.patterns_per_config,
         "offset_span": config.offset_span,
         "seed": config.seed + 97 * grid_index,
         "naive_seed": config.seed + NAIVE_SEED_STRIDE * (grid_index + 1),
         "cost_model": config.cost_model.value}
        for grid_index, (n, m, k) in enumerate(
            (n, m, k) for n in config.n_values for m in config.m_values
            for k in config.k_values)
    ]


def _merging_point(params: dict) -> dict:
    n, m, k = params["n"], params["m"], params["k"]
    cost_model = CostModel(params["cost_model"])
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"]),
        params["patterns"], seed=params["seed"])
    optimal_costs, best_costs = [], []
    naive_random_costs, naive_first_costs = [], []
    hits = 0
    gaps = []
    for pattern_index, pattern in enumerate(patterns):
        outcome = minimum_zero_cost_cover(pattern, m)
        cover = outcome.cover
        optimum = optimal_allocation(pattern, k, m, cost_model)
        optimal_costs.append(float(optimum.total_cost))
        if cover.n_paths <= k:
            cost = float(cover_cost(cover, pattern, m, cost_model))
            best_costs.append(cost)
            naive_random_costs.append(cost)
            naive_first_costs.append(cost)
        else:
            best = best_pair_merge(cover, k, pattern, m, cost_model)
            best_costs.append(float(best.total_cost))
            naive_random_costs.append(float(naive_merge(
                cover, k, pattern, m, cost_model, strategy="random",
                seed=naive_baseline_seed(params["naive_seed"],
                                         pattern_index, 0)).total_cost))
            naive_first_costs.append(float(naive_merge(
                cover, k, pattern, m, cost_model,
                strategy="first_pair").total_cost))
        hits += best_costs[-1] == optimal_costs[-1]
        if optimal_costs[-1] > 0:
            gaps.append(100.0 * (best_costs[-1] - optimal_costs[-1])
                        / optimal_costs[-1])
    count = len(patterns)
    return {"n": n, "m": m, "k": k, "n_patterns": count,
            "mean_optimal": mean(optimal_costs),
            "mean_best_pair": mean(best_costs),
            "mean_naive_random": mean(naive_random_costs),
            "mean_naive_first": mean(naive_first_costs),
            "best_pair_optimal_fraction": hits / count,
            "best_pair_gap_pct": mean(gaps) if gaps else 0.0}


def _merging_assemble(config: MergingAblationConfig,
                      results) -> MergingAblationSummary:
    rows = tuple(MergingAblationRow(**result.values)
                 for result in results)
    return MergingAblationSummary(config, rows, 0.0)


# ======================================================================
# EXP-O1: offset-assignment substrate (the paper's refs [4, 5])
# ======================================================================
def _offset_points(config: OffsetComparisonConfig) -> list[dict]:
    return [
        {"n_variables": v, "length": length,
         "sequences": config.sequences_per_config,
         "locality": config.locality,
         "seed": config.seed + 1009 * grid_index,
         "optimal_limit": config.optimal_limit,
         "goa_k_values": list(config.goa_k_values)}
        for grid_index, (v, length) in enumerate(
            (v, length) for v in config.v_values
            for length in config.length_values)
    ]


def _offset_point(params: dict) -> dict:
    from repro.offset.goa import goa_first_use, goa_greedy
    from repro.offset.sequence import random_sequence
    from repro.offset.soa import (
        assignment_cost,
        liao_soa,
        ofu_assignment,
        optimal_assignment,
        tiebreak_soa,
    )

    n_variables, length = params["n_variables"], params["length"]
    sequences = [
        random_sequence(n_variables, length,
                        seed=params["seed"] + index,
                        locality=params["locality"])
        for index in range(params["sequences"])
    ]
    ofu_costs, liao_costs, tiebreak_costs = [], [], []
    optimal_costs: list[float] = []
    for sequence in sequences:
        ofu_costs.append(float(assignment_cost(
            ofu_assignment(sequence), sequence)))
        liao_costs.append(float(assignment_cost(
            liao_soa(sequence), sequence)))
        tiebreak_costs.append(float(assignment_cost(
            tiebreak_soa(sequence), sequence)))
        if n_variables <= params["optimal_limit"]:
            optimal_costs.append(float(assignment_cost(
                optimal_assignment(sequence), sequence)))
    soa = {"n_variables": n_variables, "length": length,
           "n_sequences": len(sequences),
           "mean_ofu": mean(ofu_costs),
           "mean_liao": mean(liao_costs),
           "mean_tiebreak": mean(tiebreak_costs),
           "liao_reduction_pct": percent_reduction(mean(ofu_costs),
                                                   mean(liao_costs)),
           "tiebreak_reduction_pct": percent_reduction(
               mean(ofu_costs), mean(tiebreak_costs)),
           "mean_optimal": mean(optimal_costs) if optimal_costs else None}
    goa = []
    for k in params["goa_k_values"]:
        first_use_costs = [float(goa_first_use(sequence, k).cost)
                           for sequence in sequences]
        greedy_costs = [float(goa_greedy(sequence, k).cost)
                        for sequence in sequences]
        goa.append({"n_variables": n_variables, "length": length, "k": k,
                    "n_sequences": len(sequences),
                    "mean_first_use": mean(first_use_costs),
                    "mean_greedy": mean(greedy_costs),
                    "reduction_pct": percent_reduction(
                        mean(first_use_costs), mean(greedy_costs))})
    return {"soa": soa, "goa": goa}


def _offset_assemble(config: OffsetComparisonConfig,
                     results) -> OffsetComparisonSummary:
    soa_rows: list[OffsetSoaRow] = []
    goa_rows: list[OffsetGoaRow] = []
    for result in results:
        soa_rows.append(OffsetSoaRow(**result.values["soa"]))
        goa_rows.extend(OffsetGoaRow(**row)
                        for row in result.values["goa"])
    return OffsetComparisonSummary(
        config=config, soa_rows=tuple(soa_rows), goa_rows=tuple(goa_rows),
        mean_liao_reduction_pct=mean(
            [row.liao_reduction_pct for row in soa_rows]),
        mean_tiebreak_reduction_pct=mean(
            [row.tiebreak_reduction_pct for row in soa_rows]),
        elapsed_seconds=0.0)


# ======================================================================
# EXP-X1: the modify-register extension
# ======================================================================
def _modreg_points(config: ModRegAblationConfig) -> list[dict]:
    return [
        {"n": n, "k": k, "n_modify_registers": n_mrs,
         "modify_range": config.modify_range,
         "patterns": config.patterns_per_config,
         "offset_span": config.offset_span,
         "seed": config.seed + 1013 * grid_index,
         "exact_cover_limit": config.exact_cover_limit,
         "cover_node_budget": config.cover_node_budget}
        for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values)
        for n_mrs in config.mr_values
    ]


def _modreg_point(params: dict) -> dict:
    from repro.modreg.refine import allocate_with_modify_registers

    n, k, n_mrs = params["n"], params["k"], params["n_modify_registers"]
    allocator_config = AllocatorConfig(
        exact_cover_limit=params["exact_cover_limit"],
        cover_node_budget=params["cover_node_budget"])
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"]),
        params["patterns"], seed=params["seed"])
    spec = AguSpec(k, params["modify_range"],
                   f"mr{n_mrs}", n_modify_registers=n_mrs)
    costs = [
        float(allocate_with_modify_registers(
            pattern, spec, allocator_config).total_cost)
        for pattern in patterns
    ]
    return {"n": n, "k": k, "n_modify_registers": n_mrs,
            "n_patterns": len(patterns), "mean_cost": mean(costs)}


def _modreg_assemble(config: ModRegAblationConfig,
                     results) -> ModRegAblationSummary:
    rows: list[ModRegAblationRow] = []
    group: tuple[int, int] | None = None
    base_mean: float | None = None
    for result in results:
        values = result.values
        point_group = (values["n"], values["k"])
        if point_group != group:
            group, base_mean = point_group, None
        if values["n_modify_registers"] == 0:
            base_mean = values["mean_cost"]
        reduction = percent_reduction(base_mean, values["mean_cost"]) \
            if base_mean is not None else 0.0
        rows.append(ModRegAblationRow(
            n=values["n"], k=values["k"],
            n_modify_registers=values["n_modify_registers"],
            n_patterns=values["n_patterns"],
            mean_cost=values["mean_cost"],
            reduction_vs_no_mr_pct=reduction))
    return ModRegAblationSummary(config, tuple(rows), 0.0)


# ======================================================================
# EXP-X2: the access-reordering extension
# ======================================================================
def _reorder_points(config: ReorderAblationConfig) -> list[dict]:
    return [
        {"n": n, "k": k, "modify_range": config.modify_range,
         "write_fraction": config.write_fraction,
         "patterns": config.patterns_per_config,
         "offset_span": config.offset_span,
         "seed": config.seed + 211 * grid_index}
        for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values)
    ]


def _reorder_point(params: dict) -> dict:
    from repro.reorder.search import reorder_accesses

    n, k = params["n"], params["k"]
    spec = AguSpec(k, params["modify_range"])
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"],
                            write_fraction=params["write_fraction"]),
        params["patterns"], seed=params["seed"])
    fixed_costs, reordered_costs = [], []
    changed = 0
    for pattern in patterns:
        result = reorder_accesses(pattern, spec)
        fixed_costs.append(float(result.baseline_cost))
        reordered_costs.append(float(result.cost))
        changed += result.is_reordered
    return {"n": n, "k": k, "n_patterns": len(patterns),
            "mean_fixed_order": mean(fixed_costs),
            "mean_reordered": mean(reordered_costs),
            "reduction_pct": percent_reduction(mean(fixed_costs),
                                               mean(reordered_costs)),
            "reordered_fraction": changed / len(patterns)}


def _reorder_assemble(config: ReorderAblationConfig,
                      results) -> ReorderAblationSummary:
    rows = tuple(ReorderAblationRow(**result.values)
                 for result in results)
    return ReorderAblationSummary(
        config, rows,
        mean_reduction_pct=mean([row.reduction_pct for row in rows]),
        elapsed_seconds=0.0)


# ======================================================================
# EXP-X3: the array-layout extension
# ======================================================================
def _arraylayout_points(config: ArrayLayoutAblationConfig) -> list[dict]:
    return [
        {"n": n, "k": k, "n_arrays": config.n_arrays,
         "array_length": config.array_length,
         "offset_span": config.offset_span,
         "modify_range": config.modify_range,
         "patterns": config.patterns_per_config,
         "seed": config.seed + 307 * grid_index}
        for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values)
    ]


def _arraylayout_point(params: dict) -> dict:
    from repro.arraylayout.optimize import optimize_layout
    from repro.ir.types import ArrayDecl

    n, k = params["n"], params["k"]
    spec = AguSpec(k, params["modify_range"])
    allocator = AddressRegisterAllocator(spec)
    patterns = generate_batch(
        RandomPatternConfig(n, offset_span=params["offset_span"],
                            n_arrays=params["n_arrays"]),
        params["patterns"], seed=params["seed"])
    defaults, optimizeds = [], []
    for pattern in patterns:
        allocation = allocator.allocate(pattern)
        decls = [ArrayDecl(name, length=params["array_length"])
                 for name in pattern.arrays()]
        plan = optimize_layout(pattern, allocation.cover, decls,
                               params["modify_range"])
        defaults.append(float(plan.baseline_cost))
        optimizeds.append(float(plan.cost))
    return {"n": n, "k": k, "n_patterns": len(patterns),
            "mean_default": mean(defaults),
            "mean_optimized": mean(optimizeds),
            "reduction_pct": percent_reduction(mean(defaults),
                                               mean(optimizeds))}


def _arraylayout_assemble(config: ArrayLayoutAblationConfig,
                          results) -> ArrayLayoutAblationSummary:
    rows = tuple(ArrayLayoutAblationRow(**result.values)
                 for result in results)
    return ArrayLayoutAblationSummary(
        config, rows,
        mean_reduction_pct=mean([row.reduction_pct for row in rows]),
        elapsed_seconds=0.0)


# ======================================================================
# Registration
# ======================================================================
register_experiment(ExperimentDefinition(
    experiment="pathcover",
    title="EXP-A1: exact K~ vs greedy cover vs matching lower bound",
    config_type=PathCoverAblationConfig,
    default_config=PathCoverAblationConfig,
    quick_config=lambda: PathCoverAblationConfig(
        n_values=(8, 12), m_values=(1,), patterns_per_config=6,
        node_budget=50_000),
    enumerate_points=_pathcover_points,
    run_point=_pathcover_point,
    assemble=_pathcover_assemble,
    point_label=lambda params: f"n{params['n']}-m{params['m']}",
    render=lambda summary: (render.path_cover_table(summary),),
))

register_experiment(ExperimentDefinition(
    experiment="costmodel",
    title="EXP-A2: merging under intra-only vs steady-state cost",
    config_type=CostModelAblationConfig,
    default_config=CostModelAblationConfig,
    quick_config=lambda: CostModelAblationConfig(
        n_values=(10, 14), m_values=(1,), k_values=(2,),
        patterns_per_config=6),
    enumerate_points=_costmodel_points,
    run_point=_costmodel_point,
    assemble=_costmodel_assemble,
    point_label=lambda params:
        f"n{params['n']}-m{params['m']}-k{params['k']}",
    render=lambda summary: (render.cost_model_table(summary),),
    headline=lambda summary:
        f"mean steady-state saving from wrap-aware merging: "
        f"{summary.mean_penalty_pct:.1f} %",
))

register_experiment(ExperimentDefinition(
    experiment="merging",
    title="EXP-A3: best-pair vs naive vs the exhaustive optimum",
    config_type=MergingAblationConfig,
    default_config=MergingAblationConfig,
    quick_config=lambda: MergingAblationConfig(
        n_values=(8, 10), m_values=(1,), k_values=(2,),
        patterns_per_config=6),
    enumerate_points=_merging_points,
    run_point=_merging_point,
    assemble=_merging_assemble,
    point_label=lambda params:
        f"n{params['n']}-m{params['m']}-k{params['k']}",
    render=lambda summary: (render.merging_table(summary),),
))

register_experiment(ExperimentDefinition(
    experiment="offset",
    title="EXP-O1: SOA heuristics vs OFU (and GOA over k ARs)",
    config_type=OffsetComparisonConfig,
    default_config=OffsetComparisonConfig,
    quick_config=lambda: OffsetComparisonConfig(
        v_values=(5, 7), length_values=(16,), sequences_per_config=6,
        goa_k_values=(2,)),
    enumerate_points=_offset_points,
    run_point=_offset_point,
    assemble=_offset_assemble,
    point_label=lambda params:
        f"v{params['n_variables']}-l{params['length']}",
    render=lambda summary: (render.offset_soa_table(summary),
                            render.offset_goa_table(summary)),
    headline=lambda summary:
        f"mean SOA reduction vs OFU: Liao "
        f"{summary.mean_liao_reduction_pct:.1f} %, tie-break "
        f"{summary.mean_tiebreak_reduction_pct:.1f} %",
))

register_experiment(ExperimentDefinition(
    experiment="modreg",
    title="EXP-X1: addressing cost vs the number of modify registers",
    config_type=ModRegAblationConfig,
    default_config=ModRegAblationConfig,
    quick_config=lambda: ModRegAblationConfig(
        n_values=(12,), k_values=(2,), mr_values=(0, 1, 2),
        patterns_per_config=6),
    enumerate_points=_modreg_points,
    run_point=_modreg_point,
    assemble=_modreg_assemble,
    point_label=lambda params:
        f"n{params['n']}-k{params['k']}-mr{params['n_modify_registers']}",
    render=lambda summary: (render.modreg_table(summary),),
    headline=lambda summary:
        "(extension: not part of the original paper)",
))

register_experiment(ExperimentDefinition(
    experiment="reorder",
    title="EXP-X2: fixed access order vs the reordering extension",
    config_type=ReorderAblationConfig,
    default_config=ReorderAblationConfig,
    quick_config=lambda: ReorderAblationConfig(
        n_values=(8, 10), k_values=(2,), patterns_per_config=6),
    enumerate_points=_reorder_points,
    run_point=_reorder_point,
    assemble=_reorder_assemble,
    point_label=lambda params: f"n{params['n']}-k{params['k']}",
    render=lambda summary: (render.reorder_table(summary),),
    headline=lambda summary:
        f"mean reduction from reordering: "
        f"{summary.mean_reduction_pct:.1f} % "
        f"(extension: not part of the original paper)",
))

register_experiment(ExperimentDefinition(
    experiment="arraylayout",
    title="EXP-X3: default vs optimized array base placement",
    config_type=ArrayLayoutAblationConfig,
    default_config=ArrayLayoutAblationConfig,
    quick_config=lambda: ArrayLayoutAblationConfig(
        n_values=(10,), k_values=(1, 2), patterns_per_config=6),
    enumerate_points=_arraylayout_points,
    run_point=_arraylayout_point,
    assemble=_arraylayout_assemble,
    point_label=lambda params: f"n{params['n']}-k{params['k']}",
    render=lambda summary: (render.array_layout_table(summary),),
    headline=lambda summary:
        f"mean reduction from array placement: "
        f"{summary.mean_reduction_pct:.1f} % "
        f"(extension: not part of the original paper)",
))
