"""Fixed-width text tables for experiment output.

The benchmark harness prints the same rows the paper's Results section
talks about; this renderer keeps them aligned and terminal-friendly
without any dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class Column:
    """One table column: header, row-key, format, alignment."""

    header: str
    key: str
    fmt: str = ""
    align: str = ">"

    def render(self, row: dict[str, Any]) -> str:
        """One row's value formatted for this column (None renders as
        '-')."""
        value = row.get(self.key, "")
        if value is None:
            return "-"
        if self.fmt:
            return format(value, self.fmt)
        return str(value)


class Table:
    """A simple fixed-width table built from dict rows."""

    def __init__(self, columns: Sequence[Column], title: str = ""):
        if not columns:
            raise ExperimentError("a table needs at least one column")
        self._columns = tuple(columns)
        self._title = title
        self._rows: list[dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append one row (missing keys render as empty)."""
        self._rows.append(values)

    def add_rows(self, rows: Iterable[dict[str, Any]]) -> None:
        """Append many rows at once (each a key -> value dict)."""
        for row in rows:
            self._rows.append(dict(row))

    @property
    def n_rows(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """The table as aligned text with a header rule."""
        cells = [[column.render(row) for column in self._columns]
                 for row in self._rows]
        widths = [
            max(len(column.header),
                max((len(row[index]) for row in cells), default=0))
            for index, column in enumerate(self._columns)
        ]
        lines = []
        if self._title:
            lines.append(self._title)
        header = "  ".join(
            f"{column.header:{column.align}{width}}"
            for column, width in zip(self._columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(
                f"{value:{column.align}{width}}"
                for value, column, width in zip(row, self._columns, widths)))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
