"""Render experiment summaries as text tables.

Shared by the command-line interface and the benchmark harness so that
``repro-agu experiment ...`` and ``pytest benchmarks/`` print identical
rows for the same experiment.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    ArrayLayoutAblationSummary,
    CostModelAblationSummary,
    DistributionSensitivitySummary,
    KernelComparisonSummary,
    MergingAblationSummary,
    ModRegAblationSummary,
    OffsetComparisonSummary,
    PathCoverAblationSummary,
    ReorderAblationSummary,
    StatisticalSummary,
    marginalize,
)
from repro.analysis.tables import Column, Table


def statistical_table(summary: StatisticalSummary) -> Table:
    """EXP-S1: one row per (N, M, K) grid point."""
    table = Table([
        Column("N", "n"), Column("M", "m"), Column("K", "k"),
        Column("patterns", "n_patterns"),
        Column("mean K~", "mean_k_tilde", ".2f"),
        Column("constrained", "constrained_fraction", ".0%"),
        Column("cost(best-pair)", "mean_optimized", ".2f"),
        Column("cost(naive)", "mean_naive", ".2f"),
        Column("reduction", "reduction_pct", "+.1f"),
    ], title="EXP-S1: best-pair vs naive merging on random patterns "
             "(unit-cost computations per iteration)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def statistical_marginal_table(summary: StatisticalSummary,
                               axis: str) -> Table:
    """EXP-S2: EXP-S1 marginalized over one parameter axis."""
    table = Table([
        Column(axis.upper(), axis),
        Column("cost(best-pair)", "mean_optimized", ".2f"),
        Column("cost(naive)", "mean_naive", ".2f"),
        Column("reduction", "reduction_pct", "+.1f"),
    ], title=f"EXP-S2: reduction marginalized per {axis.upper()}")
    for row in marginalize(summary, axis):
        table.add_row(**row.__dict__)
    return table


def distribution_table(summary: DistributionSensitivitySummary) -> Table:
    """EXP-S3: the headline reduction under each offset distribution."""
    table = Table([
        Column("distribution", "distribution", align="<"),
        Column("cost(best-pair)", "mean_optimized", ".2f"),
        Column("cost(naive)", "mean_naive", ".2f"),
        Column("avg reduction", "average_reduction_pct", "+.1f"),
        Column("overall", "overall_reduction_pct", "+.1f"),
    ], title="EXP-S3: reduction vs naive per offset distribution")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def kernel_table(summary: KernelComparisonSummary) -> Table:
    """EXP-K1: per-kernel baseline vs optimized accounting."""
    table = Table([
        Column("kernel", "kernel", align="<"),
        Column("N", "n_accesses"),
        Column("K~", "k_tilde"),
        Column("regs", "registers_used"),
        Column("ovh(base)", "baseline_overhead"),
        Column("ovh(opt)", "optimized_overhead"),
        Column("ovh red.", "overhead_reduction_pct", "+.1f"),
        Column("instr(base)", "baseline_instructions"),
        Column("instr(opt)", "optimized_instructions"),
        Column("speedup", "speed_improvement_pct", "+.1f"),
    ], title=f"EXP-K1: DSP kernels on {summary.config.spec} "
             "(per-iteration, simulator-audited)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def path_cover_table(summary: PathCoverAblationSummary) -> Table:
    """EXP-A1: bound tightness and search effort."""
    table = Table([
        Column("N", "n"), Column("M", "m"),
        Column("LB", "mean_lower_bound", ".2f"),
        Column("K~", "mean_k_tilde", ".2f"),
        Column("greedy", "mean_greedy", ".2f"),
        Column("LB tight", "lb_tight_fraction", ".0%"),
        Column("greedy tight", "greedy_tight_fraction", ".0%"),
        Column("proven", "exact_fraction", ".0%"),
        Column("nodes", "mean_nodes", ".0f"),
        Column("exact ms", "mean_exact_ms", ".2f"),
        Column("greedy ms", "mean_greedy_ms", ".2f"),
    ], title="EXP-A1: phase-1 bounds and exact search on random patterns")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def cost_model_table(summary: CostModelAblationSummary) -> Table:
    """EXP-A2: steady-state cost paid under each merging cost model."""
    table = Table([
        Column("N", "n"), Column("M", "m"), Column("K", "k"),
        Column("steady cost (merged w/ intra)",
               "mean_steady_when_merged_intra", ".2f"),
        Column("steady cost (merged w/ steady)",
               "mean_steady_when_merged_steady", ".2f"),
        Column("saved", "penalty_pct", "+.1f"),
    ], title="EXP-A2: cost-model ablation (what ignoring wrap-around "
             "during merging costs)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def modreg_table(summary: ModRegAblationSummary) -> Table:
    """EXP-X1: cost vs modify-register count (MR extension)."""
    table = Table([
        Column("N", "n"), Column("K", "k"),
        Column("MRs", "n_modify_registers"),
        Column("cost", "mean_cost", ".2f"),
        Column("vs no-MR", "reduction_vs_no_mr_pct", "+.1f"),
    ], title="EXP-X1: modify-register extension (residual addressing "
             "cost per iteration)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def reorder_table(summary: ReorderAblationSummary) -> Table:
    """EXP-X2: fixed program order vs the reordering extension."""
    table = Table([
        Column("N", "n"), Column("K", "k"),
        Column("fixed order", "mean_fixed_order", ".2f"),
        Column("reordered", "mean_reordered", ".2f"),
        Column("reduction", "reduction_pct", "+.1f"),
        Column("reordered%", "reordered_fraction", ".0%"),
    ], title="EXP-X2: access-reordering extension (unit-cost "
             "computations per iteration)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def array_layout_table(summary: ArrayLayoutAblationSummary) -> Table:
    """EXP-X3: guard-gap layout vs optimized array placement."""
    table = Table([
        Column("N", "n"), Column("K", "k"),
        Column("default layout", "mean_default", ".2f"),
        Column("optimized layout", "mean_optimized", ".2f"),
        Column("reduction", "reduction_pct", "+.1f"),
    ], title="EXP-X3: array-layout extension (unit-cost computations "
             "per iteration)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table


def offset_soa_table(summary: OffsetComparisonSummary) -> Table:
    """EXP-O1 (SOA): heuristics vs OFU baseline vs optimum."""
    table = Table([
        Column("vars", "n_variables"), Column("len", "length"),
        Column("OFU", "mean_ofu", ".2f"),
        Column("Liao", "mean_liao", ".2f"),
        Column("tie-break", "mean_tiebreak", ".2f"),
        Column("optimal", "mean_optimal", ".2f"),
        Column("Liao red.", "liao_reduction_pct", "+.1f"),
        Column("tie-break red.", "tiebreak_reduction_pct", "+.1f"),
    ], title="EXP-O1a: simple offset assignment (cost per sequence)")
    for row in summary.soa_rows:
        table.add_row(**row.__dict__)
    return table


def offset_goa_table(summary: OffsetComparisonSummary) -> Table:
    """EXP-O1 (GOA): greedy partitioning vs round-robin baseline."""
    table = Table([
        Column("vars", "n_variables"), Column("len", "length"),
        Column("k", "k"),
        Column("first-use", "mean_first_use", ".2f"),
        Column("greedy", "mean_greedy", ".2f"),
        Column("reduction", "reduction_pct", "+.1f"),
    ], title="EXP-O1b: general offset assignment over k address "
             "registers")
    for row in summary.goa_rows:
        table.add_row(**row.__dict__)
    return table


def merging_table(summary: MergingAblationSummary) -> Table:
    """EXP-A3: best-pair vs naive vs the exhaustive optimum."""
    table = Table([
        Column("N", "n"), Column("M", "m"), Column("K", "k"),
        Column("optimal", "mean_optimal", ".2f"),
        Column("best-pair", "mean_best_pair", ".2f"),
        Column("naive/random", "mean_naive_random", ".2f"),
        Column("naive/first", "mean_naive_first", ".2f"),
        Column("hits opt", "best_pair_optimal_fraction", ".0%"),
        Column("gap", "best_pair_gap_pct", "+.1f"),
    ], title="EXP-A3: merging strategies vs the exhaustive optimum "
             "(small instances)")
    for row in summary.rows:
        table.add_row(**row.__dict__)
    return table
