"""The experiments of the paper's Results section, plus ablations.

Experiment ids follow DESIGN.md:

* **EXP-S1** (:func:`run_statistical_comparison`) -- the paper's
  statistical analysis: best-pair merging vs naive arbitrary merging
  over random patterns and a grid of ``N``, ``M``, ``K``; the paper
  reports "about 40 %" average cost reduction.
* **EXP-S2** (:func:`marginalize`) -- the same data marginalized per
  parameter, showing where the heuristic helps most.
* **EXP-K1** (:func:`run_kernel_comparison`) -- optimized addressing vs
  a regular-C-compiler baseline on DSP kernels, both simulated; the
  paper cites up to 30 % code-size / 60 % speed potential from [1].
* **EXP-A1** (:func:`run_path_cover_ablation`) -- exact ``K~`` vs the
  greedy cover vs the matching lower bound.
* **EXP-A2** (:func:`run_cost_model_ablation`) -- merging under the
  literal intra-iteration ``C(P)`` vs the steady-state model.
* **EXP-A3** (:func:`run_merging_ablation`) -- best-pair vs naive vs
  the exhaustive optimum on small instances.

Every experiment is seeded and returns a frozen summary dataclass that
:func:`repro.analysis.reports.save_report` can archive.

Every experiment executes through the batch engine
(:class:`~repro.batch.engine.BatchCompiler`): EXP-S1 as
:class:`~repro.batch.jobs.StatisticalGridJob` grid points, EXP-K1 as
per-kernel compilation jobs, and the ablations (EXP-A1..A3, EXP-O1,
EXP-X1..X3) as the registered
:class:`~repro.batch.jobs.ExperimentPointJob` points of
:mod:`repro.analysis.points`, all via :func:`run_experiment`.  Every
``run_*`` entry point therefore takes ``n_workers=`` (process-pool
fan-out), ``cache=`` (persistent, resumable point results),
``progress=`` (per-point streaming callback), and ``executor=`` (an
explicit execution backend -- ``"tcp://host:port"`` runs the points on
a multi-host worker fleet; see
:func:`~repro.batch.engine.open_executor`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.agu.model import AguSpec
from repro.analysis.stats import mean, percent_reduction
from repro.core.config import AllocatorConfig
from repro.errors import ExperimentError
from repro.merging.cost import CostModel
from repro.workloads.kernels import KERNELS


# ======================================================================
# EXP-S1 / EXP-S2: the paper's statistical analysis
# ======================================================================
@dataclass(frozen=True)
class StatisticalConfig:
    """Parameter grid of the statistical comparison (EXP-S1).

    Seeding scheme: grid point ``g`` draws its random patterns from
    ``seed + PATTERN_SEED_STRIDE * g`` and its naive-baseline merge
    orders from the independent stream ``naive_base +
    NAIVE_SEED_STRIDE * (g + 1)`` advanced by ``NAIVE_PATTERN_STRIDE *
    pattern_index + repeat`` per draw, where ``naive_base`` is
    ``naive_seed_base`` when set and ``seed`` otherwise (strides in
    :mod:`repro.batch.jobs`).  Every (grid point, pattern, repeat)
    combination therefore gets its own stream: the naive baselines are
    independent *across* grid points, not just within one, and never
    alias a pattern-generation stream.  Callers that repeat the grid
    (EXP-S3 runs it once per distribution) override ``naive_seed_base``
    so every repetition also draws baselines independent of the other
    repetitions', while the pattern streams stay paired.
    """

    n_values: tuple[int, ...] = (10, 15, 20, 30, 40)
    m_values: tuple[int, ...] = (1, 2, 4)
    k_values: tuple[int, ...] = (2, 3, 4)
    patterns_per_config: int = 30
    offset_span: int = 8
    distribution: str = "uniform"
    seed: int = 1998
    #: The naive baseline is randomized; each pattern's naive cost is
    #: the mean over this many independent merge orders.
    naive_repeats: int = 5
    #: Base of the naive-baseline seed streams; ``None`` means ``seed``
    #: (see the seeding scheme above).
    naive_seed_base: int | None = None
    cost_model: CostModel = CostModel.STEADY_STATE
    #: Phase-1 search limits (phase 1 is shared by both competitors).
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000

    def grid(self) -> list[tuple[int, int, int]]:
        """The (N, M, K) grid in enumeration order."""
        return [(n, m, k)
                for n in self.n_values
                for m in self.m_values
                for k in self.k_values]


@dataclass(frozen=True)
class StatisticalRow:
    """One grid point of EXP-S1."""

    n: int
    m: int
    k: int
    n_patterns: int
    mean_k_tilde: float
    #: Fraction of patterns where merging was needed at all (K~ > K).
    constrained_fraction: float
    mean_optimized: float
    mean_naive: float
    reduction_pct: float


@dataclass(frozen=True)
class StatisticalSummary:
    """EXP-S1 outcome: per-grid-point rows plus headline averages."""

    config: StatisticalConfig
    rows: tuple[StatisticalRow, ...]
    #: Unweighted mean of the per-row reductions (rows with naive > 0).
    average_reduction_pct: float
    #: Reduction of the summed cost over the whole grid.
    overall_reduction_pct: float
    elapsed_seconds: float
    #: Grid points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def statistical_grid_jobs(config: StatisticalConfig) -> list:
    """One picklable :class:`~repro.batch.jobs.StatisticalGridJob` per
    (N, M, K) grid point, carrying this point's derived seeds."""
    from repro.batch.jobs import (
        NAIVE_SEED_STRIDE,
        PATTERN_SEED_STRIDE,
        StatisticalGridJob,
    )

    naive_base = config.naive_seed_base \
        if config.naive_seed_base is not None else config.seed
    return [
        StatisticalGridJob(
            name=f"s1-n{n}-m{m}-k{k}", n=n, m=m, k=k,
            patterns_per_config=config.patterns_per_config,
            offset_span=config.offset_span,
            distribution=config.distribution,
            pattern_seed=config.seed + PATTERN_SEED_STRIDE * grid_index,
            naive_seed=naive_base + NAIVE_SEED_STRIDE * (grid_index + 1),
            naive_repeats=config.naive_repeats,
            cost_model=config.cost_model,
            exact_cover_limit=config.exact_cover_limit,
            cover_node_budget=config.cover_node_budget)
        for grid_index, (n, m, k) in enumerate(config.grid())
    ]


def statistical_rows_from_results(results) -> tuple[StatisticalRow, ...]:
    """Lower :class:`~repro.batch.jobs.GridPointResult`s (in grid
    order) to the summary's :class:`StatisticalRow`s."""
    return tuple(
        StatisticalRow(
            n=result.n, m=result.m, k=result.k,
            n_patterns=result.n_patterns,
            mean_k_tilde=result.mean_k_tilde,
            constrained_fraction=result.constrained_fraction,
            mean_optimized=result.mean_optimized,
            mean_naive=result.mean_naive,
            reduction_pct=percent_reduction(result.mean_naive,
                                            result.mean_optimized))
        for result in results)


def run_statistical_comparison(
        config: StatisticalConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None,
        trace=None) -> StatisticalSummary:
    """EXP-S1: reproduce the paper's ≈40 % average-reduction claim.

    The grid is sharded through the batch engine
    (:class:`~repro.batch.engine.BatchCompiler`): one cacheable job per
    grid point, fanned out over ``n_workers`` processes -- or over an
    explicit ``executor`` backend (``"tcp://host:port"`` leases the
    points to a multi-host worker fleet; see
    :func:`~repro.batch.engine.open_executor`) -- with results
    streamed back as they finish.  Pass a ``cache`` backend (see
    :mod:`repro.batch.cache`) to persist grid points across runs -- a
    re-run then recomputes only what is missing.  ``progress``, when
    given, is called as ``progress(done, total, result)`` after every
    grid point.  The summary is bit-identical for any worker count,
    any executor, and for cached re-runs: each point's statistics
    depend only on its own seeds, and rows are assembled in grid
    order.  ``trace``, when given, records structured scheduling
    events (see :mod:`repro.batch.trace`) -- a JSONL path or an open
    tracer -- at zero cost when ``None``.
    """
    from repro.batch.engine import BatchCompiler

    if config is None:
        config = StatisticalConfig()
    started = time.perf_counter()
    jobs = statistical_grid_jobs(config)
    compiler = BatchCompiler(cache=cache, n_workers=n_workers,
                             executor=executor, trace=trace)

    results = [None] * len(jobs)
    done = 0
    for index, result in compiler.as_completed(jobs):
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, len(jobs), result)
    assert all(result is not None for result in results)

    rows = statistical_rows_from_results(results)
    sum_optimized = 0.0
    sum_naive = 0.0
    for result in results:
        sum_optimized += result.sum_optimized
        sum_naive += result.sum_naive

    informative = [row.reduction_pct for row in rows if row.mean_naive > 0]
    average = mean(informative) if informative else 0.0
    overall = percent_reduction(sum_naive, sum_optimized)
    return StatisticalSummary(
        config=config, rows=rows,
        average_reduction_pct=average,
        overall_reduction_pct=overall,
        elapsed_seconds=time.perf_counter() - started,
        n_points_compiled=sum(1 for r in results if not r.from_cache),
        n_points_cached=sum(1 for r in results if r.from_cache),
    )


def marginalize(summary, axis: str) -> list[StatisticalRow]:
    """EXP-S2: average EXP-S1 rows over all but one parameter.

    ``axis`` is ``"n"``, ``"m"`` or ``"k"``.  ``summary`` is a
    :class:`StatisticalSummary`, or directly an iterable of
    :class:`StatisticalRow` /
    :class:`~repro.batch.jobs.GridPointResult` (as streamed by the
    batch engine).  Returns synthetic rows whose other two parameters
    are set to -1 (meaning "all").
    """
    if axis not in ("n", "m", "k"):
        raise ExperimentError(f"axis must be 'n', 'm' or 'k', got {axis!r}")
    rows = list(getattr(summary, "rows", summary))
    if rows and not isinstance(rows[0], StatisticalRow):
        rows = list(statistical_rows_from_results(rows))
    buckets: dict[int, list[StatisticalRow]] = {}
    for row in rows:
        buckets.setdefault(getattr(row, axis), []).append(row)

    result = []
    for value in sorted(buckets):
        group = buckets[value]
        merged = StatisticalRow(
            n=value if axis == "n" else -1,
            m=value if axis == "m" else -1,
            k=value if axis == "k" else -1,
            n_patterns=sum(row.n_patterns for row in group),
            mean_k_tilde=mean([row.mean_k_tilde for row in group]),
            constrained_fraction=mean(
                [row.constrained_fraction for row in group]),
            mean_optimized=mean([row.mean_optimized for row in group]),
            mean_naive=mean([row.mean_naive for row in group]),
            reduction_pct=percent_reduction(
                mean([row.mean_naive for row in group]),
                mean([row.mean_optimized for row in group])),
        )
        result.append(merged)
    return result


# ======================================================================
# EXP-K1: DSP kernels vs the regular-C-compiler baseline
# ======================================================================
@dataclass(frozen=True)
class KernelComparisonConfig:
    """Configuration of the kernel comparison (EXP-K1)."""

    kernel_names: tuple[str, ...] = ()
    spec: AguSpec = AguSpec(4, 1, "kernel_eval")
    cost_model: CostModel = CostModel.STEADY_STATE
    #: Iterations for the simulator audit of both programs.
    simulate_iterations: int = 32
    #: Process-pool width of the underlying batch engine (1 = inline).
    n_workers: int = 1


@dataclass(frozen=True)
class KernelComparisonRow:
    """One kernel's baseline-vs-optimized accounting (per iteration)."""

    kernel: str
    n_accesses: int
    k_tilde: int | None
    registers_used: int
    #: Addressing instructions per iteration: baseline (= N) / optimized.
    baseline_overhead: int
    optimized_overhead: int
    overhead_reduction_pct: float
    #: Whole-iteration instruction counts (data ops + addressing):
    #: proxy for code size and cycles, as in the paper's [1] citation.
    baseline_instructions: int
    optimized_instructions: int
    speed_improvement_pct: float


@dataclass(frozen=True)
class KernelComparisonSummary:
    """EXP-K1 outcome: per-kernel rows plus headline means."""
    config: KernelComparisonConfig
    rows: tuple[KernelComparisonRow, ...]
    mean_overhead_reduction_pct: float
    mean_speed_improvement_pct: float
    elapsed_seconds: float


def run_kernel_comparison(
        config: KernelComparisonConfig | None = None,
) -> KernelComparisonSummary:
    """EXP-K1: addressing overhead on realistic kernels, audited.

    The suite runs through the batch engine
    (:class:`~repro.batch.engine.BatchCompiler`), one job per kernel
    with baseline measurement enabled.  Both the optimized and the
    baseline address programs are run on the AGU simulator, so every
    number in the table is backed by a verified address stream, not
    just the static model.
    """
    from repro.batch.engine import BatchCompiler
    from repro.batch.jobs import jobs_from_kernels

    if config is None:
        config = KernelComparisonConfig()
    names = config.kernel_names or tuple(sorted(KERNELS))
    started = time.perf_counter()

    jobs = jobs_from_kernels(
        names, config.spec, AllocatorConfig(cost_model=config.cost_model),
        n_iterations=config.simulate_iterations, include_baseline=True)
    report = BatchCompiler(n_workers=config.n_workers).compile(jobs)

    rows: list[KernelComparisonRow] = []
    for result in report.results:
        if not result.audit_ok:  # pragma: no cover - simulate() raises
            raise ExperimentError(
                f"kernel {result.name!r}: dynamic cost disagrees with "
                f"the model")
        n = result.n_accesses
        base_overhead = result.baseline_overhead
        assert base_overhead is not None
        opt_overhead = result.overhead_per_iteration
        # One data instruction per access carries the Use operand.
        base_total = n + base_overhead
        opt_total = n + opt_overhead
        rows.append(KernelComparisonRow(
            kernel=result.name, n_accesses=n, k_tilde=result.k_tilde,
            registers_used=result.n_registers_used,
            baseline_overhead=base_overhead,
            optimized_overhead=opt_overhead,
            overhead_reduction_pct=percent_reduction(base_overhead,
                                                     opt_overhead),
            baseline_instructions=base_total,
            optimized_instructions=opt_total,
            speed_improvement_pct=percent_reduction(base_total, opt_total),
        ))

    return KernelComparisonSummary(
        config=config, rows=tuple(rows),
        mean_overhead_reduction_pct=mean(
            [row.overhead_reduction_pct for row in rows]),
        mean_speed_improvement_pct=mean(
            [row.speed_improvement_pct for row in rows]),
        elapsed_seconds=time.perf_counter() - started,
    )


# ======================================================================
# The generic sharded experiment runner
# ======================================================================
def run_experiment(experiment: str, config=None, *, n_workers: int = 1,
                   cache=None, progress=None, executor=None, trace=None):
    """Run a registered experiment sharded through the batch engine.

    The uniform execution path behind every ``run_*`` ablation below:
    the experiment's points (see :mod:`repro.batch.registry` and
    :mod:`repro.analysis.points`) fan out over ``n_workers`` processes
    -- or over an explicit ``executor`` backend such as
    ``"tcp://host:port"`` (a multi-host worker fleet; see
    :func:`~repro.batch.engine.open_executor`) -- via
    :class:`~repro.batch.engine.BatchCompiler`, every computed
    point is persisted to ``cache`` the moment it exists (interrupted
    runs resume; warm re-runs recompute nothing), ``progress(done,
    total, result)`` fires per point, and the experiment's summary
    dataclass is reassembled from the streamed results bit-identically
    to what the retired sequential loops produced -- whatever executor
    computed them.  ``trace``, when given, records structured
    scheduling events (see :mod:`repro.batch.trace`) as JSONL.
    """
    import dataclasses as _dataclasses

    from repro.batch.engine import BatchCompiler
    from repro.batch.registry import experiment_point_jobs, get_experiment

    definition = get_experiment(experiment)
    if config is None:
        config = definition.default_config()
    started = time.perf_counter()
    jobs = experiment_point_jobs(definition, config)
    compiler = BatchCompiler(cache=cache, n_workers=n_workers,
                             executor=executor, trace=trace)

    results = [None] * len(jobs)
    done = 0
    for index, result in compiler.as_completed(jobs):
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, len(jobs), result)
    assert all(result is not None for result in results)

    summary = definition.assemble(config, results)
    return _dataclasses.replace(
        summary,
        elapsed_seconds=time.perf_counter() - started,
        n_points_compiled=sum(1 for r in results if not r.from_cache),
        n_points_cached=sum(1 for r in results if r.from_cache))


# ======================================================================
# EXP-A1: path-cover ablation (LB vs exact vs greedy)
# ======================================================================
@dataclass(frozen=True)
class PathCoverAblationConfig:
    """Configuration of the path-cover ablation (EXP-A1).

    Seeding scheme: grid point ``g`` draws its patterns from ``seed +
    31 * g``; the experiment has no other randomness, so no further
    per-point stream separation is needed.
    """

    n_values: tuple[int, ...] = (8, 12, 16, 20, 24)
    m_values: tuple[int, ...] = (1, 2)
    patterns_per_config: int = 20
    offset_span: int = 6
    distribution: str = "uniform"
    seed: int = 424242
    node_budget: int = 200_000


@dataclass(frozen=True)
class PathCoverAblationRow:
    """One (N, M) grid point of EXP-A1."""
    n: int
    m: int
    n_patterns: int
    mean_lower_bound: float
    mean_k_tilde: float
    mean_greedy: float
    #: Fraction of instances where the bound/heuristic was tight.
    lb_tight_fraction: float
    greedy_tight_fraction: float
    exact_fraction: float
    mean_nodes: float
    mean_exact_ms: float
    mean_greedy_ms: float


@dataclass(frozen=True)
class PathCoverAblationSummary:
    """EXP-A1 outcome: per-grid-point rows."""
    config: PathCoverAblationConfig
    rows: tuple[PathCoverAblationRow, ...]
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_path_cover_ablation(
        config: PathCoverAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> PathCoverAblationSummary:
    """EXP-A1: how tight are the bounds, how costly is exactness.

    Sharded through the batch engine (see :func:`run_experiment`):
    one cacheable job per (N, M) grid point.
    """
    return run_experiment("pathcover", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-A2: cost-model ablation (INTRA vs STEADY_STATE)
# ======================================================================
@dataclass(frozen=True)
class CostModelAblationConfig:
    """Configuration of the cost-model ablation (EXP-A2).

    Seeding scheme: grid point ``g`` draws its patterns from ``seed +
    53 * g``; the experiment has no other randomness.
    """

    n_values: tuple[int, ...] = (10, 20, 30)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 20
    offset_span: int = 8
    seed: int = 777
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000


@dataclass(frozen=True)
class CostModelAblationRow:
    """Steady-state cost actually paid, depending on the model used
    while merging."""

    n: int
    m: int
    k: int
    n_patterns: int
    mean_steady_when_merged_intra: float
    mean_steady_when_merged_steady: float
    penalty_pct: float


@dataclass(frozen=True)
class CostModelAblationSummary:
    """EXP-A2 outcome: per-grid-point rows plus the mean penalty."""
    config: CostModelAblationConfig
    rows: tuple[CostModelAblationRow, ...]
    mean_penalty_pct: float
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_cost_model_ablation(
        config: CostModelAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> CostModelAblationSummary:
    """EXP-A2: merging with the literal intra-only ``C(P)`` leaves the
    wrap-around costs on the table; quantify how much.

    Sharded through the batch engine (see :func:`run_experiment`):
    one cacheable job per (N, M, K) grid point.
    """
    return run_experiment("costmodel", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-A3: merging-strategy ablation incl. the exhaustive optimum
# ======================================================================
@dataclass(frozen=True)
class MergingAblationConfig:
    """Configuration of the merging-strategy ablation (EXP-A3).

    Seeding scheme: grid point ``g`` draws its patterns from ``seed +
    97 * g``; the randomized naive baseline of pattern ``p`` draws its
    merge order from ``naive_baseline_seed(seed + NAIVE_SEED_STRIDE *
    (g + 1), p, 0)`` (strides in :mod:`repro.batch.jobs`), so naive
    merge orders are independent across grid points and never alias a
    pattern stream.  (An earlier scheme seeded the baseline with
    ``seed + p`` alone, which replayed one merge-order stream on every
    grid point -- and aliased the point-0 pattern stream -- the same
    seed-reuse bug fixed for EXP-S1 in the sharded grid.)
    """

    n_values: tuple[int, ...] = (8, 10, 12)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 15
    offset_span: int = 6
    seed: int = 31337
    cost_model: CostModel = CostModel.STEADY_STATE


@dataclass(frozen=True)
class MergingAblationRow:
    """One (N, M, K) grid point of EXP-A3."""
    n: int
    m: int
    k: int
    n_patterns: int
    mean_optimal: float
    mean_best_pair: float
    mean_naive_random: float
    mean_naive_first: float
    #: Fraction of instances where best-pair merging hits the optimum.
    best_pair_optimal_fraction: float
    #: Mean relative gap of best-pair over the optimum (on instances
    #: with a positive optimum).
    best_pair_gap_pct: float


@dataclass(frozen=True)
class MergingAblationSummary:
    """EXP-A3 outcome: per-grid-point rows."""
    config: MergingAblationConfig
    rows: tuple[MergingAblationRow, ...]
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_merging_ablation(
        config: MergingAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> MergingAblationSummary:
    """EXP-A3: position the paper's heuristic between naive and optimal.

    Sharded through the batch engine (see :func:`run_experiment`):
    one cacheable job per (N, M, K) grid point, each carrying its own
    pattern and naive-baseline seeds (scheme on
    :class:`MergingAblationConfig`).
    """
    return run_experiment("merging", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-O1: offset-assignment substrate (the paper's refs [4, 5])
# ======================================================================
@dataclass(frozen=True)
class OffsetComparisonConfig:
    """Configuration of the offset-assignment comparison (EXP-O1).

    Seeding scheme: grid point ``g`` (one (V, length) pair) draws
    sequence ``i`` from ``seed + 1009 * g + i`` -- the 1009 stride
    keeps per-point sequence streams disjoint for up to 1009 sequences
    per point; the experiment has no other randomness.
    """

    v_values: tuple[int, ...] = (5, 8, 12, 16)
    length_values: tuple[int, ...] = (20, 40)
    sequences_per_config: int = 25
    locality: float = 0.5
    seed: int = 4242
    #: Exhaustive optimum is included for variable counts up to this.
    optimal_limit: int = 8
    goa_k_values: tuple[int, ...] = (2, 4)


@dataclass(frozen=True)
class OffsetSoaRow:
    """One (V, length) SOA grid point of EXP-O1."""
    n_variables: int
    length: int
    n_sequences: int
    mean_ofu: float
    mean_liao: float
    mean_tiebreak: float
    liao_reduction_pct: float
    tiebreak_reduction_pct: float
    mean_optimal: float | None


@dataclass(frozen=True)
class OffsetGoaRow:
    """One (V, length, K) GOA grid point of EXP-O1."""
    n_variables: int
    length: int
    k: int
    n_sequences: int
    mean_first_use: float
    mean_greedy: float
    reduction_pct: float


@dataclass(frozen=True)
class OffsetComparisonSummary:
    """EXP-O1 outcome: SOA and GOA rows plus headline means."""
    config: OffsetComparisonConfig
    soa_rows: tuple[OffsetSoaRow, ...]
    goa_rows: tuple[OffsetGoaRow, ...]
    mean_liao_reduction_pct: float
    mean_tiebreak_reduction_pct: float
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_offset_comparison(
        config: OffsetComparisonConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> OffsetComparisonSummary:
    """EXP-O1: SOA heuristics vs the OFU baseline (and GOA over k ARs).

    Context for the paper's "complementary" citation of refs [4, 5]:
    scalar-variable addressing benefits from the same AGU hardware via
    layout choice rather than register assignment.  Sharded through
    the batch engine (see :func:`run_experiment`): one cacheable job
    per (V, length) grid point, covering its SOA row and GOA rows.
    """
    return run_experiment("offset", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-X1: the modify-register extension
# ======================================================================
@dataclass(frozen=True)
class ModRegAblationConfig:
    """Configuration of the modify-register ablation (EXP-X1).

    Seeding scheme: grid pair ``g`` (one (N, K) combination) draws its
    patterns from ``seed + 1013 * g``; all ``mr_values`` points of one
    pair share that pattern family deliberately, so the MR sweep is
    paired.  The experiment has no other randomness.
    """

    n_values: tuple[int, ...] = (15, 25)
    k_values: tuple[int, ...] = (2, 3)
    mr_values: tuple[int, ...] = (0, 1, 2, 4)
    modify_range: int = 1
    patterns_per_config: int = 20
    offset_span: int = 10
    seed: int = 90210
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000


@dataclass(frozen=True)
class ModRegAblationRow:
    """One (N, K, MR) grid point of EXP-X1."""
    n: int
    k: int
    n_modify_registers: int
    n_patterns: int
    mean_cost: float
    #: Reduction vs the same config with zero modify registers.
    reduction_vs_no_mr_pct: float


@dataclass(frozen=True)
class ModRegAblationSummary:
    """EXP-X1 outcome: per-point rows."""
    config: ModRegAblationConfig
    rows: tuple[ModRegAblationRow, ...]
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_modreg_ablation(
        config: ModRegAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> ModRegAblationSummary:
    """EXP-X1: addressing cost vs the number of modify registers.

    Extension experiment (not in the paper): quantifies how much of the
    residual unit-cost addressing an MR file of growing size recovers,
    using exact per-allocation value selection plus iterative
    re-merging (:mod:`repro.modreg`).  Sharded through the batch
    engine (see :func:`run_experiment`): one cacheable job per
    (N, K, MR) point; the reduction-vs-no-MR column is reassembled
    against each (N, K) pair's MR=0 point.
    """
    return run_experiment("modreg", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-X2: the access-reordering extension
# ======================================================================
@dataclass(frozen=True)
class ReorderAblationConfig:
    """Configuration of the access-reordering ablation (EXP-X2).

    Seeding scheme: grid point ``g`` draws its patterns from ``seed +
    211 * g``; the experiment has no other randomness.
    """

    n_values: tuple[int, ...] = (8, 12, 16)
    k_values: tuple[int, ...] = (2, 3)
    modify_range: int = 1
    write_fraction: float = 0.4
    patterns_per_config: int = 12
    offset_span: int = 6
    seed: int = 60606


@dataclass(frozen=True)
class ReorderAblationRow:
    """One (N, K) grid point of EXP-X2."""
    n: int
    k: int
    n_patterns: int
    mean_fixed_order: float
    mean_reordered: float
    reduction_pct: float
    #: Fraction of instances where reordering changed the order at all.
    reordered_fraction: float


@dataclass(frozen=True)
class ReorderAblationSummary:
    """EXP-X2 outcome: per-grid-point rows plus the mean reduction."""
    config: ReorderAblationConfig
    rows: tuple[ReorderAblationRow, ...]
    mean_reduction_pct: float
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_reorder_ablation(
        config: ReorderAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> ReorderAblationSummary:
    """EXP-X2: what scheduling freedom buys on top of the paper.

    Extension experiment (not in the paper): random patterns with
    writes (so real dependences exist) are allocated with the paper's
    fixed access order and with the reordering extension; the reordered
    cost can never be worse by construction.  Sharded through the
    batch engine (see :func:`run_experiment`): one cacheable job per
    (N, K) grid point.
    """
    return run_experiment("reorder", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-X3: the array-layout extension
# ======================================================================
@dataclass(frozen=True)
class ArrayLayoutAblationConfig:
    """Configuration of the array-layout ablation (EXP-X3).

    Seeding scheme: grid point ``g`` draws its patterns from ``seed +
    307 * g``; the experiment has no other randomness.
    """

    n_values: tuple[int, ...] = (10, 16)
    k_values: tuple[int, ...] = (1, 2)
    n_arrays: int = 3
    #: Short arrays so cross-array folding is geometrically possible.
    array_length: int = 8
    offset_span: int = 6
    modify_range: int = 1
    patterns_per_config: int = 15
    seed: int = 515151


@dataclass(frozen=True)
class ArrayLayoutAblationRow:
    """One (N, K) grid point of EXP-X3."""
    n: int
    k: int
    n_patterns: int
    mean_default: float
    mean_optimized: float
    reduction_pct: float


@dataclass(frozen=True)
class ArrayLayoutAblationSummary:
    """EXP-X3 outcome: per-grid-point rows plus the mean reduction."""
    config: ArrayLayoutAblationConfig
    rows: tuple[ArrayLayoutAblationRow, ...]
    mean_reduction_pct: float
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_array_layout_ablation(
        config: ArrayLayoutAblationConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> ArrayLayoutAblationSummary:
    """EXP-X3: what choosing array base addresses buys.

    Extension experiment (ref [1]'s layout angle, not in the paper):
    multi-array random patterns are allocated once; their cost is then
    evaluated under the reference guard-gap layout vs the optimized
    placement of :mod:`repro.arraylayout`.  Sharded through the batch
    engine (see :func:`run_experiment`): one cacheable job per (N, K)
    grid point.
    """
    return run_experiment("arraylayout", config, n_workers=n_workers,
                          cache=cache, progress=progress,
                          executor=executor)


# ======================================================================
# EXP-S3: distribution sensitivity of the headline claim
# ======================================================================
@dataclass(frozen=True)
class DistributionSensitivityConfig:
    """Configuration of the distribution sensitivity run (EXP-S3).

    Seeding scheme: distribution ``d`` repeats the EXP-S1 grid with the
    shared pattern base ``seed`` (pattern families stay paired across
    distributions -- only the distribution differs) but its own
    naive-baseline base ``seed + NAIVE_SEED_STRIDE *
    DISTRIBUTION_SEED_SPAN * (d + 1)`` (constants in
    :mod:`repro.batch.jobs`), so each repetition draws merge orders
    independent of every other's.  (An earlier scheme reused the plain
    base seed, which replayed identical "independent" baseline streams
    on all four distributions.)
    """

    distributions: tuple[str, ...] = ("uniform", "clustered", "sweep",
                                      "mixed")
    #: Base grid, scaled down per distribution to keep runtime bounded.
    n_values: tuple[int, ...] = (15, 30)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 20
    seed: int = 271828


@dataclass(frozen=True)
class DistributionSensitivityRow:
    """One offset distribution's EXP-S1 repetition, summarized."""
    distribution: str
    average_reduction_pct: float
    overall_reduction_pct: float
    mean_optimized: float
    mean_naive: float


@dataclass(frozen=True)
class DistributionSensitivitySummary:
    """EXP-S3 outcome: one row per offset distribution."""
    config: DistributionSensitivityConfig
    rows: tuple[DistributionSensitivityRow, ...]
    elapsed_seconds: float
    #: Points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def run_distribution_sensitivity(
        config: DistributionSensitivityConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None, executor=None) -> DistributionSensitivitySummary:
    """EXP-S3: is the ≈40 % claim an artifact of one offset shape?

    Repeats EXP-S1 under every offset distribution of the random
    generator.  The paper does not specify its distribution; a robust
    reproduction should win under all of them.  Every repetition runs
    through the sharded batch engine (see
    :func:`run_statistical_comparison`); ``progress`` counts points
    across all distributions.
    """
    from repro.batch.jobs import DISTRIBUTION_SEED_SPAN, NAIVE_SEED_STRIDE

    if config is None:
        config = DistributionSensitivityConfig()
    started = time.perf_counter()
    rows: list[DistributionSensitivityRow] = []
    summaries: list[StatisticalSummary] = []
    for dist_index, distribution in enumerate(config.distributions):
        stats_config = StatisticalConfig(
            n_values=config.n_values, m_values=config.m_values,
            k_values=config.k_values,
            patterns_per_config=config.patterns_per_config,
            distribution=distribution, seed=config.seed,
            naive_seed_base=config.seed + NAIVE_SEED_STRIDE
            * DISTRIBUTION_SEED_SPAN * (dist_index + 1))
        grid_size = len(stats_config.grid())
        total = grid_size * len(config.distributions)
        offset = grid_size * dist_index
        summary = run_statistical_comparison(
            stats_config, n_workers=n_workers, cache=cache,
            progress=None if progress is None else
            (lambda done, _total, result, _offset=offset:
             progress(_offset + done, total, result)))
        summaries.append(summary)
        rows.append(DistributionSensitivityRow(
            distribution=distribution,
            average_reduction_pct=summary.average_reduction_pct,
            overall_reduction_pct=summary.overall_reduction_pct,
            mean_optimized=mean([row.mean_optimized
                                 for row in summary.rows]),
            mean_naive=mean([row.mean_naive for row in summary.rows]),
        ))
    return DistributionSensitivitySummary(
        config, tuple(rows), time.perf_counter() - started,
        n_points_compiled=sum(s.n_points_compiled for s in summaries),
        n_points_cached=sum(s.n_points_cached for s in summaries))


def quick_statistical_config() -> StatisticalConfig:
    """A scaled-down EXP-S1 grid for smoke tests and CI."""
    return StatisticalConfig(
        n_values=(10, 20), m_values=(1, 2), k_values=(2, 3),
        patterns_per_config=8, naive_repeats=3)
