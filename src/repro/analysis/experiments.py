"""The experiments of the paper's Results section, plus ablations.

Experiment ids follow DESIGN.md:

* **EXP-S1** (:func:`run_statistical_comparison`) -- the paper's
  statistical analysis: best-pair merging vs naive arbitrary merging
  over random patterns and a grid of ``N``, ``M``, ``K``; the paper
  reports "about 40 %" average cost reduction.
* **EXP-S2** (:func:`marginalize`) -- the same data marginalized per
  parameter, showing where the heuristic helps most.
* **EXP-K1** (:func:`run_kernel_comparison`) -- optimized addressing vs
  a regular-C-compiler baseline on DSP kernels, both simulated; the
  paper cites up to 30 % code-size / 60 % speed potential from [1].
* **EXP-A1** (:func:`run_path_cover_ablation`) -- exact ``K~`` vs the
  greedy cover vs the matching lower bound.
* **EXP-A2** (:func:`run_cost_model_ablation`) -- merging under the
  literal intra-iteration ``C(P)`` vs the steady-state model.
* **EXP-A3** (:func:`run_merging_ablation`) -- best-pair vs naive vs
  the exhaustive optimum on small instances.

Every experiment is seeded and returns a frozen summary dataclass that
:func:`repro.analysis.reports.save_report` can archive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.agu.model import AguSpec
from repro.analysis.stats import mean, percent_reduction
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.errors import ExperimentError
from repro.graph.access_graph import AccessGraph
from repro.merging.cost import CostModel, cover_cost
from repro.merging.exhaustive import optimal_allocation
from repro.merging.greedy import best_pair_merge
from repro.merging.naive import naive_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.workloads.kernels import KERNELS
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)


# ======================================================================
# EXP-S1 / EXP-S2: the paper's statistical analysis
# ======================================================================
@dataclass(frozen=True)
class StatisticalConfig:
    """Parameter grid of the statistical comparison (EXP-S1).

    Seeding scheme: grid point ``g`` draws its random patterns from
    ``seed + PATTERN_SEED_STRIDE * g`` and its naive-baseline merge
    orders from the independent stream ``seed + NAIVE_SEED_STRIDE *
    (g + 1)`` advanced by ``NAIVE_PATTERN_STRIDE * pattern_index +
    repeat`` per draw (strides in :mod:`repro.batch.jobs`).  Every
    (grid point, pattern, repeat) combination therefore gets its own
    stream: the naive baselines are independent *across* grid points,
    not just within one, and never alias a pattern-generation stream.
    """

    n_values: tuple[int, ...] = (10, 15, 20, 30, 40)
    m_values: tuple[int, ...] = (1, 2, 4)
    k_values: tuple[int, ...] = (2, 3, 4)
    patterns_per_config: int = 30
    offset_span: int = 8
    distribution: str = "uniform"
    seed: int = 1998
    #: The naive baseline is randomized; each pattern's naive cost is
    #: the mean over this many independent merge orders.
    naive_repeats: int = 5
    cost_model: CostModel = CostModel.STEADY_STATE
    #: Phase-1 search limits (phase 1 is shared by both competitors).
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000

    def grid(self) -> list[tuple[int, int, int]]:
        return [(n, m, k)
                for n in self.n_values
                for m in self.m_values
                for k in self.k_values]


@dataclass(frozen=True)
class StatisticalRow:
    """One grid point of EXP-S1."""

    n: int
    m: int
    k: int
    n_patterns: int
    mean_k_tilde: float
    #: Fraction of patterns where merging was needed at all (K~ > K).
    constrained_fraction: float
    mean_optimized: float
    mean_naive: float
    reduction_pct: float


@dataclass(frozen=True)
class StatisticalSummary:
    """EXP-S1 outcome: per-grid-point rows plus headline averages."""

    config: StatisticalConfig
    rows: tuple[StatisticalRow, ...]
    #: Unweighted mean of the per-row reductions (rows with naive > 0).
    average_reduction_pct: float
    #: Reduction of the summed cost over the whole grid.
    overall_reduction_pct: float
    elapsed_seconds: float
    #: Grid points computed this run vs served from the result cache.
    n_points_compiled: int = 0
    n_points_cached: int = 0


def statistical_grid_jobs(config: StatisticalConfig) -> list:
    """One picklable :class:`~repro.batch.jobs.StatisticalGridJob` per
    (N, M, K) grid point, carrying this point's derived seeds."""
    from repro.batch.jobs import (
        NAIVE_SEED_STRIDE,
        PATTERN_SEED_STRIDE,
        StatisticalGridJob,
    )

    return [
        StatisticalGridJob(
            name=f"s1-n{n}-m{m}-k{k}", n=n, m=m, k=k,
            patterns_per_config=config.patterns_per_config,
            offset_span=config.offset_span,
            distribution=config.distribution,
            pattern_seed=config.seed + PATTERN_SEED_STRIDE * grid_index,
            naive_seed=config.seed + NAIVE_SEED_STRIDE * (grid_index + 1),
            naive_repeats=config.naive_repeats,
            cost_model=config.cost_model,
            exact_cover_limit=config.exact_cover_limit,
            cover_node_budget=config.cover_node_budget)
        for grid_index, (n, m, k) in enumerate(config.grid())
    ]


def statistical_rows_from_results(results) -> tuple[StatisticalRow, ...]:
    """Lower :class:`~repro.batch.jobs.GridPointResult`s (in grid
    order) to the summary's :class:`StatisticalRow`s."""
    return tuple(
        StatisticalRow(
            n=result.n, m=result.m, k=result.k,
            n_patterns=result.n_patterns,
            mean_k_tilde=result.mean_k_tilde,
            constrained_fraction=result.constrained_fraction,
            mean_optimized=result.mean_optimized,
            mean_naive=result.mean_naive,
            reduction_pct=percent_reduction(result.mean_naive,
                                            result.mean_optimized))
        for result in results)


def run_statistical_comparison(
        config: StatisticalConfig | None = None, *,
        n_workers: int = 1, cache=None,
        progress=None) -> StatisticalSummary:
    """EXP-S1: reproduce the paper's ≈40 % average-reduction claim.

    The grid is sharded through the batch engine
    (:class:`~repro.batch.engine.BatchCompiler`): one cacheable job per
    grid point, fanned out over ``n_workers`` processes, with results
    streamed back as they finish.  Pass a ``cache`` backend (see
    :mod:`repro.batch.cache`) to persist grid points across runs -- a
    re-run then recomputes only what is missing.  ``progress``, when
    given, is called as ``progress(done, total, result)`` after every
    grid point.  The summary is bit-identical for any worker count and
    for cached re-runs: each point's statistics depend only on its own
    seeds, and rows are assembled in grid order.
    """
    from repro.batch.engine import BatchCompiler

    if config is None:
        config = StatisticalConfig()
    started = time.perf_counter()
    jobs = statistical_grid_jobs(config)
    compiler = BatchCompiler(cache=cache, n_workers=n_workers)

    results = [None] * len(jobs)
    done = 0
    for index, result in compiler.as_completed(jobs):
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, len(jobs), result)
    assert all(result is not None for result in results)

    rows = statistical_rows_from_results(results)
    sum_optimized = 0.0
    sum_naive = 0.0
    for result in results:
        sum_optimized += result.sum_optimized
        sum_naive += result.sum_naive

    informative = [row.reduction_pct for row in rows if row.mean_naive > 0]
    average = mean(informative) if informative else 0.0
    overall = percent_reduction(sum_naive, sum_optimized)
    return StatisticalSummary(
        config=config, rows=rows,
        average_reduction_pct=average,
        overall_reduction_pct=overall,
        elapsed_seconds=time.perf_counter() - started,
        n_points_compiled=sum(1 for r in results if not r.from_cache),
        n_points_cached=sum(1 for r in results if r.from_cache),
    )


def marginalize(summary, axis: str) -> list[StatisticalRow]:
    """EXP-S2: average EXP-S1 rows over all but one parameter.

    ``axis`` is ``"n"``, ``"m"`` or ``"k"``.  ``summary`` is a
    :class:`StatisticalSummary`, or directly an iterable of
    :class:`StatisticalRow` /
    :class:`~repro.batch.jobs.GridPointResult` (as streamed by the
    batch engine).  Returns synthetic rows whose other two parameters
    are set to -1 (meaning "all").
    """
    if axis not in ("n", "m", "k"):
        raise ExperimentError(f"axis must be 'n', 'm' or 'k', got {axis!r}")
    rows = list(getattr(summary, "rows", summary))
    if rows and not isinstance(rows[0], StatisticalRow):
        rows = list(statistical_rows_from_results(rows))
    buckets: dict[int, list[StatisticalRow]] = {}
    for row in rows:
        buckets.setdefault(getattr(row, axis), []).append(row)

    result = []
    for value in sorted(buckets):
        group = buckets[value]
        merged = StatisticalRow(
            n=value if axis == "n" else -1,
            m=value if axis == "m" else -1,
            k=value if axis == "k" else -1,
            n_patterns=sum(row.n_patterns for row in group),
            mean_k_tilde=mean([row.mean_k_tilde for row in group]),
            constrained_fraction=mean(
                [row.constrained_fraction for row in group]),
            mean_optimized=mean([row.mean_optimized for row in group]),
            mean_naive=mean([row.mean_naive for row in group]),
            reduction_pct=percent_reduction(
                mean([row.mean_naive for row in group]),
                mean([row.mean_optimized for row in group])),
        )
        result.append(merged)
    return result


# ======================================================================
# EXP-K1: DSP kernels vs the regular-C-compiler baseline
# ======================================================================
@dataclass(frozen=True)
class KernelComparisonConfig:
    """Configuration of the kernel comparison (EXP-K1)."""

    kernel_names: tuple[str, ...] = ()
    spec: AguSpec = AguSpec(4, 1, "kernel_eval")
    cost_model: CostModel = CostModel.STEADY_STATE
    #: Iterations for the simulator audit of both programs.
    simulate_iterations: int = 32
    #: Process-pool width of the underlying batch engine (1 = inline).
    n_workers: int = 1


@dataclass(frozen=True)
class KernelComparisonRow:
    """One kernel's baseline-vs-optimized accounting (per iteration)."""

    kernel: str
    n_accesses: int
    k_tilde: int | None
    registers_used: int
    #: Addressing instructions per iteration: baseline (= N) / optimized.
    baseline_overhead: int
    optimized_overhead: int
    overhead_reduction_pct: float
    #: Whole-iteration instruction counts (data ops + addressing):
    #: proxy for code size and cycles, as in the paper's [1] citation.
    baseline_instructions: int
    optimized_instructions: int
    speed_improvement_pct: float


@dataclass(frozen=True)
class KernelComparisonSummary:
    config: KernelComparisonConfig
    rows: tuple[KernelComparisonRow, ...]
    mean_overhead_reduction_pct: float
    mean_speed_improvement_pct: float
    elapsed_seconds: float


def run_kernel_comparison(
        config: KernelComparisonConfig | None = None,
) -> KernelComparisonSummary:
    """EXP-K1: addressing overhead on realistic kernels, audited.

    The suite runs through the batch engine
    (:class:`~repro.batch.engine.BatchCompiler`), one job per kernel
    with baseline measurement enabled.  Both the optimized and the
    baseline address programs are run on the AGU simulator, so every
    number in the table is backed by a verified address stream, not
    just the static model.
    """
    from repro.batch.engine import BatchCompiler
    from repro.batch.jobs import jobs_from_kernels

    if config is None:
        config = KernelComparisonConfig()
    names = config.kernel_names or tuple(sorted(KERNELS))
    started = time.perf_counter()

    jobs = jobs_from_kernels(
        names, config.spec, AllocatorConfig(cost_model=config.cost_model),
        n_iterations=config.simulate_iterations, include_baseline=True)
    report = BatchCompiler(n_workers=config.n_workers).compile(jobs)

    rows: list[KernelComparisonRow] = []
    for result in report.results:
        if not result.audit_ok:  # pragma: no cover - simulate() raises
            raise ExperimentError(
                f"kernel {result.name!r}: dynamic cost disagrees with "
                f"the model")
        n = result.n_accesses
        base_overhead = result.baseline_overhead
        assert base_overhead is not None
        opt_overhead = result.overhead_per_iteration
        # One data instruction per access carries the Use operand.
        base_total = n + base_overhead
        opt_total = n + opt_overhead
        rows.append(KernelComparisonRow(
            kernel=result.name, n_accesses=n, k_tilde=result.k_tilde,
            registers_used=result.n_registers_used,
            baseline_overhead=base_overhead,
            optimized_overhead=opt_overhead,
            overhead_reduction_pct=percent_reduction(base_overhead,
                                                     opt_overhead),
            baseline_instructions=base_total,
            optimized_instructions=opt_total,
            speed_improvement_pct=percent_reduction(base_total, opt_total),
        ))

    return KernelComparisonSummary(
        config=config, rows=tuple(rows),
        mean_overhead_reduction_pct=mean(
            [row.overhead_reduction_pct for row in rows]),
        mean_speed_improvement_pct=mean(
            [row.speed_improvement_pct for row in rows]),
        elapsed_seconds=time.perf_counter() - started,
    )


# ======================================================================
# EXP-A1: path-cover ablation (LB vs exact vs greedy)
# ======================================================================
@dataclass(frozen=True)
class PathCoverAblationConfig:
    n_values: tuple[int, ...] = (8, 12, 16, 20, 24)
    m_values: tuple[int, ...] = (1, 2)
    patterns_per_config: int = 20
    offset_span: int = 6
    distribution: str = "uniform"
    seed: int = 424242
    node_budget: int = 200_000


@dataclass(frozen=True)
class PathCoverAblationRow:
    n: int
    m: int
    n_patterns: int
    mean_lower_bound: float
    mean_k_tilde: float
    mean_greedy: float
    #: Fraction of instances where the bound/heuristic was tight.
    lb_tight_fraction: float
    greedy_tight_fraction: float
    exact_fraction: float
    mean_nodes: float
    mean_exact_ms: float
    mean_greedy_ms: float


@dataclass(frozen=True)
class PathCoverAblationSummary:
    config: PathCoverAblationConfig
    rows: tuple[PathCoverAblationRow, ...]
    elapsed_seconds: float


def run_path_cover_ablation(
        config: PathCoverAblationConfig | None = None,
) -> PathCoverAblationSummary:
    """EXP-A1: how tight are the bounds, how costly is exactness."""
    if config is None:
        config = PathCoverAblationConfig()
    started = time.perf_counter()
    rows = []
    for grid_index, (n, m) in enumerate(
            (n, m) for n in config.n_values for m in config.m_values):
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span,
                                distribution=config.distribution),
            config.patterns_per_config,
            seed=config.seed + 31 * grid_index)
        lbs, exacts, greedies, nodes = [], [], [], []
        exact_ms, greedy_ms = [], []
        lb_tight = greedy_tight = proven = 0
        for pattern in patterns:
            graph = AccessGraph(pattern, m)
            lb = intra_cover_lower_bound(graph)

            t0 = time.perf_counter()
            greedy = greedy_zero_cost_cover(graph)
            greedy_ms.append(1000 * (time.perf_counter() - t0))

            t0 = time.perf_counter()
            outcome = minimum_zero_cost_cover(
                pattern, m, node_budget=config.node_budget)
            exact_ms.append(1000 * (time.perf_counter() - t0))

            lbs.append(float(lb))
            exacts.append(float(outcome.k_tilde))
            greedies.append(float(greedy.n_paths))
            nodes.append(float(outcome.nodes_explored))
            lb_tight += lb == outcome.k_tilde
            greedy_tight += greedy.n_paths == outcome.k_tilde
            proven += outcome.optimal
        count = len(patterns)
        rows.append(PathCoverAblationRow(
            n=n, m=m, n_patterns=count,
            mean_lower_bound=mean(lbs), mean_k_tilde=mean(exacts),
            mean_greedy=mean(greedies),
            lb_tight_fraction=lb_tight / count,
            greedy_tight_fraction=greedy_tight / count,
            exact_fraction=proven / count,
            mean_nodes=mean(nodes),
            mean_exact_ms=mean(exact_ms),
            mean_greedy_ms=mean(greedy_ms),
        ))
    return PathCoverAblationSummary(config, tuple(rows),
                                    time.perf_counter() - started)


# ======================================================================
# EXP-A2: cost-model ablation (INTRA vs STEADY_STATE)
# ======================================================================
@dataclass(frozen=True)
class CostModelAblationConfig:
    n_values: tuple[int, ...] = (10, 20, 30)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 20
    offset_span: int = 8
    seed: int = 777
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000


@dataclass(frozen=True)
class CostModelAblationRow:
    """Steady-state cost actually paid, depending on the model used
    while merging."""

    n: int
    m: int
    k: int
    n_patterns: int
    mean_steady_when_merged_intra: float
    mean_steady_when_merged_steady: float
    penalty_pct: float


@dataclass(frozen=True)
class CostModelAblationSummary:
    config: CostModelAblationConfig
    rows: tuple[CostModelAblationRow, ...]
    mean_penalty_pct: float
    elapsed_seconds: float


def run_cost_model_ablation(
        config: CostModelAblationConfig | None = None,
) -> CostModelAblationSummary:
    """EXP-A2: merging with the literal intra-only ``C(P)`` leaves the
    wrap-around costs on the table; quantify how much."""
    if config is None:
        config = CostModelAblationConfig()
    started = time.perf_counter()
    rows = []
    for grid_index, (n, m, k) in enumerate(
            (n, m, k) for n in config.n_values for m in config.m_values
            for k in config.k_values):
        allocator = AddressRegisterAllocator(AguSpec(k, m), AllocatorConfig(
            exact_cover_limit=config.exact_cover_limit,
            cover_node_budget=config.cover_node_budget))
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span),
            config.patterns_per_config, seed=config.seed + 53 * grid_index)
        steady_costs_intra, steady_costs_steady = [], []
        for pattern in patterns:
            cover, _kt, _feasible, _optimal = \
                allocator.initial_cover(pattern)
            if cover.n_paths <= k:
                cost = float(cover_cost(cover, pattern, m,
                                        CostModel.STEADY_STATE))
                steady_costs_intra.append(cost)
                steady_costs_steady.append(cost)
                continue
            merged_intra = best_pair_merge(cover, k, pattern, m,
                                           CostModel.INTRA)
            merged_steady = best_pair_merge(cover, k, pattern, m,
                                            CostModel.STEADY_STATE)
            steady_costs_intra.append(float(cover_cost(
                merged_intra.cover, pattern, m, CostModel.STEADY_STATE)))
            steady_costs_steady.append(float(merged_steady.total_cost))
        mean_intra = mean(steady_costs_intra)
        mean_steady = mean(steady_costs_steady)
        rows.append(CostModelAblationRow(
            n=n, m=m, k=k, n_patterns=len(patterns),
            mean_steady_when_merged_intra=mean_intra,
            mean_steady_when_merged_steady=mean_steady,
            penalty_pct=percent_reduction(mean_intra, mean_steady),
        ))
    return CostModelAblationSummary(
        config, tuple(rows),
        mean_penalty_pct=mean([row.penalty_pct for row in rows]),
        elapsed_seconds=time.perf_counter() - started)


# ======================================================================
# EXP-A3: merging-strategy ablation incl. the exhaustive optimum
# ======================================================================
@dataclass(frozen=True)
class MergingAblationConfig:
    n_values: tuple[int, ...] = (8, 10, 12)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 15
    offset_span: int = 6
    seed: int = 31337
    cost_model: CostModel = CostModel.STEADY_STATE


@dataclass(frozen=True)
class MergingAblationRow:
    n: int
    m: int
    k: int
    n_patterns: int
    mean_optimal: float
    mean_best_pair: float
    mean_naive_random: float
    mean_naive_first: float
    #: Fraction of instances where best-pair merging hits the optimum.
    best_pair_optimal_fraction: float
    #: Mean relative gap of best-pair over the optimum (on instances
    #: with a positive optimum).
    best_pair_gap_pct: float


@dataclass(frozen=True)
class MergingAblationSummary:
    config: MergingAblationConfig
    rows: tuple[MergingAblationRow, ...]
    elapsed_seconds: float


def run_merging_ablation(
        config: MergingAblationConfig | None = None,
) -> MergingAblationSummary:
    """EXP-A3: position the paper's heuristic between naive and optimal."""
    if config is None:
        config = MergingAblationConfig()
    started = time.perf_counter()
    rows = []
    for grid_index, (n, m, k) in enumerate(
            (n, m, k) for n in config.n_values for m in config.m_values
            for k in config.k_values):
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span),
            config.patterns_per_config, seed=config.seed + 97 * grid_index)
        optimal_costs, best_costs = [], []
        naive_random_costs, naive_first_costs = [], []
        hits = 0
        gaps = []
        for pattern_index, pattern in enumerate(patterns):
            outcome = minimum_zero_cost_cover(pattern, m)
            cover = outcome.cover
            optimum = optimal_allocation(pattern, k, m, config.cost_model)
            optimal_costs.append(float(optimum.total_cost))
            if cover.n_paths <= k:
                cost = float(cover_cost(cover, pattern, m,
                                        config.cost_model))
                best_costs.append(cost)
                naive_random_costs.append(cost)
                naive_first_costs.append(cost)
            else:
                best = best_pair_merge(cover, k, pattern, m,
                                       config.cost_model)
                best_costs.append(float(best.total_cost))
                naive_random_costs.append(float(naive_merge(
                    cover, k, pattern, m, config.cost_model,
                    strategy="random",
                    seed=config.seed + pattern_index).total_cost))
                naive_first_costs.append(float(naive_merge(
                    cover, k, pattern, m, config.cost_model,
                    strategy="first_pair").total_cost))
            hits += best_costs[-1] == optimal_costs[-1]
            if optimal_costs[-1] > 0:
                gaps.append(100.0 * (best_costs[-1] - optimal_costs[-1])
                            / optimal_costs[-1])
        count = len(patterns)
        rows.append(MergingAblationRow(
            n=n, m=m, k=k, n_patterns=count,
            mean_optimal=mean(optimal_costs),
            mean_best_pair=mean(best_costs),
            mean_naive_random=mean(naive_random_costs),
            mean_naive_first=mean(naive_first_costs),
            best_pair_optimal_fraction=hits / count,
            best_pair_gap_pct=mean(gaps) if gaps else 0.0,
        ))
    return MergingAblationSummary(config, tuple(rows),
                                  time.perf_counter() - started)


# ======================================================================
# EXP-O1: offset-assignment substrate (the paper's refs [4, 5])
# ======================================================================
@dataclass(frozen=True)
class OffsetComparisonConfig:
    v_values: tuple[int, ...] = (5, 8, 12, 16)
    length_values: tuple[int, ...] = (20, 40)
    sequences_per_config: int = 25
    locality: float = 0.5
    seed: int = 4242
    #: Exhaustive optimum is included for variable counts up to this.
    optimal_limit: int = 8
    goa_k_values: tuple[int, ...] = (2, 4)


@dataclass(frozen=True)
class OffsetSoaRow:
    n_variables: int
    length: int
    n_sequences: int
    mean_ofu: float
    mean_liao: float
    mean_tiebreak: float
    liao_reduction_pct: float
    tiebreak_reduction_pct: float
    mean_optimal: float | None


@dataclass(frozen=True)
class OffsetGoaRow:
    n_variables: int
    length: int
    k: int
    n_sequences: int
    mean_first_use: float
    mean_greedy: float
    reduction_pct: float


@dataclass(frozen=True)
class OffsetComparisonSummary:
    config: OffsetComparisonConfig
    soa_rows: tuple[OffsetSoaRow, ...]
    goa_rows: tuple[OffsetGoaRow, ...]
    mean_liao_reduction_pct: float
    mean_tiebreak_reduction_pct: float
    elapsed_seconds: float


def run_offset_comparison(
        config: OffsetComparisonConfig | None = None,
) -> OffsetComparisonSummary:
    """EXP-O1: SOA heuristics vs the OFU baseline (and GOA over k ARs).

    Context for the paper's "complementary" citation of refs [4, 5]:
    scalar-variable addressing benefits from the same AGU hardware via
    layout choice rather than register assignment.
    """
    from repro.offset.goa import goa_first_use, goa_greedy
    from repro.offset.sequence import random_sequence
    from repro.offset.soa import (
        assignment_cost,
        liao_soa,
        ofu_assignment,
        optimal_assignment,
        tiebreak_soa,
    )

    if config is None:
        config = OffsetComparisonConfig()
    started = time.perf_counter()
    soa_rows: list[OffsetSoaRow] = []
    goa_rows: list[OffsetGoaRow] = []
    for grid_index, (n_variables, length) in enumerate(
            (v, length) for v in config.v_values
            for length in config.length_values):
        sequences = [
            random_sequence(n_variables, length,
                            seed=config.seed + 1009 * grid_index + index,
                            locality=config.locality)
            for index in range(config.sequences_per_config)
        ]
        ofu_costs, liao_costs, tiebreak_costs = [], [], []
        optimal_costs: list[float] = []
        for sequence in sequences:
            ofu_costs.append(float(assignment_cost(
                ofu_assignment(sequence), sequence)))
            liao_costs.append(float(assignment_cost(
                liao_soa(sequence), sequence)))
            tiebreak_costs.append(float(assignment_cost(
                tiebreak_soa(sequence), sequence)))
            if n_variables <= config.optimal_limit:
                optimal_costs.append(float(assignment_cost(
                    optimal_assignment(sequence), sequence)))
        soa_rows.append(OffsetSoaRow(
            n_variables=n_variables, length=length,
            n_sequences=len(sequences),
            mean_ofu=mean(ofu_costs),
            mean_liao=mean(liao_costs),
            mean_tiebreak=mean(tiebreak_costs),
            liao_reduction_pct=percent_reduction(mean(ofu_costs),
                                                 mean(liao_costs)),
            tiebreak_reduction_pct=percent_reduction(
                mean(ofu_costs), mean(tiebreak_costs)),
            mean_optimal=mean(optimal_costs) if optimal_costs else None,
        ))
        for k in config.goa_k_values:
            first_use_costs = [float(goa_first_use(sequence, k).cost)
                               for sequence in sequences]
            greedy_costs = [float(goa_greedy(sequence, k).cost)
                            for sequence in sequences]
            goa_rows.append(OffsetGoaRow(
                n_variables=n_variables, length=length, k=k,
                n_sequences=len(sequences),
                mean_first_use=mean(first_use_costs),
                mean_greedy=mean(greedy_costs),
                reduction_pct=percent_reduction(mean(first_use_costs),
                                                mean(greedy_costs)),
            ))
    return OffsetComparisonSummary(
        config=config, soa_rows=tuple(soa_rows), goa_rows=tuple(goa_rows),
        mean_liao_reduction_pct=mean(
            [row.liao_reduction_pct for row in soa_rows]),
        mean_tiebreak_reduction_pct=mean(
            [row.tiebreak_reduction_pct for row in soa_rows]),
        elapsed_seconds=time.perf_counter() - started)


# ======================================================================
# EXP-X1: the modify-register extension
# ======================================================================
@dataclass(frozen=True)
class ModRegAblationConfig:
    n_values: tuple[int, ...] = (15, 25)
    k_values: tuple[int, ...] = (2, 3)
    mr_values: tuple[int, ...] = (0, 1, 2, 4)
    modify_range: int = 1
    patterns_per_config: int = 20
    offset_span: int = 10
    seed: int = 90210
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000


@dataclass(frozen=True)
class ModRegAblationRow:
    n: int
    k: int
    n_modify_registers: int
    n_patterns: int
    mean_cost: float
    #: Reduction vs the same config with zero modify registers.
    reduction_vs_no_mr_pct: float


@dataclass(frozen=True)
class ModRegAblationSummary:
    config: ModRegAblationConfig
    rows: tuple[ModRegAblationRow, ...]
    elapsed_seconds: float


def run_modreg_ablation(
        config: ModRegAblationConfig | None = None,
) -> ModRegAblationSummary:
    """EXP-X1: addressing cost vs the number of modify registers.

    Extension experiment (not in the paper): quantifies how much of the
    residual unit-cost addressing an MR file of growing size recovers,
    using exact per-allocation value selection plus iterative
    re-merging (:mod:`repro.modreg`).
    """
    from repro.modreg.refine import allocate_with_modify_registers

    if config is None:
        config = ModRegAblationConfig()
    started = time.perf_counter()
    rows: list[ModRegAblationRow] = []
    allocator_config = AllocatorConfig(
        exact_cover_limit=config.exact_cover_limit,
        cover_node_budget=config.cover_node_budget)

    for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values):
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span),
            config.patterns_per_config,
            seed=config.seed + 1013 * grid_index)
        base_mean: float | None = None
        for n_mrs in config.mr_values:
            spec = AguSpec(k, config.modify_range,
                           f"mr{n_mrs}", n_modify_registers=n_mrs)
            costs = [
                float(allocate_with_modify_registers(
                    pattern, spec, allocator_config).total_cost)
                for pattern in patterns
            ]
            mean_cost = mean(costs)
            if n_mrs == 0:
                base_mean = mean_cost
            reduction = percent_reduction(base_mean, mean_cost) \
                if base_mean is not None else 0.0
            rows.append(ModRegAblationRow(
                n=n, k=k, n_modify_registers=n_mrs,
                n_patterns=len(patterns), mean_cost=mean_cost,
                reduction_vs_no_mr_pct=reduction))
    return ModRegAblationSummary(config, tuple(rows),
                                 time.perf_counter() - started)


# ======================================================================
# EXP-X2: the access-reordering extension
# ======================================================================
@dataclass(frozen=True)
class ReorderAblationConfig:
    n_values: tuple[int, ...] = (8, 12, 16)
    k_values: tuple[int, ...] = (2, 3)
    modify_range: int = 1
    write_fraction: float = 0.4
    patterns_per_config: int = 12
    offset_span: int = 6
    seed: int = 60606


@dataclass(frozen=True)
class ReorderAblationRow:
    n: int
    k: int
    n_patterns: int
    mean_fixed_order: float
    mean_reordered: float
    reduction_pct: float
    #: Fraction of instances where reordering changed the order at all.
    reordered_fraction: float


@dataclass(frozen=True)
class ReorderAblationSummary:
    config: ReorderAblationConfig
    rows: tuple[ReorderAblationRow, ...]
    mean_reduction_pct: float
    elapsed_seconds: float


def run_reorder_ablation(
        config: ReorderAblationConfig | None = None,
) -> ReorderAblationSummary:
    """EXP-X2: what scheduling freedom buys on top of the paper.

    Extension experiment (not in the paper): random patterns with
    writes (so real dependences exist) are allocated with the paper's
    fixed access order and with the reordering extension; the reordered
    cost can never be worse by construction.
    """
    from repro.reorder.search import reorder_accesses

    if config is None:
        config = ReorderAblationConfig()
    started = time.perf_counter()
    rows: list[ReorderAblationRow] = []
    for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values):
        spec = AguSpec(k, config.modify_range)
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span,
                                write_fraction=config.write_fraction),
            config.patterns_per_config,
            seed=config.seed + 211 * grid_index)
        fixed_costs, reordered_costs = [], []
        changed = 0
        for pattern in patterns:
            result = reorder_accesses(pattern, spec)
            fixed_costs.append(float(result.baseline_cost))
            reordered_costs.append(float(result.cost))
            changed += result.is_reordered
        rows.append(ReorderAblationRow(
            n=n, k=k, n_patterns=len(patterns),
            mean_fixed_order=mean(fixed_costs),
            mean_reordered=mean(reordered_costs),
            reduction_pct=percent_reduction(mean(fixed_costs),
                                            mean(reordered_costs)),
            reordered_fraction=changed / len(patterns)))
    return ReorderAblationSummary(
        config, tuple(rows),
        mean_reduction_pct=mean([row.reduction_pct for row in rows]),
        elapsed_seconds=time.perf_counter() - started)


# ======================================================================
# EXP-X3: the array-layout extension
# ======================================================================
@dataclass(frozen=True)
class ArrayLayoutAblationConfig:
    n_values: tuple[int, ...] = (10, 16)
    k_values: tuple[int, ...] = (1, 2)
    n_arrays: int = 3
    #: Short arrays so cross-array folding is geometrically possible.
    array_length: int = 8
    offset_span: int = 6
    modify_range: int = 1
    patterns_per_config: int = 15
    seed: int = 515151


@dataclass(frozen=True)
class ArrayLayoutAblationRow:
    n: int
    k: int
    n_patterns: int
    mean_default: float
    mean_optimized: float
    reduction_pct: float


@dataclass(frozen=True)
class ArrayLayoutAblationSummary:
    config: ArrayLayoutAblationConfig
    rows: tuple[ArrayLayoutAblationRow, ...]
    mean_reduction_pct: float
    elapsed_seconds: float


def run_array_layout_ablation(
        config: ArrayLayoutAblationConfig | None = None,
) -> ArrayLayoutAblationSummary:
    """EXP-X3: what choosing array base addresses buys.

    Extension experiment (ref [1]'s layout angle, not in the paper):
    multi-array random patterns are allocated once; their cost is then
    evaluated under the reference guard-gap layout vs the optimized
    placement of :mod:`repro.arraylayout`.
    """
    from repro.arraylayout.optimize import optimize_layout
    from repro.ir.types import ArrayDecl

    if config is None:
        config = ArrayLayoutAblationConfig()
    started = time.perf_counter()
    rows: list[ArrayLayoutAblationRow] = []
    for grid_index, (n, k) in enumerate(
            (n, k) for n in config.n_values for k in config.k_values):
        spec = AguSpec(k, config.modify_range)
        allocator = AddressRegisterAllocator(spec)
        patterns = generate_batch(
            RandomPatternConfig(n, offset_span=config.offset_span,
                                n_arrays=config.n_arrays),
            config.patterns_per_config,
            seed=config.seed + 307 * grid_index)
        defaults, optimizeds = [], []
        for pattern in patterns:
            allocation = allocator.allocate(pattern)
            decls = [ArrayDecl(name, length=config.array_length)
                     for name in pattern.arrays()]
            plan = optimize_layout(pattern, allocation.cover, decls,
                                   config.modify_range)
            defaults.append(float(plan.baseline_cost))
            optimizeds.append(float(plan.cost))
        rows.append(ArrayLayoutAblationRow(
            n=n, k=k, n_patterns=len(patterns),
            mean_default=mean(defaults),
            mean_optimized=mean(optimizeds),
            reduction_pct=percent_reduction(mean(defaults),
                                            mean(optimizeds))))
    return ArrayLayoutAblationSummary(
        config, tuple(rows),
        mean_reduction_pct=mean([row.reduction_pct for row in rows]),
        elapsed_seconds=time.perf_counter() - started)


# ======================================================================
# EXP-S3: distribution sensitivity of the headline claim
# ======================================================================
@dataclass(frozen=True)
class DistributionSensitivityConfig:
    distributions: tuple[str, ...] = ("uniform", "clustered", "sweep",
                                      "mixed")
    #: Base grid, scaled down per distribution to keep runtime bounded.
    n_values: tuple[int, ...] = (15, 30)
    m_values: tuple[int, ...] = (1, 2)
    k_values: tuple[int, ...] = (2, 3)
    patterns_per_config: int = 20
    seed: int = 271828


@dataclass(frozen=True)
class DistributionSensitivityRow:
    distribution: str
    average_reduction_pct: float
    overall_reduction_pct: float
    mean_optimized: float
    mean_naive: float


@dataclass(frozen=True)
class DistributionSensitivitySummary:
    config: DistributionSensitivityConfig
    rows: tuple[DistributionSensitivityRow, ...]
    elapsed_seconds: float


def run_distribution_sensitivity(
        config: DistributionSensitivityConfig | None = None,
) -> DistributionSensitivitySummary:
    """EXP-S3: is the ≈40 % claim an artifact of one offset shape?

    Repeats EXP-S1 under every offset distribution of the random
    generator.  The paper does not specify its distribution; a robust
    reproduction should win under all of them.
    """
    if config is None:
        config = DistributionSensitivityConfig()
    started = time.perf_counter()
    rows: list[DistributionSensitivityRow] = []
    for distribution in config.distributions:
        summary = run_statistical_comparison(StatisticalConfig(
            n_values=config.n_values, m_values=config.m_values,
            k_values=config.k_values,
            patterns_per_config=config.patterns_per_config,
            distribution=distribution, seed=config.seed))
        rows.append(DistributionSensitivityRow(
            distribution=distribution,
            average_reduction_pct=summary.average_reduction_pct,
            overall_reduction_pct=summary.overall_reduction_pct,
            mean_optimized=mean([row.mean_optimized
                                 for row in summary.rows]),
            mean_naive=mean([row.mean_naive for row in summary.rows]),
        ))
    return DistributionSensitivitySummary(
        config, tuple(rows), time.perf_counter() - started)


def quick_statistical_config() -> StatisticalConfig:
    """A scaled-down EXP-S1 grid for smoke tests and CI."""
    return StatisticalConfig(
        n_values=(10, 20), m_values=(1, 2), k_values=(2, 3),
        patterns_per_config=8, naive_repeats=3)
