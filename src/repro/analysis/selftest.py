"""End-to-end self-test: the library audits itself on random instances.

For each random instance the self-test runs the full chain

    allocate -> generate code -> simulate -> verify every address

and cross-checks all cost accountings (model vs static codegen count vs
dynamic simulator count), plus the phase-1 bound bracket
``LB <= K~ <= UB``.  Any violation raises immediately; the report
summarizes what was covered.  Exposed on the CLI as
``repro-agu selftest``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.agu.codegen import generate_address_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.errors import ReproError
from repro.graph.access_graph import AccessGraph
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl, Loop
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_pattern,
)


@dataclass(frozen=True)
class SelfTestReport:
    """What the self-test covered (it raises on any failure)."""

    n_instances: int
    n_accesses_verified: int
    n_unit_cost_instructions: int
    n_zero_cost_allocations: int
    n_constrained_allocations: int
    elapsed_seconds: float

    def summary(self) -> str:
        """One-line account of the instances and addresses audited."""
        return (
            f"self-test passed: {self.n_instances} instances, "
            f"{self.n_accesses_verified} addresses verified, "
            f"{self.n_unit_cost_instructions} unit-cost instructions "
            f"accounted, {self.n_constrained_allocations} constrained / "
            f"{self.n_zero_cost_allocations} free allocations "
            f"({self.elapsed_seconds:.1f} s)")


def run_self_test(n_instances: int = 100, seed: int = 0,
                  iterations_per_instance: int = 8) -> SelfTestReport:
    """Run the audit chain on ``n_instances`` random instances.

    Raises
    ------
    ReproError
        (or a subclass) on the first inconsistency found -- an address
        mismatch, a cost-accounting disagreement, or a bound violation.
    """
    if n_instances < 0:
        raise ReproError(f"n_instances must be >= 0, got {n_instances}")
    rng = random.Random(seed)
    started = time.perf_counter()

    verified = 0
    accounted = 0
    free_allocations = 0
    constrained = 0
    for index in range(n_instances):
        n = rng.randint(1, 24)
        k = rng.randint(1, 4)
        m = rng.choice([1, 1, 2, 4])
        n_arrays = rng.choice([1, 1, 1, 2])
        pattern = generate_pattern(
            RandomPatternConfig(n, offset_span=rng.choice([4, 8, 12]),
                                distribution=rng.choice(
                                    ["uniform", "clustered", "sweep"]),
                                n_arrays=n_arrays,
                                write_fraction=rng.choice([0.0, 0.3])),
            seed=rng.randrange(2 ** 30))
        spec = AguSpec(k, m)
        allocator = AddressRegisterAllocator(spec, AllocatorConfig(
            cover_node_budget=20_000))
        result = allocator.allocate(pattern)

        # Bound bracket (when phase 1 ran to a zero-cost cover).
        if result.k_tilde is not None:
            graph = AccessGraph(pattern, m)
            lower = intra_cover_lower_bound(graph)
            upper = greedy_zero_cost_cover(graph).n_paths
            if not lower <= result.k_tilde <= upper:
                raise ReproError(
                    f"instance {index}: bound violation "
                    f"{lower} <= {result.k_tilde} <= {upper}")

        program = generate_address_code(pattern, result.cover, spec)
        if program.overhead_per_iteration != result.total_cost and \
                result.cost_model.value == "steady_state":
            raise ReproError(
                f"instance {index}: static overhead "
                f"{program.overhead_per_iteration} != allocation cost "
                f"{result.total_cost}")

        layout = MemoryLayout.contiguous(
            [ArrayDecl(name, length=64) for name in pattern.arrays()],
            origin=64, gap=m + 1)
        loop = Loop(pattern, start=0,
                    n_iterations=iterations_per_instance)
        simulation = simulate(program, loop, layout)

        verified += simulation.n_accesses_verified
        accounted += simulation.loop_overhead_instructions
        if result.is_zero_cost:
            free_allocations += 1
        else:
            constrained += 1

    return SelfTestReport(
        n_instances=n_instances,
        n_accesses_verified=verified,
        n_unit_cost_instructions=accounted,
        n_zero_cost_allocations=free_allocations,
        n_constrained_allocations=constrained,
        elapsed_seconds=time.perf_counter() - started)
