"""Small statistics helpers used by the experiment harness.

Pure Python on purpose: the quantities here (means over dozens to
hundreds of samples) gain nothing from vectorization, and keeping the
harness dependency-free makes its arithmetic easy to audit.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ExperimentError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; errors on empty input (no silent NaN)."""
    if not values:
        raise ExperimentError("mean of an empty sample")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n < 2."""
    if not values:
        raise ExperimentError("stdev of an empty sample")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values)
                     / (len(values) - 1))


def confidence_interval95(values: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95 % confidence interval of the mean."""
    centre = mean(values)
    if len(values) == 1:
        return (centre, centre)
    half = 1.96 * stdev(values) / math.sqrt(len(values))
    return (centre - half, centre + half)


def percent_reduction(baseline: float, improved: float) -> float:
    """``100 * (1 - improved/baseline)``; 0.0 when the baseline is 0.

    A zero baseline means both allocations are already free, so there
    is nothing to reduce -- reporting 0 keeps averages meaningful.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)


def weighted_overall_reduction(baselines: Sequence[float],
                               improveds: Sequence[float]) -> float:
    """Reduction of the summed cost (weights heavy instances more)."""
    if len(baselines) != len(improveds):
        raise ExperimentError(
            f"length mismatch: {len(baselines)} baselines vs "
            f"{len(improveds)} improved values")
    return percent_reduction(sum(baselines), sum(improveds))
