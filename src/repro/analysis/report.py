"""One-shot Markdown report over all experiments.

``generate_report()`` runs every experiment of the harness (optionally
with scaled-down grids) and produces a single self-contained Markdown
document mirroring EXPERIMENTS.md's structure with freshly measured
numbers -- the release artifact a reviewer would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import render
from repro.analysis.experiments import (
    CostModelAblationConfig,
    KernelComparisonConfig,
    MergingAblationConfig,
    ModRegAblationConfig,
    OffsetComparisonConfig,
    PathCoverAblationConfig,
    ReorderAblationConfig,
    StatisticalConfig,
    quick_statistical_config,
    run_cost_model_ablation,
    run_kernel_comparison,
    run_merging_ablation,
    run_modreg_ablation,
    run_offset_comparison,
    run_path_cover_ablation,
    run_reorder_ablation,
    run_statistical_comparison,
)


@dataclass(frozen=True)
class ReportConfig:
    """Which grids the report runs (full by default)."""

    quick: bool = False
    title: str = ("Reproduction report: Register-Constrained Address "
                  "Computation in DSP Programs (DATE 1998)")
    include: tuple[str, ...] = field(
        default=("s1", "s2", "k1", "a1", "a2", "a3", "o1", "x1", "x2"))


def _code_block(text: str) -> str:
    return "```\n" + text.rstrip("\n") + "\n```\n"


def generate_report(config: ReportConfig | None = None) -> str:
    """Run the experiments and return the Markdown report text."""
    if config is None:
        config = ReportConfig()
    sections: list[str] = [f"# {config.title}\n"]

    def wanted(key: str) -> bool:
        return key in config.include

    if wanted("s1") or wanted("s2"):
        stats_config = quick_statistical_config() if config.quick \
            else StatisticalConfig()
        summary = run_statistical_comparison(stats_config)
        if wanted("s1"):
            sections.append("## EXP-S1 — statistical comparison "
                            "(paper: ≈40 % average reduction)\n")
            sections.append(_code_block(
                render.statistical_table(summary).render()))
            sections.append(
                f"**Measured**: average reduction "
                f"{summary.average_reduction_pct:.1f} %, overall "
                f"{summary.overall_reduction_pct:.1f} % "
                f"({summary.elapsed_seconds:.1f} s).\n")
        if wanted("s2"):
            sections.append("## EXP-S2 — parameter marginals\n")
            for axis in ("n", "m", "k"):
                sections.append(_code_block(
                    render.statistical_marginal_table(summary,
                                                      axis).render()))

    if wanted("k1"):
        summary = run_kernel_comparison(KernelComparisonConfig())
        sections.append("## EXP-K1 — DSP kernels vs naive compiler "
                        "(paper cites up to 30 %/60 %)\n")
        sections.append(_code_block(render.kernel_table(summary).render()))
        sections.append(
            f"**Measured**: mean overhead reduction "
            f"{summary.mean_overhead_reduction_pct:.1f} %, mean speed "
            f"improvement {summary.mean_speed_improvement_pct:.1f} %.\n")

    if wanted("a1"):
        summary = run_path_cover_ablation(PathCoverAblationConfig())
        sections.append("## EXP-A1 — phase-1 bounds vs exact search\n")
        sections.append(_code_block(
            render.path_cover_table(summary).render()))

    if wanted("a2"):
        summary = run_cost_model_ablation(CostModelAblationConfig())
        sections.append("## EXP-A2 — cost-model ablation\n")
        sections.append(_code_block(
            render.cost_model_table(summary).render()))
        sections.append(f"**Measured**: wrap-aware merging saves "
                        f"{summary.mean_penalty_pct:.1f} % on average.\n")

    if wanted("a3"):
        summary = run_merging_ablation(MergingAblationConfig())
        sections.append("## EXP-A3 — merging strategies vs optimum\n")
        sections.append(_code_block(render.merging_table(summary).render()))

    if wanted("o1"):
        summary = run_offset_comparison(OffsetComparisonConfig())
        sections.append("## EXP-O1 — offset-assignment substrate\n")
        sections.append(_code_block(
            render.offset_soa_table(summary).render()))
        sections.append(_code_block(
            render.offset_goa_table(summary).render()))

    if wanted("x1"):
        summary = run_modreg_ablation(ModRegAblationConfig())
        sections.append("## EXP-X1 — modify-register extension\n")
        sections.append(_code_block(render.modreg_table(summary).render()))

    if wanted("x2"):
        summary = run_reorder_ablation(ReorderAblationConfig())
        sections.append("## EXP-X2 — access-reordering extension\n")
        sections.append(_code_block(render.reorder_table(summary).render()))
        sections.append(f"**Measured**: mean reduction "
                        f"{summary.mean_reduction_pct:.1f} %.\n")

    return "\n".join(sections)


def save_report_markdown(path: str | Path,
                         config: ReportConfig | None = None) -> Path:
    """Generate the report and write it to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(generate_report(config), encoding="utf-8")
    return target
