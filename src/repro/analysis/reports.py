"""JSON persistence for experiment results.

Experiment summaries are nested frozen dataclasses; :func:`to_jsonable`
lowers them (plus enums, tuples, paths) to plain JSON types so runs can
be archived under ``results/`` and compared across revisions.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError


def to_jsonable(value: Any) -> Any:
    """Recursively lower dataclasses/enums/tuples to JSON-able types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Objects with a sensible str() (e.g. Path covers) degrade to text.
    return str(value)


def save_report(payload: Any, path: str | Path) -> Path:
    """Write a JSON report; parent directories are created."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_report(path: str | Path) -> Any:
    """Read back a JSON report written by :func:`save_report`."""
    target = Path(path)
    if not target.exists():
        raise ExperimentError(f"no report at {target}")
    with open(target, encoding="utf-8") as handle:
        return json.load(handle)
