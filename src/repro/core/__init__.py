"""The paper's two-phase allocator and the end-to-end pipeline.

This is the library's primary public API:

* :class:`~repro.core.allocator.AddressRegisterAllocator` -- phase 1
  (minimum zero-cost cover, ``K~``) + phase 2 (best-pair merging down to
  ``K`` registers), with the naive baseline alongside.
* :func:`~repro.core.pipeline.compile_kernel` -- source text (or a
  parsed kernel) to verified AGU address code in one call.
"""

from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.core.pipeline import CompilationArtifacts, compile_kernel
from repro.core.result import AllocationResult

__all__ = [
    "AddressRegisterAllocator",
    "AllocationResult",
    "AllocatorConfig",
    "CompilationArtifacts",
    "compile_kernel",
]
