"""End-to-end pipeline: kernel source to verified AGU address code."""

from __future__ import annotations

from dataclasses import dataclass

from repro.agu.codegen import AddressProgram, generate_address_code
from repro.agu.listing import program_listing
from repro.agu.model import AguSpec
from repro.agu.simulator import SimulationResult, simulate
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.core.result import AllocationResult
from repro.ir.layout import MemoryLayout
from repro.ir.parser import parse_kernel
from repro.ir.types import Kernel

#: Iterations simulated when the loop bound is symbolic.
DEFAULT_SIMULATION_ITERATIONS = 16


@dataclass(frozen=True)
class CompilationArtifacts:
    """Everything produced by :func:`compile_kernel`."""

    kernel: Kernel
    allocation: AllocationResult
    program: AddressProgram
    layout: MemoryLayout
    listing: str
    simulation: SimulationResult | None

    @property
    def overhead_per_iteration(self) -> int:
        """Static addressing overhead of the generated program, per
        iteration."""
        return self.program.overhead_per_iteration


def compile_kernel(kernel: Kernel | str, spec: AguSpec,
                   config: AllocatorConfig | None = None,
                   run_simulation: bool = True,
                   n_iterations: int | None = None,
                   optimize_array_layout: bool = False,
                   name: str = "kernel") -> CompilationArtifacts:
    """Parse (if needed), allocate, generate code, and verify a kernel.

    Parameters
    ----------
    kernel:
        A parsed :class:`~repro.ir.types.Kernel` or source text for the
        C-like frontend.
    spec:
        The target AGU.
    run_simulation:
        Verify the generated code by simulation (on by default; the
        simulation also audits that dynamic cost equals modelled cost).
    n_iterations:
        Iterations to simulate; defaults to the loop's own count, or
        :data:`DEFAULT_SIMULATION_ITERATIONS` for symbolic bounds.
    optimize_array_layout:
        Enable the array-layout extension: choose array bases so that
        frequent cross-array register transitions become free, and emit
        layout-aware code (see :mod:`repro.arraylayout`).
    """
    if isinstance(kernel, str):
        kernel = parse_kernel(kernel, name=name)

    allocator = AddressRegisterAllocator(spec, config)
    allocation = allocator.allocate(kernel)
    if optimize_array_layout:
        from repro.arraylayout.optimize import optimize_layout
        plan = optimize_layout(kernel.pattern, allocation.cover,
                               kernel.arrays, spec.modify_range,
                               model=allocator.config.cost_model)
        layout = plan.layout
        program = generate_address_code(kernel.pattern, allocation.cover,
                                        spec, layout=layout)
    else:
        # A guard gap beyond the modify range keeps distinct arrays
        # outside each other's auto-modify reach, matching the cost
        # model's "other array is never free" assumption in simulated
        # address space too.
        layout = MemoryLayout.for_kernel(kernel, gap=spec.modify_range + 1)
        program = generate_address_code(kernel.pattern, allocation.cover,
                                        spec)
    listing = program_listing(program, title=kernel.name)

    simulation = None
    if run_simulation:
        count = n_iterations
        if count is None and kernel.loop.n_iterations is None:
            count = DEFAULT_SIMULATION_ITERATIONS
        simulation = simulate(program, kernel.loop, layout,
                              n_iterations=count)
    return CompilationArtifacts(kernel, allocation, program, layout,
                                listing, simulation)
