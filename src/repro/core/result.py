"""Allocation results: what the two-phase allocator hands back."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agu.model import AguSpec
from repro.ir.types import AccessPattern
from repro.merging.cost import CostModel
from repro.merging.greedy import MergeStep
from repro.pathcover.paths import PathCover


@dataclass(frozen=True)
class AllocationResult:
    """A finished address-register allocation.

    Attributes
    ----------
    pattern, spec:
        The problem instance.
    cover:
        Final allocation: one path per used address register.
    total_cost:
        Unit-cost address computations per loop iteration under
        ``cost_model`` (0 means fully free addressing).
    cost_model:
        The cost model the total was computed under.
    k_tilde:
        Phase-1 minimum number of virtual registers, when phase 1 found
        a zero-cost cover (``None`` when it was skipped or infeasible).
    phase1_feasible:
        False when no zero-cost cover exists (modify range smaller than
        an access's per-iteration step) and the allocator fell back to
        the minimum intra-iteration cover.
    phase1_optimal:
        Whether ``k_tilde`` was proven minimal (False under greedy
        fallback or budget exhaustion; meaningless when infeasible).
    merge_steps:
        The phase-2 merges, in order.
    strategy:
        ``"best_pair"`` for the paper's heuristic, ``"naive/..."`` for
        baselines, ``"none"`` when no merging was needed.
    """

    pattern: AccessPattern
    spec: AguSpec
    cover: PathCover
    total_cost: int
    cost_model: CostModel
    k_tilde: int | None
    phase1_feasible: bool
    phase1_optimal: bool
    merge_steps: tuple[MergeStep, ...] = field(default=())
    strategy: str = "best_pair"

    @property
    def n_registers_used(self) -> int:
        """Distinct address registers the allocation actually uses."""
        return self.cover.n_paths

    @property
    def is_zero_cost(self) -> bool:
        """True when every address computation rides along for free."""
        return self.total_cost == 0

    def register_of(self, position: int) -> int:
        """Address register serving the access at ``position``."""
        return self.cover.assignment()[position]

    def summary(self) -> str:
        """Multi-line human-readable account of the allocation."""
        lines = [
            f"allocation of {len(self.pattern)} accesses on {self.spec}",
            f"  strategy:        {self.strategy}",
            f"  cost model:      {self.cost_model.value}",
        ]
        if self.k_tilde is not None:
            proof = "exact" if self.phase1_optimal else "heuristic"
            lines.append(f"  K~ (virtual):    {self.k_tilde} ({proof})")
        elif not self.phase1_feasible:
            lines.append("  K~ (virtual):    infeasible (M < step); "
                         "intra-cover fallback")
        lines.append(f"  registers used:  {self.n_registers_used}")
        lines.append(f"  unit-cost/iter:  {self.total_cost}")
        for index, path in enumerate(self.cover):
            accesses = ", ".join(
                f"{self.pattern.label(position)}" for position in path)
            lines.append(f"    AR{index}: {accesses}")
        if self.merge_steps:
            lines.append(f"  merges performed: {len(self.merge_steps)}")
            for step in self.merge_steps:
                lines.append(f"    {step}")
        return "\n".join(lines)
