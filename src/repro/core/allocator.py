"""The paper's two-phase address-register allocator (section 3).

Phase 1 computes the minimum number ``K~`` of virtual registers with a
zero-cost addressing scheme (exact branch-and-bound, or the greedy cover
beyond a size limit).  If ``K~`` exceeds the physical register count
``K``, phase 2 repeatedly merges the pair of paths with the cheapest
merged cost until ``K`` paths remain.

The naive baseline of the paper's Results section -- identical phase 1,
arbitrary merging in phase 2 -- is available as
:meth:`AddressRegisterAllocator.allocate_naive`.
"""

from __future__ import annotations

from repro.agu.model import AguSpec
from repro.core.config import AllocatorConfig
from repro.core.result import AllocationResult
from repro.errors import InfeasibleZeroCostCover, SearchBudgetExceeded
from repro.graph.access_graph import cached_access_graph
from repro.ir.types import AccessPattern, Kernel, Loop
from repro.merging.cost import CostModel, cover_cost
from repro.merging.greedy import best_pair_merge
from repro.merging.naive import naive_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import min_intra_path_cover
from repro.pathcover.paths import PathCover

ProblemInput = AccessPattern | Loop | Kernel


def _coerce_pattern(problem: ProblemInput) -> AccessPattern:
    if isinstance(problem, Kernel):
        return problem.loop.pattern
    if isinstance(problem, Loop):
        return problem.pattern
    return problem


class AddressRegisterAllocator:
    """Two-phase allocator for a fixed AGU specification."""

    def __init__(self, spec: AguSpec,
                 config: AllocatorConfig | None = None):
        self.spec = spec
        self.config = config if config is not None else AllocatorConfig()

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def initial_cover(self, pattern: AccessPattern,
                      ) -> tuple[PathCover, int | None, bool, bool]:
        """The starting path set for phase 2.

        Returns ``(cover, k_tilde, feasible, optimal)``:

        * normally a zero-cost cover with ``k_tilde = len(cover)``;
        * the greedy cover (``optimal=False``) above the exact-search
          size limit;
        * the minimum intra-iteration cover with ``k_tilde=None,
          feasible=False`` when no zero-cost cover exists.
        """
        n = len(pattern)
        modify_range = self.spec.modify_range
        if n == 0:
            return PathCover((), 0), 0, True, True

        group_sizes: dict[tuple[str, int], int] = {}
        for access in pattern:
            key = access.group_key
            group_sizes[key] = group_sizes.get(key, 0) + 1
        largest_group = max(group_sizes.values())

        if largest_group <= self.config.exact_cover_limit:
            try:
                outcome = minimum_zero_cost_cover(
                    pattern, modify_range,
                    node_budget=self.config.cover_node_budget)
                return (outcome.cover, outcome.k_tilde, True,
                        outcome.optimal)
            except (InfeasibleZeroCostCover, SearchBudgetExceeded):
                pass  # fall through to the fallbacks below
        else:
            try:
                cover = greedy_zero_cost_cover(
                    cached_access_graph(pattern, modify_range))
                return cover, cover.n_paths, True, False
            except InfeasibleZeroCostCover:
                pass

        # No zero-cost cover exists (or could be found): start from the
        # exact minimum intra-iteration cover, whose wrap-around costs
        # the final cost model will charge.
        fallback = min_intra_path_cover(
            cached_access_graph(pattern, modify_range))
        return fallback, None, False, False

    # ------------------------------------------------------------------
    # Full allocations
    # ------------------------------------------------------------------
    def allocate(self, problem: ProblemInput) -> AllocationResult:
        """The paper's algorithm: phase 1 + best-pair merging."""
        pattern = _coerce_pattern(problem)
        cover, k_tilde, feasible, optimal = self.initial_cover(pattern)
        return self._finish(pattern, cover, k_tilde, feasible, optimal,
                            naive=False, strategy=None, seed=None)

    def allocate_naive(self, problem: ProblemInput,
                       strategy: str | None = None,
                       seed: int | None = None) -> AllocationResult:
        """The Results-section baseline: phase 1 + arbitrary merging."""
        pattern = _coerce_pattern(problem)
        cover, k_tilde, feasible, optimal = self.initial_cover(pattern)
        if strategy is None:
            strategy = self.config.naive_strategy
        if seed is None:
            seed = self.config.naive_seed
        return self._finish(pattern, cover, k_tilde, feasible, optimal,
                            naive=True, strategy=strategy, seed=seed)

    def _finish(self, pattern: AccessPattern, cover: PathCover,
                k_tilde: int | None, feasible: bool, optimal: bool,
                naive: bool, strategy: str | None,
                seed: int | None) -> AllocationResult:
        model: CostModel = self.config.cost_model
        modify_range = self.spec.modify_range

        if cover.n_paths <= self.spec.n_registers:
            total = cover_cost(cover, pattern, modify_range, model)
            return AllocationResult(
                pattern=pattern, spec=self.spec, cover=cover,
                total_cost=total, cost_model=model, k_tilde=k_tilde,
                phase1_feasible=feasible, phase1_optimal=optimal,
                merge_steps=(), strategy="none")

        if naive:
            assert strategy is not None
            merged = naive_merge(cover, self.spec.n_registers, pattern,
                                 modify_range, model, strategy=strategy,
                                 seed=seed)
        else:
            merged = best_pair_merge(cover, self.spec.n_registers, pattern,
                                     modify_range, model)
        return AllocationResult(
            pattern=pattern, spec=self.spec, cover=merged.cover,
            total_cost=merged.total_cost, cost_model=model,
            k_tilde=k_tilde, phase1_feasible=feasible,
            phase1_optimal=optimal, merge_steps=merged.steps,
            strategy=merged.strategy)
