"""Configuration of the two-phase allocator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.merging.cost import CostModel
from repro.merging.naive import NAIVE_STRATEGIES
from repro.pathcover.branch_and_bound import DEFAULT_NODE_BUDGET


@dataclass(frozen=True)
class AllocatorConfig:
    """Tunables of :class:`~repro.core.allocator.AddressRegisterAllocator`.

    Attributes
    ----------
    cost_model:
        Which transitions are charged (see
        :class:`~repro.merging.cost.CostModel`); the steady-state model
        is the default because it is what generated code pays.
    exact_cover_limit:
        Largest per-group access count for which phase 1 runs the exact
        branch-and-bound; bigger groups use the greedy cover (the
        paper's procedure is likewise budgeted -- a "fast" search).
    cover_node_budget:
        Node budget per branch-and-bound subproblem.
    naive_strategy, naive_seed:
        Defaults for the naive-baseline allocator (section 4's
        comparison point).
    """

    cost_model: CostModel = CostModel.STEADY_STATE
    exact_cover_limit: int = 40
    cover_node_budget: int = DEFAULT_NODE_BUDGET
    naive_strategy: str = "random"
    naive_seed: int | None = 0

    def __post_init__(self) -> None:
        if self.exact_cover_limit < 0:
            raise AllocationError(
                f"exact_cover_limit must be >= 0, got "
                f"{self.exact_cover_limit}")
        if self.cover_node_budget < 1:
            raise AllocationError(
                f"cover_node_budget must be >= 1, got "
                f"{self.cover_node_budget}")
        if self.naive_strategy not in NAIVE_STRATEGIES:
            raise AllocationError(
                f"unknown naive strategy {self.naive_strategy!r}; "
                f"available: {sorted(NAIVE_STRATEGIES)}")
