"""A remote result-cache service for the batch engine.

The sharded directory store covers shared-*filesystem* deployments;
this module covers everything else: :class:`CacheServer` exposes any
:class:`~repro.batch.cache.CacheBackend` over TCP, and
:class:`RemoteCache` is the matching client-side backend, so any number
of :class:`~repro.batch.engine.BatchCompiler` runs -- across processes
or across hosts -- share one result store and stop recompiling each
other's points.  ``open_cache("tcp://host:port")`` returns a client;
the ``repro-agu cache-serve`` subcommand runs a server in front of any
existing store spec.

Wire protocol (stdlib-only, deliberately boring): every message is one
*frame* -- a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests carry an
``op`` (``ping``, ``get``, ``get_many``, ``put``, ``put_many``,
``stats``); responses carry ``ok`` plus op-specific fields, or
``ok: false`` with an ``error`` string.  One connection serves any number of frames back
to back, which is what makes per-result streaming puts cheap.

Failure philosophy: the cache is an optimization, so the *client*
never lets the network fail a batch.  A dead or unreachable server
degrades to miss-and-log -- ``get`` returns ``None`` (counted as a
miss), ``put`` becomes a no-op -- and the client re-probes after
``retry_interval`` seconds so a recovered server picks the run back
up.  The *server*, in turn, answers malformed requests with error
frames instead of dropping the connection, and a handler crash is
confined to its own response.
"""

from __future__ import annotations

import json
import logging
import socket
import socketserver
import struct
import threading
import time

from repro.batch.cache import CacheStats
from repro.errors import BatchError

_LOGGER = logging.getLogger("repro.batch.service")

#: Frame header: one 4-byte big-endian unsigned length.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame's JSON body.  Far above any real payload
#: batch (entries are small per-point summaries); its real job is to
#: reject garbage -- a stray non-protocol client would otherwise be
#: read as a multi-gigabyte "frame".
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameTooLargeError(BatchError):
    """A frame we were about to *send* exceeds :data:`MAX_FRAME_BYTES`.

    Raised by :func:`send_frame` before any bytes hit the socket, so
    the connection stays in protocol sync -- which is why the client
    treats it as "drop this store", never as a transport failure that
    would degrade a perfectly healthy server.
    """


def _close_socket(sock: socket.socket) -> None:
    """Hard-close both directions, ignoring already-dead sockets."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def format_endpoint(host: str, port: int) -> str:
    """``host``/``port`` as a ``tcp://`` spec, bracketing IPv6 hosts
    so the result feeds straight back into ``open_cache`` /
    ``open_executor``."""
    if ":" in host:
        return f"tcp://[{host}]:{port}"
    return f"tcp://{host}:{port}"


def parse_endpoint(text: str, options: dict | None = None,
                   ) -> tuple[str, int, dict]:
    """Split a ``tcp://HOST:PORT[?opts]`` spec into host, port, and
    converted options.

    The shared grammar of every TCP spec in the batch layer: cache
    clients (``open_cache``), executor clients (``open_executor``),
    and the ``worker`` / ``job-serve`` CLI arguments.  ``options``
    maps allowed ``?key=value`` names to converters; unknown keys,
    unparsable values, and any URL decoration beyond host/port/query
    are rejected loudly.
    """
    from urllib.parse import parse_qsl, urlsplit

    known = options or {}
    expected = (f"expected tcp://HOST:PORT"
                f"[?{'&'.join(sorted(known))}]" if known
                else "expected tcp://HOST:PORT")
    try:
        parts = urlsplit(text)
        port = parts.port
    except ValueError as error:
        raise BatchError(
            f"invalid endpoint spec {text!r} ({error}); "
            f"{expected}") from error
    if parts.scheme != "tcp" or port is None or parts.path \
            or parts.fragment or parts.username is not None:
        raise BatchError(
            f"invalid endpoint spec {text!r}; {expected}")
    try:
        pairs = parse_qsl(parts.query, keep_blank_values=True,
                          strict_parsing=True) if parts.query else []
    except ValueError as error:
        raise BatchError(
            f"invalid options in endpoint spec {text!r}; "
            f"{expected}") from error
    converted: dict = {}
    for key, value in pairs:
        convert = known.get(key)
        if convert is None:
            raise BatchError(
                f"unknown option {key!r} in endpoint spec {text!r} "
                f"(known: {', '.join(sorted(known)) or 'none'})")
        try:
            converted[key] = convert(value)
        except ValueError as error:
            raise BatchError(
                f"invalid value for {key!r} in endpoint spec "
                f"{text!r}") from error
    return parts.hostname or "127.0.0.1", port, converted


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Exactly ``count`` bytes from ``sock``, or ``None`` on EOF."""
    data = bytearray()
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            return None
        data.extend(chunk)
    return bytes(data)


def send_frame(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON frame."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"cache protocol frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF between frames.

    EOF in the middle of a frame, an oversized length, or a body that
    is not a JSON object all raise :class:`BatchError` -- a peer that
    stops speaking the protocol must not be silently reinterpreted.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BatchError(
            f"cache protocol frame announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit")
    body = _recv_exact(sock, length)
    if body is None:
        raise BatchError("connection closed mid-frame")
    try:
        message = json.loads(body.decode("utf-8"))
    except ValueError as error:
        raise BatchError(
            f"undecodable cache protocol frame: {error}") from error
    if not isinstance(message, dict):
        raise BatchError(
            f"cache protocol frame must be a JSON object, got "
            f"{type(message).__name__}")
    return message


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class _CacheRequestHandler(socketserver.BaseRequestHandler):
    """One connection: frames in, frames out, until the client hangs up."""

    def handle(self) -> None:
        server: CacheServer = self.server.cache_server  # type: ignore
        server.track_connection(self.request, alive=True)
        if server.idle_timeout is not None:
            # A stalled or half-open client must not pin this thread
            # forever: the blocking recv below raises TimeoutError (an
            # OSError) after idle_timeout seconds and the connection
            # closes cleanly.  Well-behaved clients reconnect
            # transparently (RemoteCache retries once on a fresh
            # connection before degrading).
            self.request.settimeout(server.idle_timeout)
        try:
            while True:
                try:
                    request = recv_frame(self.request)
                except (BatchError, OSError):
                    return
                if request is None:
                    return
                try:
                    response = server.handle_request(request)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the error goes back to the client as an error frame, keeping the connection alive
                except Exception as error:
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}"}
                try:
                    send_frame(self.request, response)
                except FrameTooLargeError as error:
                    # The *response* outgrew a frame (a get_many over
                    # huge payloads): answer with an error frame so
                    # the client sees a miss on a live connection, not
                    # a dropped one it would misread as a dead server.
                    try:
                        send_frame(self.request,
                                   {"ok": False, "error": str(error)})
                    except (BatchError, OSError):
                        return
                except (BatchError, OSError):
                    return
        finally:
            server.track_connection(self.request, alive=False)


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _TcpServer6(_TcpServer):
    address_family = socket.AF_INET6


class CacheServer:
    """Serve one :class:`~repro.batch.cache.CacheBackend` over TCP.

    Parameters
    ----------
    store:
        The backing store (any backend ``open_cache`` can produce
        except another remote).  Access is serialized with a lock, so
        backends without their own thread safety are fine.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` / :attr:`endpoint` for the bound one).
    readonly:
        Reject ``put``/``put_many`` with a flagged error response
        (clients notice the flag and stop sending stores), and turn
        off the backing store's own corrupt-entry discard -- a
        read-only server must never write to its store, not even to
        clean up.
    idle_timeout:
        Seconds a connection may sit idle between frames before the
        server closes it (``None`` disables the timeout).  Stalled or
        half-open clients would otherwise pin a handler thread forever
        and wedge graceful shutdown; well-behaved clients that went
        quiet simply reconnect on their next request.

    Run blocking with :meth:`serve_forever` (the CLI does) or on a
    background thread via :meth:`start` / the context-manager form
    (tests and in-process sharing do).
    """

    def __init__(self, store, host: str = "127.0.0.1", port: int = 0, *,
                 readonly: bool = False,
                 idle_timeout: float | None = 300.0):
        if isinstance(store, RemoteCache):
            raise BatchError(
                "a cache server cannot front another remote cache")
        if idle_timeout is not None and not idle_timeout > 0:
            raise BatchError(
                f"idle_timeout must be > 0 seconds or None, got "
                f"{idle_timeout}")
        self.store = store
        self.readonly = readonly
        self.idle_timeout = idle_timeout
        self._lock = threading.Lock()
        # A colon in the host is an IPv6 literal (e.g. "::1"), which
        # needs an AF_INET6 listening socket.
        server_class = _TcpServer6 if ":" in host else _TcpServer
        self._server = server_class((host, port), _CacheRequestHandler)
        self._server.cache_server = self  # type: ignore[attr-defined]
        # Only after the bind succeeded: read-only must mean *no*
        # writes, including the store's own corrupt-entry cleanup on
        # the get path.  Restored on shutdown -- the caller's store is
        # borrowed, not owned (and a failed bind must not leave it
        # mutated).
        self._restore_discard = False
        if readonly and getattr(store, "discard_corrupt", None):
            store.discard_corrupt = False
            self._restore_discard = True
        self._thread: threading.Thread | None = None
        # An Event, not a bool: shutdown() consults it from whatever
        # thread tears the server down while serve_forever runs
        # elsewhere, so the flag itself must be race-free.
        self._serving = threading.Event()
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._closing = False

    def track_connection(self, sock: socket.socket,
                         alive: bool) -> None:
        """Handler bookkeeping so :meth:`shutdown` can close live
        connections instead of leaving them serving after "stopped".
        A connection that registers after shutdown drained the set (a
        handler spawned in the accept/shutdown race window) is closed
        on the spot instead of being allowed to serve."""
        with self._connections_lock:
            if not alive:
                self._connections.discard(sock)
                return
            if not self._closing:
                self._connections.add(sock)
                return
        _close_socket(sock)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The ``tcp://host:port`` spec clients should open (IPv6
        hosts come bracketed, ready for ``open_cache``)."""
        return format_endpoint(*self.address)

    def handle_request(self, request: dict) -> dict:
        """Answer one protocol request (exposed for protocol tests)."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "server": "repro-agu cache-serve",
                    "readonly": self.readonly}
        if op == "get":
            digest = request.get("digest")
            if not isinstance(digest, str):
                return {"ok": False, "error": "'get' needs a string "
                                              "'digest'"}
            with self._lock:
                payload = self.store.get(digest)
            return {"ok": True, "payload": payload}
        if op == "get_many":
            digests = request.get("digests")
            if not isinstance(digests, list) or not all(
                    isinstance(digest, str) for digest in digests):
                return {"ok": False, "error": "'get_many' needs a list "
                                              "of string digests"}
            with self._lock:
                payloads = {digest: self.store.get(digest)
                            for digest in digests}
            return {"ok": True,
                    "payloads": {digest: payload
                                 for digest, payload in payloads.items()
                                 if isinstance(payload, dict)}}
        if op == "put":
            digest, payload = request.get("digest"), request.get("payload")
            if not isinstance(digest, str) or not isinstance(payload, dict):
                return {"ok": False, "error": "'put' needs a string "
                                              "'digest' and a dict "
                                              "'payload'"}
            return self._store_entries({digest: payload})
        if op == "put_many":
            entries = request.get("entries")
            if not isinstance(entries, dict) or not all(
                    isinstance(digest, str) and isinstance(payload, dict)
                    for digest, payload in entries.items()):
                return {"ok": False, "error": "'put_many' needs a dict "
                                              "of digest -> payload"}
            return self._store_entries(entries)
        if op == "stats":
            with self._lock:
                stats = self.store.stats
                return {"ok": True, "hits": stats.hits,
                        "misses": stats.misses, "stores": stats.stores}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _store_entries(self, entries: dict) -> dict:
        if self.readonly:
            return {"ok": False, "readonly": True,
                    "error": "store is read-only"}
        with self._lock:
            put_many = getattr(self.store, "put_many", None)
            if put_many is not None:
                put_many(entries)
            else:
                for digest, payload in entries.items():
                    self.store.put(digest, payload)
        return {"ok": True, "stored": len(entries)}

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving.set()
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "CacheServer":
        """Serve on a daemon background thread; returns ``self``."""
        self._serving.set()
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; start/shutdown run on one controlling thread
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-cache-server", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving: close the listening socket *and* every live
        connection, so no handler thread keeps answering afterwards
        (idempotent)."""
        if self._serving.is_set():
            self._server.shutdown()
            self._serving.clear()
        self._server.server_close()
        with self._connections_lock:
            self._closing = True
            live, self._connections = self._connections, set()
        for sock in live:
            _close_socket(sock)
        # repro-lint: disable=LOCK-DISCIPLINE -- _restore_discard is only touched here and in __init__, on the controlling thread
        if self._restore_discard:
            self.store.discard_corrupt = True
            self._restore_discard = False
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; joining under a lock handlers take would deadlock
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class RemoteCache:
    """Client backend for a :class:`CacheServer`.

    Implements the :class:`~repro.batch.cache.CacheBackend` protocol
    (``get``/``put`` plus the batched ``get_many``/``put_many`` and
    ``stats``), so it plugs into
    :class:`~repro.batch.engine.BatchCompiler` and every experiment
    runner unchanged.  One TCP connection is kept open and reused
    across requests; ``get_many``/``put_many`` batch digests and
    entries into frames of ``batch_size``, so a whole batch scan or
    persist costs one round trip per ``batch_size`` entries instead of
    one per job.

    A server that cannot be reached *never* raises into the batch:
    the client logs one warning, serves misses (and drops stores) for
    ``retry_interval`` seconds, then probes again.  ``stats`` counts
    the client-side view -- degraded lookups are misses, so
    ``hits + misses`` always equals the number of ``get`` calls.

    Instances are picklable (the socket is re-opened lazily on first
    use), so jobs or compilers carrying a remote cache can cross
    process boundaries; each process then holds its own connection and
    its own client-side stats.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 5.0, retry_interval: float = 5.0,
                 batch_size: int = 256):
        if not 1 <= int(port) <= 65535:
            raise BatchError(
                f"remote cache port must be in 1..65535, got {port}")
        if batch_size < 1:
            raise BatchError(
                f"batch_size must be >= 1, got {batch_size}")
        if not timeout > 0:
            raise BatchError(
                f"timeout must be > 0 seconds, got {timeout}")
        if retry_interval < 0:
            raise BatchError(
                f"retry_interval must be >= 0 seconds, got "
                f"{retry_interval}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retry_interval = float(retry_interval)
        self.batch_size = int(batch_size)
        self.stats = CacheStats()
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()
        self._down_since: float | None = None
        self._readonly_since: float | None = None

    @property
    def endpoint(self) -> str:
        """The ``tcp://...`` spec of this client's server, bracketed
        for IPv6 so it can be fed straight back into ``open_cache``."""
        return format_endpoint(self.host, self.port)

    def __repr__(self) -> str:
        return f"RemoteCache({self.endpoint!r})"

    # -- pickling: connections and client-side stats are per-process.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_sock"] = None
        state["_lock"] = None
        state["stats"] = CacheStats()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- transport ------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection (the next request reconnects)."""
        with self._lock:
            self._close_locked()

    def _degrade_locked(self, error: BaseException | str) -> None:
        self._down_since = time.monotonic()
        _LOGGER.warning(
            "cache server %s unreachable (%s); degrading to cache "
            "misses for %.1f s", self.endpoint, error,
            self.retry_interval)

    def _roundtrip_locked(self, message: dict) -> dict | None:
        if self._sock is None:
            self._sock = self._connect()
        send_frame(self._sock, message)
        response = recv_frame(self._sock)
        if response is None:
            raise BatchError("server closed the connection")
        return response

    def _request(self, message: dict) -> dict | None:
        """One request/response round trip; ``None`` while degraded.

        A first transport failure gets one immediate reconnect-and-
        retry (servers legitimately drop idle connections; every
        protocol request is idempotent, so a resend is safe).  A second
        failure marks the server down for ``retry_interval`` seconds.
        """
        with self._lock:
            if self._down_since is not None:
                if time.monotonic() - self._down_since \
                        < self.retry_interval:
                    return None
                self._down_since = None
            try:
                return self._roundtrip_locked(message)
            except FrameTooLargeError:
                # A local serialization limit, not a server problem:
                # the connection never saw a byte of it.  Callers
                # decide what to drop; the server stays "up".
                raise
            except (OSError, BatchError):
                self._close_locked()
            try:
                return self._roundtrip_locked(message)
            except FrameTooLargeError:
                # Same local limit on the retry attempt: still not the
                # server's fault, still no degradation.
                raise
            except (OSError, BatchError) as error:
                self._close_locked()
                self._degrade_locked(error)
                return None

    # -- the CacheBackend protocol -------------------------------------
    def get(self, digest: str) -> dict | None:
        """The payload under ``digest``; a miss (also) when degraded
        or when the request cannot fit a frame -- lookups, like
        stores, never fail the batch."""
        try:
            response = self._request({"op": "get", "digest": digest})
        except FrameTooLargeError:
            response = None
        payload = response.get("payload") if response \
            and response.get("ok") else None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def get_many(self, digests) -> dict[str, dict]:
        """Payloads for every cached digest in ``digests``, fetched
        ``batch_size`` digests per round trip (the engine's initial
        cache scan uses this -- one frame instead of one RTT per job).
        Counts one hit or miss per digest; missing and degraded
        lookups are simply absent from the result."""
        digests = list(digests)
        found: dict[str, dict] = {}
        for start in range(0, len(digests), self.batch_size):
            chunk = digests[start:start + self.batch_size]
            try:
                response = self._request({"op": "get_many",
                                          "digests": chunk})
            except FrameTooLargeError:
                response = None  # this chunk becomes misses
            payloads = response.get("payloads") if response \
                and response.get("ok") else None
            if not isinstance(payloads, dict):
                payloads = {}
            for digest in chunk:
                payload = payloads.get(digest)
                if isinstance(payload, dict):
                    found[digest] = payload
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
        return found

    def _stores_disabled(self) -> bool:
        """Whether stores are currently pointless (read-only server).

        Like the dead-server state, read-only is re-probed after
        ``retry_interval`` seconds -- the operator may have restarted
        the server writable, and a long-lived run should pick its
        persistence back up rather than drop stores forever.
        """
        with self._lock:
            if self._readonly_since is None:
                return False
            if time.monotonic() - self._readonly_since \
                    < self.retry_interval:
                return True
            self._readonly_since = None
            return False

    def put(self, digest: str, payload: dict) -> None:
        """Store one payload; silently dropped when degraded/read-only
        (or too large for one frame -- the cache is an optimization)."""
        if self._stores_disabled():
            return
        try:
            response = self._request(
                {"op": "put", "digest": digest, "payload": payload})
        except FrameTooLargeError as error:
            _LOGGER.warning("dropping oversized cache store %s: %s",
                            digest, error)
            return
        if self._accepted(response):
            self.stats.stores += 1

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a batch, ``batch_size`` entries per protocol frame."""
        if self._stores_disabled() or not entries:
            return
        items = list(entries.items())
        for start in range(0, len(items), self.batch_size):
            chunk = dict(items[start:start + self.batch_size])
            try:
                response = self._request({"op": "put_many",
                                          "entries": chunk})
            except FrameTooLargeError as error:
                _LOGGER.warning(
                    "dropping oversized cache store batch of %d "
                    "entr(ies): %s", len(chunk), error)
                continue
            if self._accepted(response):
                self.stats.stores += len(chunk)
            elif response is None or self._stores_disabled():
                # Degraded, or the server just revealed itself as
                # read-only: drop the remaining chunks too.
                return

    def _accepted(self, response: dict | None) -> bool:
        """Whether a store response means "persisted"; notes read-only
        servers so later stores are skipped client-side (until the
        ``retry_interval`` re-probe)."""
        if response is None:
            return False
        if response.get("ok"):
            return True
        if response.get("readonly"):
            with self._lock:
                if self._readonly_since is None:
                    _LOGGER.warning(
                        "cache server %s is read-only; dropping stores "
                        "for %.1f s", self.endpoint, self.retry_interval)
                self._readonly_since = time.monotonic()
        else:
            _LOGGER.warning("cache server %s rejected a store: %s",
                            self.endpoint, response.get("error"))
        return False

    # -- niceties -------------------------------------------------------
    def ping(self) -> bool:
        """Whether the server answers at all right now."""
        response = self._request({"op": "ping"})
        return bool(response and response.get("ok"))

    def server_stats(self) -> CacheStats | None:
        """The *server-side* counters, or ``None`` while unreachable."""
        response = self._request({"op": "stats"})
        if not response or not response.get("ok"):
            return None
        return CacheStats(hits=int(response.get("hits", 0)),
                          misses=int(response.get("misses", 0)),
                          stores=int(response.get("stores", 0)))
