"""Distributed execution for the batch engine: multi-host workers.

The cache service (:mod:`repro.batch.service`) made *results* shareable
across hosts; this module shares the *compute*.  Three pieces close the
loop:

* :class:`JobServer` -- a TCP broker (the ``repro-agu job-serve``
  subcommand) that queues picklable batch jobs and leases them out,
  first come first served, to any number of connected workers.  Leases
  carry a timeout: a worker that dies mid-job (its connection drops) or
  goes silent (the lease expires) gets its job requeued and re-leased
  to the next free worker, so a batch survives worker loss.  The
  server never unpickles a job -- payloads are routed as opaque bytes
  between the client that submitted them and the worker that executes
  them.
* :class:`Worker` -- the execution loop behind the ``repro-agu
  worker`` subcommand: connect, lease, execute via the engine's
  standard :func:`~repro.batch.engine.execute_any` job contract,
  stream the result back, repeat.
* :class:`ClusterExecutor` -- the client backend that plugs the fleet
  into :class:`~repro.batch.engine.BatchCompiler` through the
  :class:`~repro.batch.engine.Executor` seam
  (``open_executor("tcp://host:port")`` / ``--executor`` on the CLI),
  so every experiment runner gains multi-host execution unchanged.

Wire protocol: the PR-4 length-prefixed JSON framing of
:mod:`repro.batch.service` (:func:`~repro.batch.service.send_frame` /
:func:`~repro.batch.service.recv_frame`).  Jobs and results travel as
base64-encoded pickles inside the JSON frames; requests carry an
``op`` (``ping``, ``status``, ``submit``, ``cancel``, ``lease``,
``complete``, ``fail``), and a submitted batch's results are *pushed*
to the client as ``event`` frames (``result``, ``failed``,
``heartbeat``, and the terminals ``done``/``aborted``) in completion
order.

Failure philosophy: compute, unlike the cache, is not optional -- a
dead or unreachable job server fails the batch loudly with a
:class:`~repro.errors.BatchError` (no silent degradation).  A job
whose *execution* raises is never requeued (a deterministic failure
would loop forever); the failure streams back and aborts the batch
with the engine's standard job attribution, after in-flight survivors
finish and persist.  A job whose *worker* dies is requeued up to
``max_attempts`` times, then reported as failed.

Security note: workers unpickle and execute whatever the server hands
them, and the server relays whatever clients submit.  Run the trio
only on hosts and networks you trust with arbitrary code execution --
the same trust the fleet already grants a shared filesystem or a
deployment system.
"""

from __future__ import annotations

import base64
import itertools
import logging
import os
import pickle
import queue
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.batch.engine import (
    ExecutionStream,
    Executor,
    JobFailure,
    execute_any,
    job_size_hint,
)
from repro.batch.trace import open_tracer, percentile
from repro.batch.service import (
    FrameTooLargeError,
    _close_socket,
    format_endpoint,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.errors import BatchError

_LOGGER = logging.getLogger("repro.batch.cluster")

#: Hard cap on one blocking lease wait, so a worker poll can never pin
#: a handler thread indefinitely (workers re-poll in a loop anyway).
MAX_LEASE_WAIT = 30.0


def encode_payload(obj: Any) -> str:
    """A picklable object as a base64 string (frame-embeddable)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Rebuild an object from :func:`encode_payload` output."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class RemoteJobError(BatchError):
    """A job failed on a remote worker.

    Carries the worker-side exception's type name and message (the
    traceback object itself cannot cross the wire); the engine wraps
    this into its standard job-attributed
    :class:`~repro.errors.BatchError`, so callers see the same failure
    shape as for a local run.
    """

    def __init__(self, message: str, *, error_type: str = "Exception"):
        super().__init__(message)
        self.error_type = error_type


@dataclass
class ClusterStats:
    """Lifetime counters of one :class:`JobServer` (monotonic)."""

    #: Batches accepted from clients.
    batches: int = 0
    #: Jobs accepted across all batches.
    jobs: int = 0
    #: Jobs that completed with a result.
    completed: int = 0
    #: Jobs that failed on a worker (execution raised).
    failed: int = 0
    #: Leases requeued after a worker death or lease expiry.
    requeued: int = 0
    #: Jobs dropped unrun (batch cancelled, failed, or abandoned).
    dropped: int = 0
    #: Speculative duplicate leases issued for suspected stragglers.
    speculated: int = 0
    #: Worker reports that arrived after their lease was superseded.
    stale: int = 0

    def __str__(self) -> str:
        return (f"{self.batches} batch(es), {self.jobs} job(s): "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.requeued} requeued, {self.dropped} dropped, "
                f"{self.speculated} speculated, {self.stale} stale")


@dataclass
class _Lease:
    """One leased job: who may complete it, and since when.

    Carries the opaque job payload so a requeue (worker death, lease
    expiry) can put the job back on the ready queue without help from
    the submitting client.
    """

    lease_id: str
    batch_id: str
    index: int
    payload: str
    owner: object
    leased_at: float


@dataclass
class _Batch:
    """Server-side state of one submitted batch."""

    batch_id: str
    #: Opaque job payloads by index (only unleased ones remain here).
    payloads: dict[int, str]
    #: Indices not yet resolved (result, failure, or drop).
    unresolved: set[int]
    #: Events to push to the submitting client, in completion order.
    events: queue.Queue
    #: ``running`` -> ``failing`` (a job failed) / ``cancelled`` (the
    #: client asked to stop) / ``dead`` (the client connection is
    #: gone; in-flight results are discarded).
    state: str = "running"
    #: Lease attempts per index (requeue bookkeeping).
    attempts: dict[int, int] = field(default_factory=dict)
    #: Optional per-index display names from the submit frame's hints.
    names: list | None = None
    #: Optional per-index size hints (bigger = slower; ordering input).
    sizes: list | None = None
    #: Indices with a live speculative duplicate (queued or leased).
    speculating: set[int] = field(default_factory=set)
    #: Accepted execution seconds (feeds the speculation threshold).
    durations: deque = field(default_factory=lambda: deque(maxlen=256))


class _JobRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a submitting client or a leasing worker."""

    def handle(self) -> None:
        server: JobServer = self.server.job_server  # type: ignore
        server.track_connection(self.request, alive=True)
        if server.idle_timeout is not None:
            # A stalled or half-open peer must not pin this thread
            # forever.  For workers the recv gap spans one job's
            # execution, so idle_timeout must be sized above the
            # slowest job (a dropped slow worker costs duplicate
            # compute via release_worker, never correctness).  Client
            # result streams are exempt from the read side of this
            # timeout (see watch_for_cancel); their stall detector is
            # the heartbeat send.
            self.request.settimeout(server.idle_timeout)
        try:
            try:
                first = recv_frame(self.request)
            except (BatchError, OSError):
                return
            if first is None:
                return
            if first.get("op") == "submit":
                self._serve_client(server, first)
            else:
                self._serve_worker(server, first)
        finally:
            server.track_connection(self.request, alive=False)

    # -- worker connections --------------------------------------------
    def _serve_worker(self, server: "JobServer", request: dict) -> None:
        owner = self.request  # connection identity for lease ownership
        try:
            while True:
                try:
                    response = server.handle_worker_request(request,
                                                            owner)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the error goes back to the worker as an error frame, keeping the connection alive
                except Exception as error:
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}"}
                try:
                    send_frame(self.request, response)
                except (BatchError, OSError):
                    return
                try:
                    request = recv_frame(self.request)
                except (BatchError, OSError):
                    return
                if request is None:
                    return
        finally:
            # A vanished worker must not strand its leases: requeue
            # them so another worker picks the jobs up.
            server.release_worker(owner)

    # -- client connections --------------------------------------------
    def _serve_client(self, server: "JobServer", submit: dict) -> None:
        jobs = submit.get("jobs")
        if not isinstance(jobs, list) or not jobs or not all(
                isinstance(payload, str) for payload in jobs):
            try:
                send_frame(self.request, {
                    "ok": False, "error": "'submit' needs a non-empty "
                                          "list of job payloads"})
            except (BatchError, OSError):
                pass
            return
        batch = server.create_batch(jobs, hints=submit.get("hints"))
        try:
            send_frame(self.request, {
                "ok": True, "batch": batch.batch_id, "n_jobs": len(jobs),
                "workers": server.n_connected_workers})
        except (BatchError, OSError):
            server.kill_batch(batch.batch_id)
            return

        # The client may send "cancel" (or just hang up) while results
        # are being pushed; a side thread watches for both.
        def watch_for_cancel() -> None:
            try:
                while True:
                    try:
                        frame = recv_frame(self.request)
                    except TimeoutError:
                        # An idle *client* is healthy: it sends nothing
                        # while results stream back, so the idle
                        # timeout must not kill its batch.  A truly
                        # dead client is caught by the heartbeat send
                        # in _push_events filling the socket buffer.
                        continue
                    if frame is None:
                        break
                    if frame.get("op") == "cancel":
                        server.cancel_batch(batch.batch_id)
            except (BatchError, OSError):
                pass
            # EOF or a broken pipe: the client cannot receive results
            # anymore, so in-flight completions are discarded.
            server.kill_batch(batch.batch_id)

        watcher = threading.Thread(target=watch_for_cancel,
                                   name="repro-job-client-watch",
                                   daemon=True)
        watcher.start()
        self._push_events(server, batch)

    def _push_events(self, server: "JobServer", batch: _Batch) -> None:
        while True:
            try:
                event = batch.events.get(timeout=server.heartbeat)
            except queue.Empty:
                event = {"event": "heartbeat"}
            try:
                send_frame(self.request, event)
            except FrameTooLargeError:
                # One oversized result must not desync the stream (no
                # bytes were sent): report that job as failed instead.
                try:
                    send_frame(self.request, {
                        "event": "failed", "index": event.get("index"),
                        "error": "result too large for one protocol "
                                 "frame", "error_type": "FrameTooLarge"})
                except (BatchError, OSError):
                    server.kill_batch(batch.batch_id)
                    return
            except (BatchError, OSError):
                server.kill_batch(batch.batch_id)
                return
            if event.get("event") in ("done", "aborted"):
                return


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _TcpServer6(_TcpServer):
    address_family = socket.AF_INET6


class JobServer:
    """Queue batch jobs and lease them to a fleet of workers over TCP.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` / :attr:`endpoint`).
    lease_timeout:
        Seconds a worker may hold a lease before the job is presumed
        lost and requeued.  Size it above the slowest expected job; a
        too-small value costs duplicate compute, never correctness
        (stale completions are ignored).
    max_attempts:
        Lease attempts per job before the server gives up and reports
        the job failed (guards against a job that kills every worker
        it touches).
    heartbeat:
        Quiet-connection keepalive interval of the client result
        stream.
    idle_timeout:
        Seconds a connection may sit idle between frames before the
        server closes it (``None`` disables the timeout).  Size it
        above the slowest expected job *and* above ``lease_timeout``:
        a worker is silent for the whole run of a job, and dropping a
        slow-but-healthy worker costs duplicate compute (its leases
        requeue on disconnect) though never correctness.  Client
        result streams are not subject to the read timeout -- an idle
        submitting client is normal; a dead one is detected when the
        heartbeat send backs up.
    order:
        Job scheduling order: ``"fifo"`` (the default, submission
        order) or ``"size"`` (largest size hint first, so one big job
        cannot land last and serialize the tail of the batch; jobs
        without a hint keep FIFO order after the hinted ones).  Size
        hints ride in the submit frame -- the server still never
        unpickles a payload.
    speculate:
        Speculative re-lease of stragglers: when the ready queue is
        drained and a lease has been out longer than
        ``speculate_factor`` times the batch's observed p95 execution
        time (needs ``speculate_min_samples`` completions first), a
        duplicate copy of the job is requeued for an idle worker.
        First result wins -- the loser is acknowledged as stale and
        discarded -- so results stay bit-identical; the cost is only
        duplicate compute.  Off by default.
    adaptive_lease:
        Derive the effective lease timeout from observed execution
        times (``adaptive_factor`` times the p95 across the last
        completions, floored at ``adaptive_floor`` seconds) once
        ``adaptive_min_samples`` completions exist, instead of the
        static ``lease_timeout``.  Lost workers are then detected in
        proportion to real job durations.  Off by default.
    trace:
        Trace sink (path, stream, or a shared
        :class:`~repro.batch.trace.Tracer`); ``None`` disables
        tracing at zero cost.  See :mod:`repro.batch.trace` for the
        event schema.
    clock:
        Monotonic clock; injectable for deterministic tests.
    auto_reap:
        Start the background policy thread (lease reaping +
        speculation).  Tests pass ``False`` and drive
        :meth:`run_policies` by hand under a virtual clock.

    Run blocking with :meth:`serve_forever` (the CLI does) or on a
    background thread via :meth:`start` / the context-manager form
    (tests and benchmarks do).

    Example::

        >>> from repro.batch.cluster import JobServer, Worker
        >>> from repro.batch.engine import BatchCompiler
        >>> with JobServer() as server:           # doctest: +SKIP
        ...     # start `repro-agu worker tcp://...` processes, then:
        ...     compiler = BatchCompiler(executor=server.endpoint)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = 60.0, max_attempts: int = 3,
                 heartbeat: float = 2.0,
                 idle_timeout: float | None = 600.0,
                 order: str = "fifo",
                 speculate: bool = False,
                 speculate_factor: float = 2.0,
                 speculate_min_samples: int = 3,
                 adaptive_lease: bool = False,
                 adaptive_factor: float = 3.0,
                 adaptive_min_samples: int = 5,
                 adaptive_floor: float = 1.0,
                 trace: Any = None,
                 clock: Callable[[], float] = time.monotonic,
                 auto_reap: bool = True):
        if lease_timeout <= 0:
            raise BatchError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout}")
        if max_attempts < 1:
            raise BatchError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if idle_timeout is not None and not idle_timeout > 0:
            raise BatchError(
                f"idle_timeout must be > 0 seconds or None, got "
                f"{idle_timeout}")
        if order not in ("fifo", "size"):
            raise BatchError(
                f"order must be 'fifo' or 'size', got {order!r}")
        if speculate_factor <= 0 or adaptive_factor <= 0:
            raise BatchError("policy factors must be > 0")
        if speculate_min_samples < 1 or adaptive_min_samples < 1:
            raise BatchError("policy min_samples must be >= 1")
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.heartbeat = float(heartbeat)
        self.idle_timeout = idle_timeout
        self.order = order
        self.speculate = bool(speculate)
        self.speculate_factor = float(speculate_factor)
        self.speculate_min_samples = int(speculate_min_samples)
        self.adaptive_lease = bool(adaptive_lease)
        self.adaptive_factor = float(adaptive_factor)
        self.adaptive_min_samples = int(adaptive_min_samples)
        self.adaptive_floor = float(adaptive_floor)
        self.auto_reap = bool(auto_reap)
        self.stats = ClusterStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._batches: dict[str, _Batch] = {}
        self._ready: deque[tuple[str, int]] = deque()
        self._leases: dict[str, _Lease] = {}
        self._workers: set[object] = set()
        self._worker_names: dict[object, str] = {}
        self._worker_ids = itertools.count(1)
        self._durations: deque = deque(maxlen=512)
        self._ids = itertools.count(1)
        server_class = _TcpServer6 if ":" in host else _TcpServer
        self._server = server_class((host, port), _JobRequestHandler)
        self._server.job_server = self  # type: ignore[attr-defined]
        self._trace = open_tracer(
            trace, source="job-server", clock=clock,
            meta={"endpoint": self.endpoint,
                  "lease_timeout": self.lease_timeout,
                  "order": self.order, "speculate": self.speculate,
                  "adaptive_lease": self.adaptive_lease})
        self._thread: threading.Thread | None = None
        self._reaper: threading.Thread | None = None
        # An Event, not a bool: the reaper thread polls this as its
        # run condition while start/shutdown flip it from the
        # controlling thread -- the flag itself must be race-free.
        self._serving = threading.Event()
        self._closing = False
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()

    # -- addressing ----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The ``tcp://host:port`` spec clients and workers connect to
        (IPv6 hosts come bracketed, ready for ``open_executor``)."""
        return format_endpoint(*self.address)

    @property
    def n_connected_workers(self) -> int:
        """Workers currently connected (lease loops, not leases)."""
        with self._lock:
            return len(self._workers)

    # -- connection bookkeeping (mirrors CacheServer) ------------------
    def track_connection(self, sock: socket.socket, alive: bool) -> None:
        """Handler bookkeeping so :meth:`shutdown` can close live
        connections; a connection registering after shutdown started
        is closed on the spot."""
        with self._connections_lock:
            if not alive:
                self._connections.discard(sock)
                return
            if not self._closing:
                self._connections.add(sock)
                return
        _close_socket(sock)

    def _worker_name_locked(self, owner: object) -> str:
        name = self._worker_names.get(owner)
        if name is None:
            name = f"w{next(self._worker_ids)}"
            self._worker_names[owner] = name
            self._trace.emit("worker_join", worker=name)
        return name

    def register_worker(self, owner: object) -> None:
        """Note a live worker connection.  Called on the first
        ``lease`` op, not on connect, so diagnostic connections
        (``ping``/``status`` probes) never inflate the worker count
        reported to clients."""
        with self._lock:
            self._workers.add(owner)
            self._worker_name_locked(owner)

    def release_worker(self, owner: object) -> None:
        """Worker connection gone: requeue every lease it still held."""
        with self._lock:
            self._workers.discard(owner)
            stranded = [lease for lease in self._leases.values()
                        if lease.owner is owner]
            for lease in stranded:
                self._requeue_locked(lease, reason="worker disconnected")
            name = self._worker_names.pop(owner, None)
            if name is not None:
                self._trace.emit("worker_leave", worker=name)

    # -- the scheduler (all under self._lock) --------------------------
    @staticmethod
    def _normalize_hints(hints: Any, n_jobs: int) -> tuple[list | None,
                                                           list | None]:
        """Submit-frame ``hints`` -> parallel name/size lists.

        Hints are advisory: anything malformed (wrong length, wrong
        types) is silently ignored rather than failing the batch.
        """
        if not isinstance(hints, list) or len(hints) != n_jobs:
            return None, None
        names: list = []
        sizes: list = []
        for hint in hints:
            entry = hint if isinstance(hint, dict) else {}
            name = entry.get("name")
            size = entry.get("size")
            names.append(name if isinstance(name, str) else None)
            sizes.append(float(size)
                         if isinstance(size, (int, float))
                         and not isinstance(size, bool) else None)
        if not any(name is not None for name in names):
            names = None
        if not any(size is not None for size in sizes):
            sizes = None
        return names, sizes

    def _schedule_order(self, sizes: list | None,
                        n_jobs: int) -> list[int]:
        indices = list(range(n_jobs))
        if self.order != "size" or not sizes:
            return indices
        # Largest hinted job first; unhinted jobs keep FIFO order
        # after every hinted one (the sort is stable).
        indices.sort(key=lambda index: (
            0, -sizes[index]) if sizes[index] is not None else (1, 0))
        return indices

    def create_batch(self, payloads: Sequence[str],
                     hints: Any = None) -> _Batch:
        """Register a submitted batch and queue its jobs (FIFO, or
        largest-hint-first under ``order="size"``)."""
        names, sizes = self._normalize_hints(hints, len(payloads))
        with self._lock:
            batch_id = f"b{next(self._ids)}"
            batch = _Batch(
                batch_id=batch_id,
                payloads=dict(enumerate(payloads)),
                unresolved=set(range(len(payloads))),
                events=queue.Queue(),
                names=names, sizes=sizes)
            self._batches[batch_id] = batch
            order = self._schedule_order(sizes, len(payloads))
            self._ready.extend((batch_id, index) for index in order)
            if self._trace.enabled:
                for index in range(len(payloads)):
                    fields: dict = {"batch": batch_id, "index": index}
                    if names and names[index] is not None:
                        fields["name"] = names[index]
                    if sizes and sizes[index] is not None:
                        fields["size"] = sizes[index]
                    self._trace.emit("enqueue", **fields)
            self.stats.batches += 1
            self.stats.jobs += len(payloads)
            self._work.notify_all()
            return batch

    def _pop_ready_locked(self) -> tuple[_Batch, int] | None:
        while self._ready:
            batch_id, index = self._ready.popleft()
            batch = self._batches.get(batch_id)
            if batch is None or batch.state != "running" \
                    or index not in batch.payloads:
                continue
            return batch, index
        return None

    def lease(self, owner: object, wait: float) -> dict:
        """Lease the next queued job to ``owner``; blocks up to
        ``wait`` seconds (capped) when the queue is empty.  (The block
        itself is real time even under an injected virtual clock --
        deterministic tests lease with ``wait=0``.)"""
        deadline = self._clock() + max(0.0, min(wait, MAX_LEASE_WAIT))
        with self._lock:
            while True:
                entry = self._pop_ready_locked()
                if entry is not None:
                    batch, index = entry
                    payload = batch.payloads.pop(index)
                    lease = _Lease(
                        lease_id=f"l{next(self._ids)}",
                        batch_id=batch.batch_id, index=index,
                        payload=payload, owner=owner,
                        leased_at=self._clock())
                    self._leases[lease.lease_id] = lease
                    batch.attempts[index] = \
                        batch.attempts.get(index, 0) + 1
                    if self._trace.enabled:
                        self._trace.emit(
                            "lease", batch=batch.batch_id, index=index,
                            lease=lease.lease_id,
                            worker=self._worker_name_locked(owner),
                            attempt=batch.attempts[index])
                    return {"ok": True, "lease": lease.lease_id,
                            "batch": batch.batch_id, "index": index,
                            "job": payload}
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return {"ok": True, "idle": True}
                self._work.wait(remaining)

    def _take_lease_locked(self, lease_id: str) -> _Lease | None:
        return self._leases.pop(lease_id, None)

    def _stale_locked(self, lease_id: str,
                      lease: _Lease | None) -> dict:
        self.stats.stale += 1
        if self._trace.enabled:
            fields: dict = {"lease": lease_id}
            if lease is not None:
                fields.update(batch=lease.batch_id, index=lease.index)
            self._trace.emit("stale_result", **fields)
        return {"ok": True, "stale": True}

    def complete(self, lease_id: str, result_payload: str,
                 seconds: float | None = None) -> dict:
        """Accept a worker's result; stale leases are acknowledged but
        ignored (the job was requeued or speculatively duplicated and
        already resolved, or its batch is gone).  ``seconds`` is the
        worker's self-timed execution duration; it seeds the adaptive
        lease timeout and the speculation threshold."""
        with self._lock:
            now = self._clock()
            lease = self._take_lease_locked(lease_id)
            if lease is None:
                return self._stale_locked(lease_id, None)
            batch = self._batches.get(lease.batch_id)
            if batch is None or lease.index not in batch.unresolved:
                return self._stale_locked(lease_id, lease)
            elapsed = (float(seconds)
                       if isinstance(seconds, (int, float))
                       and not isinstance(seconds, bool)
                       and seconds >= 0
                       else max(0.0, now - lease.leased_at))
            if batch is not None:
                batch.durations.append(elapsed)
            self._durations.append(elapsed)
            self.stats.completed += 1
            if batch.state != "dead":
                batch.events.put({"event": "result",
                                  "index": lease.index,
                                  "result": result_payload})
            if self._trace.enabled:
                self._trace.emit(
                    "finish", batch=lease.batch_id, index=lease.index,
                    lease=lease_id,
                    worker=self._worker_names.get(lease.owner),
                    outcome="ok", seconds=round(elapsed, 9))
            self._resolve_locked(batch, lease.index)
            return {"ok": True}

    def fail(self, lease_id: str, error: str, error_type: str,
             seconds: float | None = None) -> dict:
        """Accept a worker's job-failure report: the batch stops
        scheduling new jobs, in-flight ones drain, queued ones drop."""
        with self._lock:
            lease = self._take_lease_locked(lease_id)
            if lease is None:
                return self._stale_locked(lease_id, None)
            batch = self._batches.get(lease.batch_id)
            if batch is None or lease.index not in batch.unresolved:
                return self._stale_locked(lease_id, lease)
            self.stats.failed += 1
            if batch.state == "running":
                batch.state = "failing"
            self._drop_queued_locked(batch)
            if batch.state != "dead":
                batch.events.put({"event": "failed",
                                  "index": lease.index,
                                  "error": error,
                                  "error_type": error_type})
            if self._trace.enabled:
                fields: dict = {
                    "batch": lease.batch_id, "index": lease.index,
                    "lease": lease_id,
                    "worker": self._worker_names.get(lease.owner),
                    "outcome": "failed", "error_type": error_type}
                if isinstance(seconds, (int, float)) \
                        and not isinstance(seconds, bool) \
                        and seconds >= 0:
                    fields["seconds"] = round(float(seconds), 9)
                self._trace.emit("finish", **fields)
            self._resolve_locked(batch, lease.index)
            return {"ok": True}

    def cancel_batch(self, batch_id: str) -> None:
        """Client-requested stop: queued jobs drop, leased jobs finish
        and stream back (the client drains them for salvage)."""
        with self._lock:
            batch = self._batches.get(batch_id)
            if batch is None:
                return
            if batch.state == "running":
                batch.state = "cancelled"
            self._drop_queued_locked(batch)
            self._check_terminal_locked(batch)

    def kill_batch(self, batch_id: str) -> None:
        """The client is gone: drop queued jobs and discard whatever
        the in-flight leases still produce."""
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is None:
                return
            batch.state = "dead"
            self._drop_queued_locked(batch)
            # Unblock a push loop waiting on the events queue.
            batch.events.put({"event": "aborted"})

    def _drop_queued_locked(self, batch: _Batch) -> None:
        leased_live = {lease.index for lease in self._leases.values()
                       if lease.batch_id == batch.batch_id}
        for index in list(batch.payloads):
            del batch.payloads[index]
            if index in leased_live:
                # A speculative queue copy: the live lease still
                # resolves this slot, so only the duplicate is gone.
                continue
            batch.unresolved.discard(index)
            self.stats.dropped += 1
            if self._trace.enabled:
                self._trace.emit("drop", batch=batch.batch_id,
                                 index=index)

    def _resolve_locked(self, batch: _Batch, index: int) -> None:
        # A resolved index must leave the ready queue too: under
        # speculation a duplicate copy may still be queued, and
        # re-leasing a finished job would waste a worker.
        batch.payloads.pop(index, None)
        batch.speculating.discard(index)
        batch.unresolved.discard(index)
        self._check_terminal_locked(batch)

    def _check_terminal_locked(self, batch: _Batch) -> None:
        if batch.unresolved:
            return
        terminal = "done" if batch.state == "running" else "aborted"
        if batch.state != "dead":
            batch.events.put({"event": terminal})
        self._batches.pop(batch.batch_id, None)

    def _trace_lease_end_locked(self, lease: _Lease, *, expired: bool,
                                reason: str, requeued: bool) -> None:
        # Lease-lifecycle invariant: every popped lease gets exactly
        # one terminal trace event (finish / expire / requeue).
        if not self._trace.enabled:
            return
        self._trace.emit(
            "expire" if expired else "requeue",
            batch=lease.batch_id, index=lease.index,
            lease=lease.lease_id,
            worker=self._worker_names.get(lease.owner),
            reason=reason, requeued=requeued)

    def _requeue_locked(self, lease: _Lease, reason: str,
                        expired: bool = False) -> None:
        if self._leases.pop(lease.lease_id, None) is None:
            return  # already resolved or requeued by another path
        batch = self._batches.get(lease.batch_id)
        if batch is None or lease.index not in batch.unresolved \
                or lease.index in batch.payloads:
            self._trace_lease_end_locked(
                lease, expired=expired, reason=reason, requeued=False)
            return
        if batch.state != "running":
            # A draining batch has no use for a re-run: resolve the
            # slot as dropped so the terminal event can fire.
            self.stats.dropped += 1
            self._trace_lease_end_locked(
                lease, expired=expired, reason=reason, requeued=False)
            self._resolve_locked(batch, lease.index)
            return
        if batch.attempts.get(lease.index, 0) >= self.max_attempts:
            _LOGGER.warning(
                "giving up on job %d of batch %s after %d lease(s)",
                lease.index, batch.batch_id, self.max_attempts)
            self.stats.failed += 1
            batch.state = "failing"
            self._trace_lease_end_locked(
                lease, expired=expired, reason=reason, requeued=False)
            self._drop_queued_locked(batch)
            batch.events.put({
                "event": "failed", "index": lease.index,
                "error": f"job lost {self.max_attempts} worker(s) "
                         f"({reason}); giving up",
                "error_type": "WorkerLost"})
            self._resolve_locked(batch, lease.index)
            return
        _LOGGER.info("requeueing job %d of batch %s (%s)",
                     lease.index, batch.batch_id, reason)
        self.stats.requeued += 1
        self._trace_lease_end_locked(
            lease, expired=expired, reason=reason, requeued=True)
        # Recover the payload from the lease-time snapshot: payloads
        # are popped at lease time, so stash it back via the lease.
        batch.payloads[lease.index] = lease.payload
        self._ready.appendleft((lease.batch_id, lease.index))
        self._work.notify()

    def _effective_lease_timeout_locked(self) -> float:
        if not self.adaptive_lease \
                or len(self._durations) < self.adaptive_min_samples:
            return self.lease_timeout
        return max(self.adaptive_floor,
                   self.adaptive_factor
                   * percentile(self._durations, 95.0))

    def effective_lease_timeout(self) -> float:
        """The lease timeout currently in force: the static
        ``lease_timeout``, or the adaptive p95-derived one once
        enough completions have been observed."""
        with self._lock:
            return self._effective_lease_timeout_locked()

    def reap_expired_leases(self) -> int:
        """Requeue every lease older than the effective lease timeout;
        returns how many were reaped (the policy thread calls this;
        tests may call it directly for determinism)."""
        now = self._clock()
        with self._lock:
            timeout = self._effective_lease_timeout_locked()
            expired = [lease for lease in self._leases.values()
                       if now - lease.leased_at > timeout]
            for lease in expired:
                self._requeue_locked(lease, reason="lease expired",
                                     expired=True)
            return len(expired)

    def _has_ready_work_locked(self) -> bool:
        return any(
            batch_id in self._batches
            and index in self._batches[batch_id].payloads
            for batch_id, index in self._ready)

    def speculate_stragglers(self) -> int:
        """Queue a duplicate copy of every suspected straggler.

        A lease is a suspected straggler when the ready queue is
        drained (an idle worker exists to absorb the duplicate), its
        batch has at least ``speculate_min_samples`` observed
        completions, and the lease is older than ``speculate_factor``
        times the batch's p95 execution time.  At most one duplicate
        per job is ever live; first result wins, the other is
        acknowledged stale.  Returns how many duplicates were queued.
        No-op unless ``speculate`` is on.
        """
        if not self.speculate:
            return 0
        now = self._clock()
        queued = 0
        with self._lock:
            if self._has_ready_work_locked():
                return 0
            for lease in list(self._leases.values()):
                batch = self._batches.get(lease.batch_id)
                if batch is None or batch.state != "running":
                    continue
                if lease.index not in batch.unresolved \
                        or lease.index in batch.speculating \
                        or lease.index in batch.payloads:
                    continue
                if len(batch.durations) < self.speculate_min_samples:
                    continue
                threshold = self.speculate_factor * percentile(
                    batch.durations, 95.0)
                age = now - lease.leased_at
                if age <= threshold:
                    continue
                _LOGGER.info(
                    "speculatively re-leasing job %d of batch %s "
                    "(lease %s out %.3f s > %.3f s)", lease.index,
                    lease.batch_id, lease.lease_id, age, threshold)
                batch.speculating.add(lease.index)
                batch.payloads[lease.index] = lease.payload
                self._ready.append((lease.batch_id, lease.index))
                self.stats.speculated += 1
                queued += 1
                if self._trace.enabled:
                    self._trace.emit(
                        "speculate", batch=lease.batch_id,
                        index=lease.index, lease=lease.lease_id,
                        age=round(age, 6),
                        threshold=round(threshold, 6))
            if queued:
                self._work.notify_all()
        return queued

    def run_policies(self) -> dict[str, int]:
        """One scheduler maintenance sweep: reap expired leases, then
        speculate on stragglers.  The background policy thread calls
        this periodically; deterministic tests call it directly after
        advancing their virtual clock.  Returns the per-policy
        action counts."""
        reaped = self.reap_expired_leases()
        speculated = self.speculate_stragglers()
        if self._trace.enabled:
            with self._lock:
                queued = sum(
                    1 for batch_id, index in self._ready
                    if batch_id in self._batches
                    and index in self._batches[batch_id].payloads)
                self._trace.emit(
                    "heartbeat", queued=queued,
                    leased=len(self._leases),
                    workers=len(self._workers),
                    lease_timeout=round(
                        self._effective_lease_timeout_locked(), 6))
        return {"reaped": reaped, "speculated": speculated}

    # -- the worker-facing protocol ------------------------------------
    def handle_worker_request(self, request: dict,
                              owner: object) -> dict:
        """Answer one worker/diagnostic frame (exposed for protocol
        tests)."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "server": "repro-agu job-serve"}
        if op == "status":
            with self._lock:
                queued = sum(
                    1 for batch_id, index in self._ready
                    if batch_id in self._batches
                    and index in self._batches[batch_id].payloads)
                return {"ok": True, "workers": len(self._workers),
                        "queued": queued, "leased": len(self._leases),
                        "batches": len(self._batches),
                        "completed": self.stats.completed,
                        "failed": self.stats.failed,
                        "requeued": self.stats.requeued,
                        "speculated": self.stats.speculated,
                        "stale": self.stats.stale,
                        "lease_timeout":
                            self._effective_lease_timeout_locked()}
        if op == "lease":
            wait = request.get("wait", 0.0)
            if not isinstance(wait, (int, float)) or wait < 0:
                return {"ok": False,
                        "error": "'lease' needs a non-negative 'wait'"}
            self.register_worker(owner)
            return self.lease(owner, float(wait))
        if op == "complete":
            lease_id = request.get("lease")
            result = request.get("result")
            if not isinstance(lease_id, str) \
                    or not isinstance(result, str):
                return {"ok": False,
                        "error": "'complete' needs a string 'lease' "
                                 "and a string 'result'"}
            seconds = request.get("seconds")
            return self.complete(
                lease_id, result,
                seconds=seconds
                if isinstance(seconds, (int, float)) else None)
        if op == "fail":
            lease_id = request.get("lease")
            if not isinstance(lease_id, str):
                return {"ok": False,
                        "error": "'fail' needs a string 'lease'"}
            seconds = request.get("seconds")
            return self.fail(
                lease_id,
                str(request.get("error", "unknown error")),
                str(request.get("error_type", "Exception")),
                seconds=seconds
                if isinstance(seconds, (int, float)) else None)
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- lifecycle -----------------------------------------------------
    def _start_reaper(self) -> None:
        # repro-lint: disable=LOCK-DISCIPLINE -- _reaper is a lifecycle attr; only start/serve_forever call this, on the controlling thread
        if self._reaper is not None or not self.auto_reap:
            return

        def reap_loop() -> None:
            interval = max(0.1, min(1.0, self.lease_timeout / 4))
            while self._serving.is_set():
                time.sleep(interval)
                try:
                    self.run_policies()
                # repro-lint: disable=BROAD-EXCEPT -- the reaper must outlive any one bad iteration; the failure is logged, not hidden
                except Exception:  # pragma: no cover - belt and braces
                    _LOGGER.exception("lease reaper iteration failed")

        self._reaper = threading.Thread(target=reap_loop,
                                        name="repro-job-reaper",
                                        daemon=True)
        self._reaper.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving.set()
        self._start_reaper()
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "JobServer":
        """Serve on a daemon background thread; returns ``self``."""
        self._serving.set()
        self._start_reaper()
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; start/shutdown run on one controlling thread
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-job-server", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving: close the listener and every live connection
        (clients see the drop as a loud batch failure, workers exit
        their loops); idempotent."""
        if self._serving.is_set():
            self._server.shutdown()
            self._serving.clear()
        self._server.server_close()
        with self._connections_lock:
            self._closing = True
            live, self._connections = self._connections, set()
        for sock in live:
            _close_socket(sock)
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; joining under a lock handlers take would deadlock
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # repro-lint: disable=LOCK-DISCIPLINE -- _reaper join, same single-controlling-thread lifecycle as _thread above
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None
        self._trace.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
class Worker:
    """Lease-execute-report loop against a :class:`JobServer`.

    The execution contract is exactly the engine's: a leased job runs
    through :func:`~repro.batch.engine.execute_any` (so ``BatchJob``
    compilation units, statistical grid points, and experiment points
    all work), its result streams back pickled, and an execution
    exception is reported as a job failure -- never retried, never
    fatal to the worker.

    Parameters
    ----------
    host, port:
        The job server to serve.
    poll:
        Seconds one blocking lease request waits server-side before
        answering "idle" (the worker then immediately re-polls).
    timeout:
        Per-request socket timeout; must exceed ``poll``.
    max_jobs:
        Exit after the server *accepts* this many job outcomes
        (``None`` = run forever).  Stale outcomes -- results the
        server already got elsewhere after a lease expiry or a
        speculative re-lease -- do not consume slots, so a fleet
        sized ``max_jobs = len(batch)`` cannot exit early and strand
        the batch.
    idle_exit:
        Exit after this many consecutive seconds without *accepted*
        work (``None`` = run forever); what CI smokes and tests use.
        Stale outcomes do not reset the idle clock.
    connect_retry:
        Seconds to keep retrying the initial connection, so workers
        may start before their server.
    on_event:
        Optional callback ``(kind, detail)`` for per-job logging
        (kinds: ``connected``, ``executed``, ``failed``, ``stale``,
        ``idle``).
    trace:
        Trace sink (path, stream, or a shared
        :class:`~repro.batch.trace.Tracer`); ``None`` disables
        tracing.  The worker emits ``start``/``finish`` events with
        self-timed execution durations.
    clock:
        Monotonic clock; injectable for deterministic tests.

    Example::

        >>> from repro.batch.cluster import JobServer, Worker
        >>> with JobServer() as server:
        ...     worker = Worker(*server.address, max_jobs=0)
        ...     worker.run()
        0
    """

    def __init__(self, host: str, port: int, *, poll: float = 2.0,
                 timeout: float = 30.0, max_jobs: int | None = None,
                 idle_exit: float | None = None,
                 connect_retry: float = 10.0,
                 on_event: Callable[[str, str], None] | None = None,
                 trace: Any = None,
                 clock: Callable[[], float] = time.monotonic):
        if not 1 <= int(port) <= 65535:
            raise BatchError(
                f"job server port must be in 1..65535, got {port}")
        if timeout <= poll:
            raise BatchError(
                f"timeout ({timeout}) must exceed poll ({poll})")
        self.host = host
        self.port = int(port)
        self.poll = float(poll)
        self.timeout = float(timeout)
        self.max_jobs = max_jobs
        self.idle_exit = idle_exit
        self.connect_retry = float(connect_retry)
        self._on_event = on_event or (lambda kind, detail: None)
        self._clock = clock
        self._trace = open_tracer(
            trace, source="worker", clock=clock,
            meta={"endpoint": format_endpoint(host, int(port))})
        self._worker_label = f"pid{os.getpid()}"
        self._sock: socket.socket | None = None
        self._stopping = threading.Event()
        #: Outcomes the server accepted so far (readable mid-run and
        #: after interrupts); stale outcomes are counted separately.
        self.jobs_executed = 0
        #: Outcomes the server acknowledged as stale (the job was
        #: re-leased elsewhere first); they never consume ``max_jobs``.
        self.jobs_stale = 0

    @property
    def endpoint(self) -> str:
        """The served job server as a ``tcp://`` spec."""
        return format_endpoint(self.host, self.port)

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_retry
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                sock.settimeout(self.timeout)
                return sock
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise BatchError(
                        f"cannot reach job server {self.endpoint}: "
                        f"{error}")
                time.sleep(0.2)

    def _request(self, message: dict) -> dict:
        if self._sock is None:
            self._sock = self._connect()
            self._on_event("connected", self.endpoint)
        try:
            send_frame(self._sock, message)
            response = recv_frame(self._sock)
        except FrameTooLargeError:
            # A local serialization limit: no bytes hit the socket,
            # the connection is still in protocol sync.  Callers (the
            # oversized-result path in run()) decide what to drop;
            # this is never "the server is gone".
            raise
        except (OSError, BatchError) as error:
            _close_socket(self._sock)
            self._sock = None
            raise BatchError(
                f"lost the job server {self.endpoint}: {error}")
        if response is None:
            _close_socket(self._sock)
            self._sock = None
            raise BatchError(
                f"job server {self.endpoint} closed the connection")
        if not response.get("ok"):
            raise BatchError(
                f"job server {self.endpoint} rejected {message.get('op')!r}: "
                f"{response.get('error')}")
        return response

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._sock is not None:
            _close_socket(self._sock)
            self._sock = None

    def stop(self) -> None:
        """Ask :meth:`run` to exit after its in-flight request
        (thread-safe; what the CLI's signal handler calls)."""
        self._stopping.set()

    def run(self) -> int:
        """Serve until a stop condition; returns accepted outcomes.

        Raises :class:`~repro.errors.BatchError` when the server goes
        away (after the initial ``connect_retry`` grace) -- unless
        :meth:`stop` was requested, which exits quietly.

        Accounting: only outcomes the server *accepts* count toward
        ``max_jobs`` or reset the ``idle_exit`` clock.  An outcome the
        server marks stale (the lease expired mid-execution and the
        job finished elsewhere first) lands in :attr:`jobs_stale`
        instead -- a worker racing concurrent lease expiry can
        therefore never burn its job budget on work the batch did not
        use, nor look busier than the batch considers it.
        """
        idle_since: float | None = None
        try:
            while not self._stopping.is_set() \
                    and (self.max_jobs is None
                         or self.jobs_executed < self.max_jobs):
                try:
                    response = self._request({"op": "lease",
                                              "wait": self.poll})
                except BatchError:
                    if self._stopping.is_set():
                        break
                    raise
                if response.get("idle"):
                    self._on_event("idle", "")
                    now = self._clock()
                    idle_since = idle_since if idle_since is not None \
                        else now
                    if self.idle_exit is not None \
                            and now - idle_since >= self.idle_exit:
                        break
                    continue
                lease_id = response["lease"]
                job = decode_payload(response["job"])
                name = getattr(job, "name", "<unnamed>")
                if self._trace.enabled:
                    self._trace.emit(
                        "start", lease=lease_id,
                        batch=response.get("batch"),
                        index=response.get("index"),
                        name=str(name), worker=self._worker_label)
                started = time.perf_counter()
                outcome = "ok"
                try:
                    result = execute_any(job)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the failure is reported to the job server, which fails the batch with attribution
                except Exception as error:
                    elapsed = time.perf_counter() - started
                    outcome = "failed"
                    reply = self._request({
                        "op": "fail", "lease": lease_id,
                        "error": str(error),
                        "error_type": type(error).__name__,
                        "seconds": elapsed})
                    self._on_event(
                        "failed",
                        f"{name}: {type(error).__name__}: {error}")
                else:
                    elapsed = time.perf_counter() - started
                    try:
                        reply = self._request({
                            "op": "complete", "lease": lease_id,
                            "result": encode_payload(result),
                            "seconds": elapsed})
                    except FrameTooLargeError as error:
                        # The result, not the server, is the problem:
                        # report the job failed instead of dying and
                        # taking the next worker down the same way.
                        outcome = "failed"
                        reply = self._request({
                            "op": "fail", "lease": lease_id,
                            "error": f"result too large for one "
                                     f"protocol frame: {error}",
                            "error_type": "FrameTooLarge",
                            "seconds": elapsed})
                        self._on_event(
                            "failed", f"{name}: result too large")
                accepted = not reply.get("stale")
                if self._trace.enabled:
                    self._trace.emit(
                        "finish", lease=lease_id, name=str(name),
                        worker=self._worker_label, outcome=outcome,
                        accepted=accepted,
                        seconds=round(elapsed, 9))
                if accepted:
                    if outcome == "ok":
                        self._on_event(
                            "executed",
                            f"{name} ({1000 * elapsed:.0f} ms)")
                    self.jobs_executed += 1
                    idle_since = None
                else:
                    self.jobs_stale += 1
                    self._on_event(
                        "stale",
                        f"{name}: outcome arrived after the lease "
                        f"was superseded")
        finally:
            self.close()
            self._trace.close()
        return self.jobs_executed


# ----------------------------------------------------------------------
# The executor-side client
# ----------------------------------------------------------------------
class _ClusterStream(ExecutionStream):
    """One submitted batch, streaming back from the job server."""

    def __init__(self, executor: "ClusterExecutor", jobs: Sequence):
        self._endpoint = executor.endpoint
        self._timeout = executor.timeout
        self._total = len(jobs)
        self._delivered: set[int] = set()
        self._terminal = False
        self._sock: socket.socket | None = None
        if not jobs:
            self._terminal = True
            return
        sock: socket.socket | None = None
        try:
            sock = socket.create_connection(
                (executor.host, executor.port), timeout=self._timeout)
            sock.settimeout(self._timeout)
            # Hints are advisory metadata for the server's scheduler
            # and tracer (names + size estimates); payloads stay
            # opaque, so this is the only job shape the server sees.
            hints = [{"name": str(getattr(job, "name", "")) or None,
                      "size": job_size_hint(job)} for job in jobs]
            send_frame(sock, {"op": "submit",
                              "jobs": [encode_payload(job)
                                       for job in jobs],
                              "hints": hints})
            ack = recv_frame(sock)
        except FrameTooLargeError as error:
            _close_socket(sock)
            raise BatchError(
                f"batch of {len(jobs)} job(s) does not fit one submit "
                f"frame ({error}); split the batch")
        except OSError as error:
            if sock is not None:
                _close_socket(sock)
            raise BatchError(
                f"cannot reach job server {self._endpoint}: {error} "
                f"(is `repro-agu job-serve` running?)")
        except BatchError as error:
            _close_socket(sock)
            raise BatchError(
                f"job server {self._endpoint} broke protocol during "
                f"submit: {error}")
        if ack is None or not ack.get("ok"):
            _close_socket(sock)
            raise BatchError(
                f"job server {self._endpoint} rejected the batch: "
                f"{(ack or {}).get('error', 'connection closed')}")
        self._sock = sock
        executor.n_workers = max(1, int(ack.get("workers", 1)))
        if int(ack.get("workers", 0)) < 1:
            # Compute is not optional, but an empty fleet is not an
            # error either -- workers may still be starting.  Say so
            # instead of waiting in silence.
            _LOGGER.warning(
                "job server %s has no connected workers yet; the "
                "batch will wait until `repro-agu worker %s` "
                "processes join", self._endpoint, self._endpoint)

    def _close(self) -> None:
        if self._sock is not None:
            _close_socket(self._sock)
            self._sock = None

    def _next_event(self) -> dict:
        assert self._sock is not None
        try:
            frame = recv_frame(self._sock)
        except socket.timeout:
            raise BatchError(
                f"job server {self._endpoint} went silent (no result "
                f"or heartbeat within {self._timeout:.0f} s)")
        except OSError as error:
            raise BatchError(
                f"lost the job server {self._endpoint}: {error}")
        if frame is None:
            raise BatchError(
                f"job server {self._endpoint} closed the connection "
                f"mid-batch")
        return frame

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        while not self._terminal:
            event = self._next_event()
            kind = event.get("event")
            if kind == "heartbeat":
                continue
            if kind == "result":
                index = int(event["index"])
                result = decode_payload(event["result"])
                self._delivered.add(index)
                yield index, result
                continue
            if kind == "failed":
                index = int(event.get("index") or 0)
                raise JobFailure(index, RemoteJobError(
                    f"{event.get('error_type', 'Exception')}: "
                    f"{event.get('error', 'unknown error')}",
                    error_type=str(event.get("error_type",
                                             "Exception"))))
            if kind in ("done", "aborted"):
                self._terminal = True
                self._close()
                return
            raise BatchError(
                f"job server {self._endpoint} sent an unknown event "
                f"{kind!r}")

    def shutdown(self) -> dict[int, Any]:
        if self._terminal or self._sock is None:
            self._close()
            return {}
        salvage: dict[int, Any] = {}
        try:
            # Ask the server to stop scheduling, then drain: leased
            # jobs finish on their workers and stream back, exactly
            # like a local pool's shutdown(wait=True).
            send_frame(self._sock, {"op": "cancel"})
            while True:
                event = self._next_event()
                kind = event.get("event")
                if kind == "result":
                    index = int(event["index"])
                    if index not in self._delivered:
                        salvage[index] = decode_payload(event["result"])
                        self._delivered.add(index)
                elif kind in ("done", "aborted"):
                    break
        except (OSError, BatchError):
            # Teardown is best-effort: a dead server mid-drain costs
            # the salvage, never displaces the propagating error.
            _LOGGER.warning(
                "lost the job server while draining a cancelled "
                "batch; in-flight results were not salvaged")
        finally:
            self._terminal = True
            self._close()
        return salvage


class ClusterExecutor(Executor):
    """Run batches on a multi-host worker fleet behind a job server.

    The :class:`~repro.batch.engine.Executor` backend of
    ``open_executor("tcp://HOST:PORT")`` and the CLI's ``--executor``:
    jobs are pickled to the server, leased to ``repro-agu worker``
    processes anywhere on the network, and results stream back in
    completion order.  Failure semantics match the local backends
    exactly -- a failing job aborts the batch with the engine's
    job-attributed :class:`~repro.errors.BatchError` after in-flight
    survivors finish and persist, and a worker death mid-job is
    invisible (the server requeues the lease).

    Unlike the cache client, a dead *server* fails the batch loudly:
    compute is not optional.

    Example::

        >>> from repro.batch.engine import BatchCompiler
        >>> compiler = BatchCompiler(              # doctest: +SKIP
        ...     executor="tcp://job-host:8742")
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        if not 1 <= int(port) <= 65535:
            raise BatchError(
                f"job server port must be in 1..65535, got {port}")
        if timeout <= 0:
            raise BatchError(
                f"timeout must be > 0 seconds, got {timeout}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        #: Updated per run from the server's connected-worker count.
        self.n_workers = 1

    @property
    def endpoint(self) -> str:
        """This executor's server as a ``tcp://`` spec."""
        return format_endpoint(self.host, self.port)

    def __repr__(self) -> str:
        return f"ClusterExecutor({self.endpoint!r})"

    def run(self, jobs: Sequence) -> ExecutionStream:
        """Submit ``jobs`` to the server; returns the result stream."""
        return _ClusterStream(self, jobs)


#: ``?key=value`` options ``tcp://`` executor specs may carry.
_EXECUTOR_OPTIONS = {"timeout": float}


def cluster_executor_from_spec(text: str) -> ClusterExecutor:
    """``tcp://HOST:PORT[?timeout=S]`` -> a :class:`ClusterExecutor`
    (what :func:`~repro.batch.engine.open_executor` delegates to).
    The spec grammar is the batch layer's shared
    :func:`~repro.batch.service.parse_endpoint`."""
    host, port, options = parse_endpoint(text, _EXECUTOR_OPTIONS)
    return ClusterExecutor(host, port, **options)
