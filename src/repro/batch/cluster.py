"""Distributed execution for the batch engine: multi-host workers.

The cache service (:mod:`repro.batch.service`) made *results* shareable
across hosts; this module shares the *compute*.  Three pieces close the
loop:

* :class:`JobServer` -- a TCP broker (the ``repro-agu job-serve``
  subcommand) that queues picklable batch jobs and leases them out,
  first come first served, to any number of connected workers.  Leases
  carry a timeout: a worker that dies mid-job (its connection drops) or
  goes silent (the lease expires) gets its job requeued and re-leased
  to the next free worker, so a batch survives worker loss.  The
  server never unpickles a job -- payloads are routed as opaque bytes
  between the client that submitted them and the worker that executes
  them.
* :class:`Worker` -- the execution loop behind the ``repro-agu
  worker`` subcommand: connect, lease, execute via the engine's
  standard :func:`~repro.batch.engine.execute_any` job contract,
  stream the result back, repeat.
* :class:`ClusterExecutor` -- the client backend that plugs the fleet
  into :class:`~repro.batch.engine.BatchCompiler` through the
  :class:`~repro.batch.engine.Executor` seam
  (``open_executor("tcp://host:port")`` / ``--executor`` on the CLI),
  so every experiment runner gains multi-host execution unchanged.

Wire protocol: the PR-4 length-prefixed JSON framing of
:mod:`repro.batch.service` (:func:`~repro.batch.service.send_frame` /
:func:`~repro.batch.service.recv_frame`).  Jobs and results travel as
base64-encoded pickles inside the JSON frames; requests carry an
``op`` (``ping``, ``status``, ``submit``, ``cancel``, ``lease``,
``complete``, ``fail``), and a submitted batch's results are *pushed*
to the client as ``event`` frames (``result``, ``failed``,
``heartbeat``, and the terminals ``done``/``aborted``) in completion
order.

Failure philosophy: compute, unlike the cache, is not optional -- a
dead or unreachable job server fails the batch loudly with a
:class:`~repro.errors.BatchError` (no silent degradation).  A job
whose *execution* raises is never requeued (a deterministic failure
would loop forever); the failure streams back and aborts the batch
with the engine's standard job attribution, after in-flight survivors
finish and persist.  A job whose *worker* dies is requeued up to
``max_attempts`` times, then reported as failed.

Security note: workers unpickle and execute whatever the server hands
them, and the server relays whatever clients submit.  Run the trio
only on hosts and networks you trust with arbitrary code execution --
the same trust the fleet already grants a shared filesystem or a
deployment system.
"""

from __future__ import annotations

import base64
import itertools
import logging
import pickle
import queue
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.batch.engine import (
    ExecutionStream,
    Executor,
    JobFailure,
    execute_any,
)
from repro.batch.service import (
    FrameTooLargeError,
    _close_socket,
    format_endpoint,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.errors import BatchError

_LOGGER = logging.getLogger("repro.batch.cluster")

#: Hard cap on one blocking lease wait, so a worker poll can never pin
#: a handler thread indefinitely (workers re-poll in a loop anyway).
MAX_LEASE_WAIT = 30.0


def encode_payload(obj: Any) -> str:
    """A picklable object as a base64 string (frame-embeddable)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Rebuild an object from :func:`encode_payload` output."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class RemoteJobError(BatchError):
    """A job failed on a remote worker.

    Carries the worker-side exception's type name and message (the
    traceback object itself cannot cross the wire); the engine wraps
    this into its standard job-attributed
    :class:`~repro.errors.BatchError`, so callers see the same failure
    shape as for a local run.
    """

    def __init__(self, message: str, *, error_type: str = "Exception"):
        super().__init__(message)
        self.error_type = error_type


@dataclass
class ClusterStats:
    """Lifetime counters of one :class:`JobServer` (monotonic)."""

    #: Batches accepted from clients.
    batches: int = 0
    #: Jobs accepted across all batches.
    jobs: int = 0
    #: Jobs that completed with a result.
    completed: int = 0
    #: Jobs that failed on a worker (execution raised).
    failed: int = 0
    #: Leases requeued after a worker death or lease expiry.
    requeued: int = 0
    #: Jobs dropped unrun (batch cancelled, failed, or abandoned).
    dropped: int = 0

    def __str__(self) -> str:
        return (f"{self.batches} batch(es), {self.jobs} job(s): "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.requeued} requeued, {self.dropped} dropped")


@dataclass
class _Lease:
    """One leased job: who may complete it, and since when.

    Carries the opaque job payload so a requeue (worker death, lease
    expiry) can put the job back on the ready queue without help from
    the submitting client.
    """

    lease_id: str
    batch_id: str
    index: int
    payload: str
    owner: object
    leased_at: float


@dataclass
class _Batch:
    """Server-side state of one submitted batch."""

    batch_id: str
    #: Opaque job payloads by index (only unleased ones remain here).
    payloads: dict[int, str]
    #: Indices not yet resolved (result, failure, or drop).
    unresolved: set[int]
    #: Events to push to the submitting client, in completion order.
    events: queue.Queue
    #: ``running`` -> ``failing`` (a job failed) / ``cancelled`` (the
    #: client asked to stop) / ``dead`` (the client connection is
    #: gone; in-flight results are discarded).
    state: str = "running"
    #: Lease attempts per index (requeue bookkeeping).
    attempts: dict[int, int] = field(default_factory=dict)


class _JobRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a submitting client or a leasing worker."""

    def handle(self) -> None:
        server: JobServer = self.server.job_server  # type: ignore
        server.track_connection(self.request, alive=True)
        if server.idle_timeout is not None:
            # A stalled or half-open peer must not pin this thread
            # forever.  For workers the recv gap spans one job's
            # execution, so idle_timeout must be sized above the
            # slowest job (a dropped slow worker costs duplicate
            # compute via release_worker, never correctness).  Client
            # result streams are exempt from the read side of this
            # timeout (see watch_for_cancel); their stall detector is
            # the heartbeat send.
            self.request.settimeout(server.idle_timeout)
        try:
            try:
                first = recv_frame(self.request)
            except (BatchError, OSError):
                return
            if first is None:
                return
            if first.get("op") == "submit":
                self._serve_client(server, first)
            else:
                self._serve_worker(server, first)
        finally:
            server.track_connection(self.request, alive=False)

    # -- worker connections --------------------------------------------
    def _serve_worker(self, server: "JobServer", request: dict) -> None:
        owner = self.request  # connection identity for lease ownership
        try:
            while True:
                try:
                    response = server.handle_worker_request(request,
                                                            owner)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the error goes back to the worker as an error frame, keeping the connection alive
                except Exception as error:
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}"}
                try:
                    send_frame(self.request, response)
                except (BatchError, OSError):
                    return
                try:
                    request = recv_frame(self.request)
                except (BatchError, OSError):
                    return
                if request is None:
                    return
        finally:
            # A vanished worker must not strand its leases: requeue
            # them so another worker picks the jobs up.
            server.release_worker(owner)

    # -- client connections --------------------------------------------
    def _serve_client(self, server: "JobServer", submit: dict) -> None:
        jobs = submit.get("jobs")
        if not isinstance(jobs, list) or not jobs or not all(
                isinstance(payload, str) for payload in jobs):
            try:
                send_frame(self.request, {
                    "ok": False, "error": "'submit' needs a non-empty "
                                          "list of job payloads"})
            except (BatchError, OSError):
                pass
            return
        batch = server.create_batch(jobs)
        try:
            send_frame(self.request, {
                "ok": True, "batch": batch.batch_id, "n_jobs": len(jobs),
                "workers": server.n_connected_workers})
        except (BatchError, OSError):
            server.kill_batch(batch.batch_id)
            return

        # The client may send "cancel" (or just hang up) while results
        # are being pushed; a side thread watches for both.
        def watch_for_cancel() -> None:
            try:
                while True:
                    try:
                        frame = recv_frame(self.request)
                    except TimeoutError:
                        # An idle *client* is healthy: it sends nothing
                        # while results stream back, so the idle
                        # timeout must not kill its batch.  A truly
                        # dead client is caught by the heartbeat send
                        # in _push_events filling the socket buffer.
                        continue
                    if frame is None:
                        break
                    if frame.get("op") == "cancel":
                        server.cancel_batch(batch.batch_id)
            except (BatchError, OSError):
                pass
            # EOF or a broken pipe: the client cannot receive results
            # anymore, so in-flight completions are discarded.
            server.kill_batch(batch.batch_id)

        watcher = threading.Thread(target=watch_for_cancel,
                                   name="repro-job-client-watch",
                                   daemon=True)
        watcher.start()
        self._push_events(server, batch)

    def _push_events(self, server: "JobServer", batch: _Batch) -> None:
        while True:
            try:
                event = batch.events.get(timeout=server.heartbeat)
            except queue.Empty:
                event = {"event": "heartbeat"}
            try:
                send_frame(self.request, event)
            except FrameTooLargeError:
                # One oversized result must not desync the stream (no
                # bytes were sent): report that job as failed instead.
                try:
                    send_frame(self.request, {
                        "event": "failed", "index": event.get("index"),
                        "error": "result too large for one protocol "
                                 "frame", "error_type": "FrameTooLarge"})
                except (BatchError, OSError):
                    server.kill_batch(batch.batch_id)
                    return
            except (BatchError, OSError):
                server.kill_batch(batch.batch_id)
                return
            if event.get("event") in ("done", "aborted"):
                return


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _TcpServer6(_TcpServer):
    address_family = socket.AF_INET6


class JobServer:
    """Queue batch jobs and lease them to a fleet of workers over TCP.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` / :attr:`endpoint`).
    lease_timeout:
        Seconds a worker may hold a lease before the job is presumed
        lost and requeued.  Size it above the slowest expected job; a
        too-small value costs duplicate compute, never correctness
        (stale completions are ignored).
    max_attempts:
        Lease attempts per job before the server gives up and reports
        the job failed (guards against a job that kills every worker
        it touches).
    heartbeat:
        Quiet-connection keepalive interval of the client result
        stream.
    idle_timeout:
        Seconds a connection may sit idle between frames before the
        server closes it (``None`` disables the timeout).  Size it
        above the slowest expected job *and* above ``lease_timeout``:
        a worker is silent for the whole run of a job, and dropping a
        slow-but-healthy worker costs duplicate compute (its leases
        requeue on disconnect) though never correctness.  Client
        result streams are not subject to the read timeout -- an idle
        submitting client is normal; a dead one is detected when the
        heartbeat send backs up.

    Run blocking with :meth:`serve_forever` (the CLI does) or on a
    background thread via :meth:`start` / the context-manager form
    (tests and benchmarks do).

    Example::

        >>> from repro.batch.cluster import JobServer, Worker
        >>> from repro.batch.engine import BatchCompiler
        >>> with JobServer() as server:           # doctest: +SKIP
        ...     # start `repro-agu worker tcp://...` processes, then:
        ...     compiler = BatchCompiler(executor=server.endpoint)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = 60.0, max_attempts: int = 3,
                 heartbeat: float = 2.0,
                 idle_timeout: float | None = 600.0):
        if lease_timeout <= 0:
            raise BatchError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout}")
        if max_attempts < 1:
            raise BatchError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if idle_timeout is not None and not idle_timeout > 0:
            raise BatchError(
                f"idle_timeout must be > 0 seconds or None, got "
                f"{idle_timeout}")
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.heartbeat = float(heartbeat)
        self.idle_timeout = idle_timeout
        self.stats = ClusterStats()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._batches: dict[str, _Batch] = {}
        self._ready: deque[tuple[str, int]] = deque()
        self._leases: dict[str, _Lease] = {}
        self._workers: set[object] = set()
        self._ids = itertools.count(1)
        server_class = _TcpServer6 if ":" in host else _TcpServer
        self._server = server_class((host, port), _JobRequestHandler)
        self._server.job_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._reaper: threading.Thread | None = None
        # An Event, not a bool: the reaper thread polls this as its
        # run condition while start/shutdown flip it from the
        # controlling thread -- the flag itself must be race-free.
        self._serving = threading.Event()
        self._closing = False
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()

    # -- addressing ----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The ``tcp://host:port`` spec clients and workers connect to
        (IPv6 hosts come bracketed, ready for ``open_executor``)."""
        return format_endpoint(*self.address)

    @property
    def n_connected_workers(self) -> int:
        """Workers currently connected (lease loops, not leases)."""
        with self._lock:
            return len(self._workers)

    # -- connection bookkeeping (mirrors CacheServer) ------------------
    def track_connection(self, sock: socket.socket, alive: bool) -> None:
        """Handler bookkeeping so :meth:`shutdown` can close live
        connections; a connection registering after shutdown started
        is closed on the spot."""
        with self._connections_lock:
            if not alive:
                self._connections.discard(sock)
                return
            if not self._closing:
                self._connections.add(sock)
                return
        _close_socket(sock)

    def register_worker(self, owner: object) -> None:
        """Note a live worker connection.  Called on the first
        ``lease`` op, not on connect, so diagnostic connections
        (``ping``/``status`` probes) never inflate the worker count
        reported to clients."""
        with self._lock:
            self._workers.add(owner)

    def release_worker(self, owner: object) -> None:
        """Worker connection gone: requeue every lease it still held."""
        with self._lock:
            self._workers.discard(owner)
            stranded = [lease for lease in self._leases.values()
                        if lease.owner is owner]
            for lease in stranded:
                self._requeue_locked(lease, reason="worker disconnected")

    # -- the scheduler (all under self._lock) --------------------------
    def create_batch(self, payloads: Sequence[str]) -> _Batch:
        """Register a submitted batch and queue its jobs FIFO."""
        with self._lock:
            batch_id = f"b{next(self._ids)}"
            batch = _Batch(
                batch_id=batch_id,
                payloads=dict(enumerate(payloads)),
                unresolved=set(range(len(payloads))),
                events=queue.Queue())
            self._batches[batch_id] = batch
            self._ready.extend((batch_id, index)
                               for index in range(len(payloads)))
            self.stats.batches += 1
            self.stats.jobs += len(payloads)
            self._work.notify_all()
            return batch

    def _pop_ready_locked(self) -> tuple[_Batch, int] | None:
        while self._ready:
            batch_id, index = self._ready.popleft()
            batch = self._batches.get(batch_id)
            if batch is None or batch.state != "running" \
                    or index not in batch.payloads:
                continue
            return batch, index
        return None

    def lease(self, owner: object, wait: float) -> dict:
        """Lease the next queued job to ``owner``; blocks up to
        ``wait`` seconds (capped) when the queue is empty."""
        deadline = time.monotonic() + max(0.0, min(wait, MAX_LEASE_WAIT))
        with self._lock:
            while True:
                entry = self._pop_ready_locked()
                if entry is not None:
                    batch, index = entry
                    payload = batch.payloads.pop(index)
                    lease = _Lease(
                        lease_id=f"l{next(self._ids)}",
                        batch_id=batch.batch_id, index=index,
                        payload=payload, owner=owner,
                        leased_at=time.monotonic())
                    self._leases[lease.lease_id] = lease
                    batch.attempts[index] = \
                        batch.attempts.get(index, 0) + 1
                    return {"ok": True, "lease": lease.lease_id,
                            "batch": batch.batch_id, "index": index,
                            "job": payload}
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return {"ok": True, "idle": True}
                self._work.wait(remaining)

    def _take_lease_locked(self, lease_id: str) -> _Lease | None:
        return self._leases.pop(lease_id, None)

    def complete(self, lease_id: str, result_payload: str) -> dict:
        """Accept a worker's result; stale leases are acknowledged but
        ignored (the job was requeued, or its batch is gone)."""
        with self._lock:
            lease = self._take_lease_locked(lease_id)
            if lease is None:
                return {"ok": True, "stale": True}
            batch = self._batches.get(lease.batch_id)
            if batch is None or lease.index not in batch.unresolved:
                return {"ok": True, "stale": True}
            self.stats.completed += 1
            if batch.state != "dead":
                batch.events.put({"event": "result",
                                  "index": lease.index,
                                  "result": result_payload})
            self._resolve_locked(batch, lease.index)
            return {"ok": True}

    def fail(self, lease_id: str, error: str, error_type: str) -> dict:
        """Accept a worker's job-failure report: the batch stops
        scheduling new jobs, in-flight ones drain, queued ones drop."""
        with self._lock:
            lease = self._take_lease_locked(lease_id)
            if lease is None:
                return {"ok": True, "stale": True}
            batch = self._batches.get(lease.batch_id)
            if batch is None or lease.index not in batch.unresolved:
                return {"ok": True, "stale": True}
            self.stats.failed += 1
            if batch.state == "running":
                batch.state = "failing"
            self._drop_queued_locked(batch)
            if batch.state != "dead":
                batch.events.put({"event": "failed",
                                  "index": lease.index,
                                  "error": error,
                                  "error_type": error_type})
            self._resolve_locked(batch, lease.index)
            return {"ok": True}

    def cancel_batch(self, batch_id: str) -> None:
        """Client-requested stop: queued jobs drop, leased jobs finish
        and stream back (the client drains them for salvage)."""
        with self._lock:
            batch = self._batches.get(batch_id)
            if batch is None:
                return
            if batch.state == "running":
                batch.state = "cancelled"
            self._drop_queued_locked(batch)
            self._check_terminal_locked(batch)

    def kill_batch(self, batch_id: str) -> None:
        """The client is gone: drop queued jobs and discard whatever
        the in-flight leases still produce."""
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is None:
                return
            batch.state = "dead"
            self._drop_queued_locked(batch)
            # Unblock a push loop waiting on the events queue.
            batch.events.put({"event": "aborted"})

    def _drop_queued_locked(self, batch: _Batch) -> None:
        for index in list(batch.payloads):
            del batch.payloads[index]
            batch.unresolved.discard(index)
            self.stats.dropped += 1

    def _resolve_locked(self, batch: _Batch, index: int) -> None:
        batch.unresolved.discard(index)
        self._check_terminal_locked(batch)

    def _check_terminal_locked(self, batch: _Batch) -> None:
        if batch.unresolved:
            return
        terminal = "done" if batch.state == "running" else "aborted"
        if batch.state != "dead":
            batch.events.put({"event": terminal})
        self._batches.pop(batch.batch_id, None)

    def _requeue_locked(self, lease: _Lease,
                        reason: str) -> None:
        if self._leases.pop(lease.lease_id, None) is None:
            return  # already resolved or requeued by another path
        batch = self._batches.get(lease.batch_id)
        if batch is None or lease.index not in batch.unresolved \
                or lease.index in batch.payloads:
            return
        if batch.state != "running":
            # A draining batch has no use for a re-run: resolve the
            # slot as dropped so the terminal event can fire.
            self.stats.dropped += 1
            self._resolve_locked(batch, lease.index)
            return
        if batch.attempts.get(lease.index, 0) >= self.max_attempts:
            _LOGGER.warning(
                "giving up on job %d of batch %s after %d lease(s)",
                lease.index, batch.batch_id, self.max_attempts)
            self.stats.failed += 1
            batch.state = "failing"
            self._drop_queued_locked(batch)
            batch.events.put({
                "event": "failed", "index": lease.index,
                "error": f"job lost {self.max_attempts} worker(s) "
                         f"({reason}); giving up",
                "error_type": "WorkerLost"})
            self._resolve_locked(batch, lease.index)
            return
        _LOGGER.info("requeueing job %d of batch %s (%s)",
                     lease.index, batch.batch_id, reason)
        self.stats.requeued += 1
        # Recover the payload from the lease-time snapshot: payloads
        # are popped at lease time, so stash it back via the lease.
        batch.payloads[lease.index] = lease.payload
        self._ready.appendleft((lease.batch_id, lease.index))
        self._work.notify()

    def reap_expired_leases(self) -> int:
        """Requeue every lease older than ``lease_timeout``; returns
        how many were reaped (the reaper thread calls this; tests may
        call it directly for determinism)."""
        now = time.monotonic()
        with self._lock:
            expired = [lease for lease in self._leases.values()
                       if now - lease.leased_at > self.lease_timeout]
            for lease in expired:
                self._requeue_locked(lease, reason="lease expired")
            return len(expired)

    # -- the worker-facing protocol ------------------------------------
    def handle_worker_request(self, request: dict,
                              owner: object) -> dict:
        """Answer one worker/diagnostic frame (exposed for protocol
        tests)."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "server": "repro-agu job-serve"}
        if op == "status":
            with self._lock:
                queued = sum(
                    1 for batch_id, index in self._ready
                    if batch_id in self._batches
                    and index in self._batches[batch_id].payloads)
                return {"ok": True, "workers": len(self._workers),
                        "queued": queued, "leased": len(self._leases),
                        "batches": len(self._batches),
                        "completed": self.stats.completed,
                        "failed": self.stats.failed,
                        "requeued": self.stats.requeued}
        if op == "lease":
            wait = request.get("wait", 0.0)
            if not isinstance(wait, (int, float)) or wait < 0:
                return {"ok": False,
                        "error": "'lease' needs a non-negative 'wait'"}
            self.register_worker(owner)
            return self.lease(owner, float(wait))
        if op == "complete":
            lease_id = request.get("lease")
            result = request.get("result")
            if not isinstance(lease_id, str) \
                    or not isinstance(result, str):
                return {"ok": False,
                        "error": "'complete' needs a string 'lease' "
                                 "and a string 'result'"}
            return self.complete(lease_id, result)
        if op == "fail":
            lease_id = request.get("lease")
            if not isinstance(lease_id, str):
                return {"ok": False,
                        "error": "'fail' needs a string 'lease'"}
            return self.fail(lease_id,
                             str(request.get("error", "unknown error")),
                             str(request.get("error_type", "Exception")))
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- lifecycle -----------------------------------------------------
    def _start_reaper(self) -> None:
        # repro-lint: disable=LOCK-DISCIPLINE -- _reaper is a lifecycle attr; only start/serve_forever call this, on the controlling thread
        if self._reaper is not None:
            return

        def reap_loop() -> None:
            interval = max(0.1, min(1.0, self.lease_timeout / 4))
            while self._serving.is_set():
                time.sleep(interval)
                try:
                    self.reap_expired_leases()
                # repro-lint: disable=BROAD-EXCEPT -- the reaper must outlive any one bad iteration; the failure is logged, not hidden
                except Exception:  # pragma: no cover - belt and braces
                    _LOGGER.exception("lease reaper iteration failed")

        self._reaper = threading.Thread(target=reap_loop,
                                        name="repro-job-reaper",
                                        daemon=True)
        self._reaper.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving.set()
        self._start_reaper()
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "JobServer":
        """Serve on a daemon background thread; returns ``self``."""
        self._serving.set()
        self._start_reaper()
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; start/shutdown run on one controlling thread
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-job-server", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving: close the listener and every live connection
        (clients see the drop as a loud batch failure, workers exit
        their loops); idempotent."""
        if self._serving.is_set():
            self._server.shutdown()
            self._serving.clear()
        self._server.server_close()
        with self._connections_lock:
            self._closing = True
            live, self._connections = self._connections, set()
        for sock in live:
            _close_socket(sock)
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; joining under a lock handlers take would deadlock
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # repro-lint: disable=LOCK-DISCIPLINE -- _reaper join, same single-controlling-thread lifecycle as _thread above
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
class Worker:
    """Lease-execute-report loop against a :class:`JobServer`.

    The execution contract is exactly the engine's: a leased job runs
    through :func:`~repro.batch.engine.execute_any` (so ``BatchJob``
    compilation units, statistical grid points, and experiment points
    all work), its result streams back pickled, and an execution
    exception is reported as a job failure -- never retried, never
    fatal to the worker.

    Parameters
    ----------
    host, port:
        The job server to serve.
    poll:
        Seconds one blocking lease request waits server-side before
        answering "idle" (the worker then immediately re-polls).
    timeout:
        Per-request socket timeout; must exceed ``poll``.
    max_jobs:
        Exit after executing this many jobs (``None`` = run forever).
    idle_exit:
        Exit after this many consecutive seconds without work
        (``None`` = run forever); what CI smokes and tests use.
    connect_retry:
        Seconds to keep retrying the initial connection, so workers
        may start before their server.
    on_event:
        Optional callback ``(kind, detail)`` for per-job logging
        (kinds: ``connected``, ``executed``, ``failed``, ``idle``).

    Example::

        >>> from repro.batch.cluster import JobServer, Worker
        >>> with JobServer() as server:
        ...     worker = Worker(*server.address, max_jobs=0)
        ...     worker.run()
        0
    """

    def __init__(self, host: str, port: int, *, poll: float = 2.0,
                 timeout: float = 30.0, max_jobs: int | None = None,
                 idle_exit: float | None = None,
                 connect_retry: float = 10.0,
                 on_event: Callable[[str, str], None] | None = None):
        if not 1 <= int(port) <= 65535:
            raise BatchError(
                f"job server port must be in 1..65535, got {port}")
        if timeout <= poll:
            raise BatchError(
                f"timeout ({timeout}) must exceed poll ({poll})")
        self.host = host
        self.port = int(port)
        self.poll = float(poll)
        self.timeout = float(timeout)
        self.max_jobs = max_jobs
        self.idle_exit = idle_exit
        self.connect_retry = float(connect_retry)
        self._on_event = on_event or (lambda kind, detail: None)
        self._sock: socket.socket | None = None
        self._stopping = threading.Event()
        #: Jobs executed so far (readable mid-run and after interrupts).
        self.jobs_executed = 0

    @property
    def endpoint(self) -> str:
        """The served job server as a ``tcp://`` spec."""
        return format_endpoint(self.host, self.port)

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_retry
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                sock.settimeout(self.timeout)
                return sock
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise BatchError(
                        f"cannot reach job server {self.endpoint}: "
                        f"{error}")
                time.sleep(0.2)

    def _request(self, message: dict) -> dict:
        if self._sock is None:
            self._sock = self._connect()
            self._on_event("connected", self.endpoint)
        try:
            send_frame(self._sock, message)
            response = recv_frame(self._sock)
        except FrameTooLargeError:
            # A local serialization limit: no bytes hit the socket,
            # the connection is still in protocol sync.  Callers (the
            # oversized-result path in run()) decide what to drop;
            # this is never "the server is gone".
            raise
        except (OSError, BatchError) as error:
            _close_socket(self._sock)
            self._sock = None
            raise BatchError(
                f"lost the job server {self.endpoint}: {error}")
        if response is None:
            _close_socket(self._sock)
            self._sock = None
            raise BatchError(
                f"job server {self.endpoint} closed the connection")
        if not response.get("ok"):
            raise BatchError(
                f"job server {self.endpoint} rejected {message.get('op')!r}: "
                f"{response.get('error')}")
        return response

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._sock is not None:
            _close_socket(self._sock)
            self._sock = None

    def stop(self) -> None:
        """Ask :meth:`run` to exit after its in-flight request
        (thread-safe; what the CLI's signal handler calls)."""
        self._stopping.set()

    def run(self) -> int:
        """Serve until a stop condition; returns jobs executed.

        Raises :class:`~repro.errors.BatchError` when the server goes
        away (after the initial ``connect_retry`` grace) -- unless
        :meth:`stop` was requested, which exits quietly.
        """
        idle_since: float | None = None
        try:
            while not self._stopping.is_set() \
                    and (self.max_jobs is None
                         or self.jobs_executed < self.max_jobs):
                try:
                    response = self._request({"op": "lease",
                                              "wait": self.poll})
                except BatchError:
                    if self._stopping.is_set():
                        break
                    raise
                if response.get("idle"):
                    self._on_event("idle", "")
                    now = time.monotonic()
                    idle_since = idle_since if idle_since is not None \
                        else now
                    if self.idle_exit is not None \
                            and now - idle_since >= self.idle_exit:
                        break
                    continue
                idle_since = None
                lease_id = response["lease"]
                job = decode_payload(response["job"])
                name = getattr(job, "name", "<unnamed>")
                started = time.perf_counter()
                try:
                    result = execute_any(job)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the failure is reported to the job server, which fails the batch with attribution
                except Exception as error:
                    self._request({
                        "op": "fail", "lease": lease_id,
                        "error": str(error),
                        "error_type": type(error).__name__})
                    self._on_event(
                        "failed",
                        f"{name}: {type(error).__name__}: {error}")
                else:
                    try:
                        self._request({
                            "op": "complete", "lease": lease_id,
                            "result": encode_payload(result)})
                    except FrameTooLargeError as error:
                        # The result, not the server, is the problem:
                        # report the job failed instead of dying and
                        # taking the next worker down the same way.
                        self._request({
                            "op": "fail", "lease": lease_id,
                            "error": f"result too large for one "
                                     f"protocol frame: {error}",
                            "error_type": "FrameTooLarge"})
                        self._on_event(
                            "failed", f"{name}: result too large")
                    else:
                        elapsed = time.perf_counter() - started
                        self._on_event(
                            "executed",
                            f"{name} ({1000 * elapsed:.0f} ms)")
                self.jobs_executed += 1
        finally:
            self.close()
        return self.jobs_executed


# ----------------------------------------------------------------------
# The executor-side client
# ----------------------------------------------------------------------
class _ClusterStream(ExecutionStream):
    """One submitted batch, streaming back from the job server."""

    def __init__(self, executor: "ClusterExecutor", jobs: Sequence):
        self._endpoint = executor.endpoint
        self._timeout = executor.timeout
        self._total = len(jobs)
        self._delivered: set[int] = set()
        self._terminal = False
        self._sock: socket.socket | None = None
        if not jobs:
            self._terminal = True
            return
        sock: socket.socket | None = None
        try:
            sock = socket.create_connection(
                (executor.host, executor.port), timeout=self._timeout)
            sock.settimeout(self._timeout)
            send_frame(sock, {"op": "submit",
                              "jobs": [encode_payload(job)
                                       for job in jobs]})
            ack = recv_frame(sock)
        except FrameTooLargeError as error:
            _close_socket(sock)
            raise BatchError(
                f"batch of {len(jobs)} job(s) does not fit one submit "
                f"frame ({error}); split the batch")
        except OSError as error:
            if sock is not None:
                _close_socket(sock)
            raise BatchError(
                f"cannot reach job server {self._endpoint}: {error} "
                f"(is `repro-agu job-serve` running?)")
        except BatchError as error:
            _close_socket(sock)
            raise BatchError(
                f"job server {self._endpoint} broke protocol during "
                f"submit: {error}")
        if ack is None or not ack.get("ok"):
            _close_socket(sock)
            raise BatchError(
                f"job server {self._endpoint} rejected the batch: "
                f"{(ack or {}).get('error', 'connection closed')}")
        self._sock = sock
        executor.n_workers = max(1, int(ack.get("workers", 1)))
        if int(ack.get("workers", 0)) < 1:
            # Compute is not optional, but an empty fleet is not an
            # error either -- workers may still be starting.  Say so
            # instead of waiting in silence.
            _LOGGER.warning(
                "job server %s has no connected workers yet; the "
                "batch will wait until `repro-agu worker %s` "
                "processes join", self._endpoint, self._endpoint)

    def _close(self) -> None:
        if self._sock is not None:
            _close_socket(self._sock)
            self._sock = None

    def _next_event(self) -> dict:
        assert self._sock is not None
        try:
            frame = recv_frame(self._sock)
        except socket.timeout:
            raise BatchError(
                f"job server {self._endpoint} went silent (no result "
                f"or heartbeat within {self._timeout:.0f} s)")
        except OSError as error:
            raise BatchError(
                f"lost the job server {self._endpoint}: {error}")
        if frame is None:
            raise BatchError(
                f"job server {self._endpoint} closed the connection "
                f"mid-batch")
        return frame

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        while not self._terminal:
            event = self._next_event()
            kind = event.get("event")
            if kind == "heartbeat":
                continue
            if kind == "result":
                index = int(event["index"])
                result = decode_payload(event["result"])
                self._delivered.add(index)
                yield index, result
                continue
            if kind == "failed":
                index = int(event.get("index") or 0)
                raise JobFailure(index, RemoteJobError(
                    f"{event.get('error_type', 'Exception')}: "
                    f"{event.get('error', 'unknown error')}",
                    error_type=str(event.get("error_type",
                                             "Exception"))))
            if kind in ("done", "aborted"):
                self._terminal = True
                self._close()
                return
            raise BatchError(
                f"job server {self._endpoint} sent an unknown event "
                f"{kind!r}")

    def shutdown(self) -> dict[int, Any]:
        if self._terminal or self._sock is None:
            self._close()
            return {}
        salvage: dict[int, Any] = {}
        try:
            # Ask the server to stop scheduling, then drain: leased
            # jobs finish on their workers and stream back, exactly
            # like a local pool's shutdown(wait=True).
            send_frame(self._sock, {"op": "cancel"})
            while True:
                event = self._next_event()
                kind = event.get("event")
                if kind == "result":
                    index = int(event["index"])
                    if index not in self._delivered:
                        salvage[index] = decode_payload(event["result"])
                        self._delivered.add(index)
                elif kind in ("done", "aborted"):
                    break
        except (OSError, BatchError):
            # Teardown is best-effort: a dead server mid-drain costs
            # the salvage, never displaces the propagating error.
            _LOGGER.warning(
                "lost the job server while draining a cancelled "
                "batch; in-flight results were not salvaged")
        finally:
            self._terminal = True
            self._close()
        return salvage


class ClusterExecutor(Executor):
    """Run batches on a multi-host worker fleet behind a job server.

    The :class:`~repro.batch.engine.Executor` backend of
    ``open_executor("tcp://HOST:PORT")`` and the CLI's ``--executor``:
    jobs are pickled to the server, leased to ``repro-agu worker``
    processes anywhere on the network, and results stream back in
    completion order.  Failure semantics match the local backends
    exactly -- a failing job aborts the batch with the engine's
    job-attributed :class:`~repro.errors.BatchError` after in-flight
    survivors finish and persist, and a worker death mid-job is
    invisible (the server requeues the lease).

    Unlike the cache client, a dead *server* fails the batch loudly:
    compute is not optional.

    Example::

        >>> from repro.batch.engine import BatchCompiler
        >>> compiler = BatchCompiler(              # doctest: +SKIP
        ...     executor="tcp://job-host:8742")
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        if not 1 <= int(port) <= 65535:
            raise BatchError(
                f"job server port must be in 1..65535, got {port}")
        if timeout <= 0:
            raise BatchError(
                f"timeout must be > 0 seconds, got {timeout}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        #: Updated per run from the server's connected-worker count.
        self.n_workers = 1

    @property
    def endpoint(self) -> str:
        """This executor's server as a ``tcp://`` spec."""
        return format_endpoint(self.host, self.port)

    def __repr__(self) -> str:
        return f"ClusterExecutor({self.endpoint!r})"

    def run(self, jobs: Sequence) -> ExecutionStream:
        """Submit ``jobs`` to the server; returns the result stream."""
        return _ClusterStream(self, jobs)


#: ``?key=value`` options ``tcp://`` executor specs may carry.
_EXECUTOR_OPTIONS = {"timeout": float}


def cluster_executor_from_spec(text: str) -> ClusterExecutor:
    """``tcp://HOST:PORT[?timeout=S]`` -> a :class:`ClusterExecutor`
    (what :func:`~repro.batch.engine.open_executor` delegates to).
    The spec grammar is the batch layer's shared
    :func:`~repro.batch.service.parse_endpoint`."""
    host, port, options = parse_endpoint(text, _EXECUTOR_OPTIONS)
    return ClusterExecutor(host, port, **options)
