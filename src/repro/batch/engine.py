"""The batch compilation engine: fan-out, caching, aggregation.

:class:`BatchCompiler` takes a list of :class:`~repro.batch.jobs.BatchJob`
and produces a :class:`BatchReport`.  Per job it either

* serves the per-kernel summary (:class:`JobResult`) straight from the
  result cache -- keyed by the content digest of
  :mod:`repro.batch.digest`, so *what* is compiled, not what it is
  called, decides -- or
* compiles through :func:`repro.core.pipeline.compile_kernel`, on the
  calling process (``n_workers=1``) or a ``concurrent.futures`` process
  pool, and stores the summary back into the cache.

Identical jobs inside one batch (same digest) are compiled once and
fanned back out to every slot, so a sweep that repeats a configuration
pays for it a single time.

The engine aggregates summaries, not full artifacts: a
:class:`JobResult` is a small picklable/JSON-able record, which is what
makes both the process pool and the on-disk cache cheap.  Callers that
need listings or simulation traces compile those kernels individually.

Two delivery modes share the cache/fan-out machinery:
:meth:`BatchCompiler.compile` gathers a whole batch into a
:class:`BatchReport`; :meth:`BatchCompiler.as_completed` /
:meth:`BatchCompiler.run_iter` stream results as workers finish, for
live progress and incremental persistence.  Both run any job type that
offers the ``execute()``/``payload()`` protocol -- compilation units
(:class:`~repro.batch.jobs.BatchJob`) and statistical grid points
(:class:`~repro.batch.jobs.StatisticalGridJob`) alike.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import as_completed as _futures_as_completed
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.agu.codegen import generate_unoptimized_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.batch.cache import InMemoryLRUCache
from repro.batch.digest import job_digest
from repro.batch.jobs import BatchJob, CacheableResult, jobs_from_suite
from repro.core.config import AllocatorConfig
from repro.core.pipeline import (
    DEFAULT_SIMULATION_ITERATIONS,
    compile_kernel,
)
from repro.errors import BatchError


@dataclass(frozen=True)
class JobResult(CacheableResult):
    """Per-job summary the engine aggregates (picklable, JSON-able)."""

    name: str
    digest: str
    n_accesses: int
    n_registers: int
    modify_range: int
    k_tilde: int | None
    n_registers_used: int
    #: Unit-cost address computations per iteration (the model).
    total_cost: int
    #: Static per-iteration overhead of the generated program.
    overhead_per_iteration: int
    #: Overhead of the unoptimized baseline, when the job asked for it.
    baseline_overhead: int | None
    #: Whether the simulator ran (and, see ``audit_ok``, agreed).
    simulated: bool
    #: Dynamic (simulated) cost equals the modelled cost.  Trivially
    #: true for unsimulated jobs; the simulator raises on mismatches,
    #: so a False here never actually reaches a report.
    audit_ok: bool
    wall_seconds: float
    from_cache: bool = False


def execute_job(job: BatchJob) -> JobResult:
    """Compile one job on the calling process (the pool's map target)."""
    started = time.perf_counter()
    kernel = job.kernel()
    iterations = job.n_iterations
    if iterations is not None and kernel.loop.n_iterations is not None:
        iterations = min(iterations, kernel.loop.n_iterations)
    artifacts = compile_kernel(kernel, job.spec, job.config,
                               run_simulation=job.run_simulation,
                               n_iterations=iterations)
    simulation = artifacts.simulation

    baseline_overhead: int | None = None
    if job.include_baseline:
        baseline = generate_unoptimized_code(kernel.pattern, job.spec)
        if job.run_simulation:
            count = iterations
            if count is None and kernel.loop.n_iterations is None:
                count = DEFAULT_SIMULATION_ITERATIONS
            baseline_overhead = simulate(
                baseline, kernel.loop, artifacts.layout,
                n_iterations=count).overhead_per_iteration
        else:
            baseline_overhead = baseline.overhead_per_iteration

    allocation = artifacts.allocation
    return JobResult(
        name=job.name,
        digest=job_digest(job),
        n_accesses=len(kernel.pattern),
        n_registers=job.spec.n_registers,
        modify_range=job.spec.modify_range,
        k_tilde=allocation.k_tilde,
        n_registers_used=allocation.n_registers_used,
        total_cost=allocation.total_cost,
        overhead_per_iteration=artifacts.program.overhead_per_iteration,
        baseline_overhead=baseline_overhead,
        simulated=simulation is not None,
        audit_ok=simulation is None
        or simulation.overhead_per_iteration == allocation.total_cost,
        wall_seconds=time.perf_counter() - started,
    )


def execute_any(job) -> Any:
    """Run one job of any supported type (the pool's submit target).

    Job classes that define their own ``execute()`` (e.g.
    :class:`~repro.batch.jobs.StatisticalGridJob`) run it; plain
    :class:`~repro.batch.jobs.BatchJob` compilation units go through
    :func:`execute_job`.
    """
    execute = getattr(job, "execute", None)
    if execute is not None:
        return execute()
    return execute_job(job)


def _result_type(job) -> type:
    """The result class a job's cache payloads rebuild into."""
    return getattr(job, "result_type", JobResult)


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one :meth:`BatchCompiler.compile` run."""

    results: tuple[JobResult, ...]
    n_workers: int
    elapsed_seconds: float

    @property
    def n_jobs(self) -> int:
        return len(self.results)

    @property
    def n_cache_hits(self) -> int:
        return sum(result.from_cache for result in self.results)

    @property
    def n_compiled(self) -> int:
        """Jobs that actually ran the pipeline (non-hits)."""
        return self.n_jobs - self.n_cache_hits

    @property
    def total_cost(self) -> int:
        return sum(result.total_cost for result in self.results)

    @property
    def total_accesses(self) -> int:
        return sum(result.n_accesses for result in self.results)

    @property
    def mean_overhead_per_iteration(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.overhead_per_iteration
                   for result in self.results) / self.n_jobs

    @property
    def all_audits_ok(self) -> bool:
        return all(result.audit_ok for result in self.results)

    @property
    def jobs_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.n_jobs / self.elapsed_seconds

    def result(self, name: str) -> JobResult:
        """The named job's summary."""
        for entry in self.results:
            if entry.name == name:
                return entry
        raise BatchError(f"no job named {name!r} in this report")

    def render(self, title: str = "batch compilation") -> str:
        """Fixed-width table of the per-job rows."""
        from repro.analysis.tables import Column, Table

        table = Table([
            Column("kernel", "kernel", align="<"),
            Column("N", "n"), Column("K", "k"), Column("M", "m"),
            Column("K~", "k_tilde"), Column("used", "used"),
            Column("cost/iter", "cost"),
            Column("base/iter", "baseline"),
            Column("sim", "sim", align="<"),
            Column("cached", "cached", align="<"),
            Column("ms", "ms", fmt=".1f"),
        ], title=title)
        for result in self.results:
            table.add_row(
                kernel=result.name, n=result.n_accesses,
                k=result.n_registers, m=result.modify_range,
                k_tilde=result.k_tilde, used=result.n_registers_used,
                cost=result.total_cost,
                baseline=result.baseline_overhead,
                sim="ok" if result.simulated and result.audit_ok
                else ("FAIL" if result.simulated else "-"),
                cached="hit" if result.from_cache else "-",
                ms=1000 * result.wall_seconds)
        return table.render()

    def summary(self) -> str:
        """One-line account: volume, cache effectiveness, throughput."""
        return (f"{self.n_jobs} job(s): {self.n_compiled} compiled, "
                f"{self.n_cache_hits} cache hit(s); total cost/iter "
                f"{self.total_cost}; {self.elapsed_seconds:.3f} s on "
                f"{self.n_workers} worker(s) "
                f"({self.jobs_per_second:.1f} jobs/s)")


class BatchCompiler:
    """Compile many kernels at once, with caching and parallelism.

    Parameters
    ----------
    cache:
        Any object with ``get(digest) -> dict | None`` and
        ``put(digest, dict)`` (see :mod:`repro.batch.cache`).  Defaults
        to a fresh :class:`InMemoryLRUCache`, so repeated calls on one
        compiler already skip recompilation.  Pass a
        :class:`~repro.batch.cache.JsonFileCache` to persist across
        process restarts.
    n_workers:
        Process-pool width for cache misses; ``1`` compiles inline on
        the calling process (deterministic ordering, no fork cost).
    """

    def __init__(self, *, cache=None, n_workers: int = 1):
        if n_workers < 1:
            raise BatchError(f"n_workers must be >= 1, got {n_workers}")
        self.cache = cache if cache is not None else InMemoryLRUCache()
        self.n_workers = n_workers

    def compile(self, jobs: Iterable[BatchJob]) -> BatchReport:
        """Run a batch; results come back in job order."""
        jobs = list(jobs)
        started = time.perf_counter()
        slots: list[JobResult | None] = [None] * len(jobs)

        # Digest-deduplicated work list: cache hits are served
        # immediately, identical misses compile once.
        pending: dict[str, list[int]] = {}
        pending_jobs: dict[str, BatchJob] = {}
        for index, job in enumerate(jobs):
            digest = job_digest(job)
            payload = self.cache.get(digest)
            result = _result_type(job).from_payload(payload, job) \
                if payload is not None else None
            if result is not None:
                slots[index] = result
                continue
            pending.setdefault(digest, []).append(index)
            pending_jobs.setdefault(digest, job)

        digests = list(pending)
        compiled = self._run([pending_jobs[digest] for digest in digests])
        store_batch = getattr(self.cache, "put_many", None)
        if store_batch is not None:
            store_batch({digest: result.payload()
                         for digest, result in zip(digests, compiled)})
        for digest, result in zip(digests, compiled):
            if store_batch is None:
                self.cache.put(digest, result.payload())
            first, *duplicates = pending[digest]
            slots[first] = result
            for index in duplicates:
                slots[index] = dataclasses.replace(
                    result, name=jobs[index].name, from_cache=True)

        assert all(slot is not None for slot in slots)
        return BatchReport(
            results=tuple(slots),  # type: ignore[arg-type]
            n_workers=self.n_workers,
            elapsed_seconds=time.perf_counter() - started)

    def _run(self, jobs: Sequence[BatchJob]) -> list[JobResult]:
        if self.n_workers == 1 or len(jobs) <= 1:
            return [execute_any(job) for job in jobs]
        workers = min(self.n_workers, len(jobs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_any, jobs))

    def as_completed(self, jobs: Iterable) -> Iterator[tuple[int, Any]]:
        """Stream ``(index, result)`` pairs in completion order.

        The streaming counterpart of :meth:`compile`: cache hits are
        yielded immediately during the initial scan; misses fan out
        (over the process pool when ``n_workers > 1``) and are yielded
        as workers finish.  Identical jobs inside the batch (same
        digest) compute once -- the duplicate slots are yielded as
        cache hits when the first copy lands.

        Every computed result is stored back into the cache the moment
        it exists, so an interrupted run keeps its partial progress and
        a re-run against the same cache only computes what is still
        missing.
        """
        jobs = list(jobs)
        pending: dict[str, list[int]] = {}
        pending_jobs: dict[str, Any] = {}
        for index, job in enumerate(jobs):
            digest = job_digest(job)
            payload = self.cache.get(digest)
            result = _result_type(job).from_payload(payload, job) \
                if payload is not None else None
            if result is not None:
                yield index, result
                continue
            pending.setdefault(digest, []).append(index)
            pending_jobs.setdefault(digest, job)
        if not pending:
            return

        persisted: set[str] = set()

        def fan_out(digest: str, result: Any) -> Iterator[tuple[int, Any]]:
            self.cache.put(digest, result.payload())
            persisted.add(digest)
            first, *duplicates = pending[digest]
            yield first, result
            for index in duplicates:
                yield index, dataclasses.replace(
                    result, name=jobs[index].name, from_cache=True)

        if self.n_workers == 1 or len(pending) == 1:
            for digest in pending:
                yield from fan_out(digest,
                                   execute_any(pending_jobs[digest]))
            return
        workers = min(self.n_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_any, pending_jobs[digest]):
                       digest for digest in pending}
            try:
                for future in _futures_as_completed(futures):
                    yield from fan_out(futures[future], future.result())
            finally:
                # Abandoned mid-stream: drop what never started, let
                # in-flight jobs finish, and persist everything that
                # completed -- compute is cached, never thrown away.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, digest in futures.items():
                    if digest in persisted or future.cancelled() \
                            or not future.done() \
                            or future.exception() is not None:
                        continue
                    self.cache.put(digest, future.result().payload())

    def run_iter(self, jobs: Iterable) -> Iterator[Any]:
        """Stream results in job order, each as soon as it is ready.

        A reorder buffer over :meth:`as_completed`: result ``i`` is
        held back until every result before it has been yielded, so
        callers get streaming delivery with deterministic ordering.
        """
        buffered: dict[int, Any] = {}
        next_index = 0
        for index, result in self.as_completed(jobs):
            buffered[index] = result
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1

    def compile_suite(self, suite: str, spec: AguSpec,
                      config: AllocatorConfig | None = None, *,
                      run_simulation: bool = True,
                      n_iterations: int | None = None,
                      include_baseline: bool = False) -> BatchReport:
        """Compile a named kernel suite in one batch."""
        return self.compile(jobs_from_suite(
            suite, spec, config, run_simulation=run_simulation,
            n_iterations=n_iterations, include_baseline=include_baseline))
