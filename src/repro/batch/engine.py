"""The batch compilation engine: fan-out, caching, aggregation.

:class:`BatchCompiler` takes a list of :class:`~repro.batch.jobs.BatchJob`
and produces a :class:`BatchReport`.  Per job it either

* serves the per-kernel summary (:class:`JobResult`) straight from the
  result cache -- keyed by the content digest of
  :mod:`repro.batch.digest`, so *what* is compiled, not what it is
  called, decides -- or
* compiles through :func:`repro.core.pipeline.compile_kernel`, on the
  calling process (``n_workers=1``) or a ``concurrent.futures`` process
  pool, and stores the summary back into the cache.

Identical jobs inside one batch (same digest) are compiled once and
fanned back out to every slot, so a sweep that repeats a configuration
pays for it a single time.

The engine aggregates summaries, not full artifacts: a
:class:`JobResult` is a small picklable/JSON-able record, which is what
makes both the process pool and the on-disk cache cheap.  Callers that
need listings or simulation traces compile those kernels individually.

Two delivery modes share the cache/fan-out machinery:
:meth:`BatchCompiler.compile` gathers a whole batch into a
:class:`BatchReport`; :meth:`BatchCompiler.as_completed` /
:meth:`BatchCompiler.run_iter` stream results as workers finish, for
live progress and incremental persistence.  Both run any job type that
offers the ``execute()``/``payload()`` protocol -- compilation units
(:class:`~repro.batch.jobs.BatchJob`) and statistical grid points
(:class:`~repro.batch.jobs.StatisticalGridJob`) alike.

*Where* cache misses execute is an :class:`Executor`: inline on the
calling process (:class:`InlineExecutor`), on a ``concurrent.futures``
process pool (:class:`LocalPoolExecutor`), or leased out to a fleet of
``repro-agu worker`` processes on any number of hosts
(:class:`~repro.batch.cluster.ClusterExecutor`).  :func:`open_executor`
maps CLI-style spec strings (``inline``, ``local:N``,
``tcp://HOST:PORT``) to executors, mirroring
:func:`~repro.batch.cache.open_cache`; every executor honors the same
failure contract (a :class:`~repro.errors.BatchError` naming the
failing job, completed work persisted before the error propagates), so
the engine's callers cannot tell them apart except by speed.
"""

from __future__ import annotations

import copy
import dataclasses
import logging
import math
import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import as_completed as _futures_as_completed
from concurrent.futures.process import BrokenProcessPool \
    as _BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.agu.codegen import generate_unoptimized_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.batch.cache import InMemoryLRUCache
from repro.batch.digest import job_digest
from repro.batch.jobs import BatchJob, CacheableResult, jobs_from_suite
from repro.core.config import AllocatorConfig
from repro.batch.trace import NULL_TRACER, open_tracer
from repro.core.pipeline import (
    DEFAULT_SIMULATION_ITERATIONS,
    compile_kernel,
)
from repro.errors import BatchError

_LOGGER = logging.getLogger("repro.batch.engine")


@dataclass(frozen=True)
class JobResult(CacheableResult):
    """Per-job summary the engine aggregates (picklable, JSON-able)."""

    name: str
    digest: str
    n_accesses: int
    n_registers: int
    modify_range: int
    k_tilde: int | None
    n_registers_used: int
    #: Unit-cost address computations per iteration (the model).
    total_cost: int
    #: Static per-iteration overhead of the generated program.
    overhead_per_iteration: int
    #: Overhead of the unoptimized baseline, when the job asked for it.
    baseline_overhead: int | None
    #: Whether the simulator ran (and, see ``audit_ok``, agreed).
    simulated: bool
    #: Dynamic (simulated) cost equals the modelled cost.  Trivially
    #: true for unsimulated jobs; the simulator raises on mismatches,
    #: so a False here never actually reaches a report.
    audit_ok: bool
    wall_seconds: float
    from_cache: bool = False


def execute_job(job: BatchJob) -> JobResult:
    """Compile one job on the calling process (the pool's map target)."""
    started = time.perf_counter()
    kernel = job.kernel()
    iterations = job.n_iterations
    if iterations is not None and kernel.loop.n_iterations is not None:
        iterations = min(iterations, kernel.loop.n_iterations)
    artifacts = compile_kernel(kernel, job.spec, job.config,
                               run_simulation=job.run_simulation,
                               n_iterations=iterations)
    simulation = artifacts.simulation

    baseline_overhead: int | None = None
    if job.include_baseline:
        baseline = generate_unoptimized_code(kernel.pattern, job.spec)
        if job.run_simulation:
            count = iterations
            if count is None and kernel.loop.n_iterations is None:
                count = DEFAULT_SIMULATION_ITERATIONS
            baseline_overhead = simulate(
                baseline, kernel.loop, artifacts.layout,
                n_iterations=count).overhead_per_iteration
        else:
            baseline_overhead = baseline.overhead_per_iteration

    allocation = artifacts.allocation
    return JobResult(
        name=job.name,
        digest=job_digest(job),
        n_accesses=len(kernel.pattern),
        n_registers=job.spec.n_registers,
        modify_range=job.spec.modify_range,
        k_tilde=allocation.k_tilde,
        n_registers_used=allocation.n_registers_used,
        total_cost=allocation.total_cost,
        overhead_per_iteration=artifacts.program.overhead_per_iteration,
        baseline_overhead=baseline_overhead,
        simulated=simulation is not None,
        audit_ok=simulation is None
        or simulation.overhead_per_iteration == allocation.total_cost,
        wall_seconds=time.perf_counter() - started,
    )


def execute_any(job) -> Any:
    """Run one job of any supported type (the pool's submit target).

    Job classes that define their own ``execute()`` (e.g.
    :class:`~repro.batch.jobs.StatisticalGridJob`) run it; plain
    :class:`~repro.batch.jobs.BatchJob` compilation units go through
    :func:`execute_job`.
    """
    execute = getattr(job, "execute", None)
    if execute is not None:
        return execute()
    return execute_job(job)


def _result_type(job) -> type:
    """The result class a job's cache payloads rebuild into."""
    return getattr(job, "result_type", JobResult)


def job_size_hint(job) -> float | None:
    """A job's advisory size estimate (bigger = slower), or ``None``.

    Jobs expose it as a ``size_hint`` attribute or property; anything
    non-numeric, non-finite, or raising is treated as "no hint" --
    scheduling hints are advisory and must never break a run.  The
    cluster client ships this to the job server for size-aware
    ordering (``job-serve --order size``).
    """
    try:
        hint = getattr(job, "size_hint", None)
        if callable(hint):
            hint = hint()
    # repro-lint: disable=BROAD-EXCEPT -- a broken size hint must degrade to "no hint", never fail the batch
    except Exception:
        return None
    if isinstance(hint, bool) or not isinstance(hint, (int, float)):
        return None
    value = float(hint)
    return value if math.isfinite(value) else None


def _job_failure(job, digest: str, error: Exception) -> BatchError:
    """A :class:`BatchError` naming the batch job whose execution
    failed (``raise ... from error`` at the call site keeps the
    original traceback).

    A died process pool surfaces here too, via the
    ``BrokenProcessPool`` its victim futures all carry -- but the pool
    cannot say *which* in-flight job killed the worker, so that
    message names the job only as "in flight" rather than blaming it.
    """
    name = getattr(job, "name", None) or "<unnamed>"
    if isinstance(error, _BrokenProcessPool):
        return BatchError(
            f"worker process pool died with batch job {name!r} "
            f"(digest {digest}) in flight -- the crash may belong to "
            f"any job running at the time: {error}",
            job_name=name, digest=digest)
    return BatchError(
        f"batch job {name!r} (digest {digest}) failed: "
        f"{type(error).__name__}: {error}",
        job_name=name, digest=digest)


# ----------------------------------------------------------------------
# The executor seam: where cache misses run
# ----------------------------------------------------------------------
class JobFailure(Exception):
    """Internal executor signal: the job at ``index`` (a position in
    the sequence handed to :meth:`Executor.run`) failed with ``cause``.

    Executors raise this from their streams instead of a finished
    :class:`~repro.errors.BatchError` because only the engine knows the
    job's digest and display name; it converts via ``_job_failure`` so
    every backend produces byte-for-byte the same error shape.
    """

    def __init__(self, index: int, cause: Exception):
        super().__init__(f"job #{index} failed: {cause}")
        self.index = index
        self.cause = cause


class ExecutionStream:
    """One in-flight batch on an :class:`Executor`.

    Iterating yields ``(index, result)`` pairs in *completion* order,
    where ``index`` is the job's position in the submitted sequence; a
    failing job aborts the iteration with :class:`JobFailure`.
    :meth:`shutdown` is the teardown hook: stop scheduling new work,
    wait out whatever is already executing, and hand back the completed
    results the iteration never delivered, so the engine can persist
    them before an error propagates.
    """

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        raise NotImplementedError

    def shutdown(self) -> dict[int, Any]:
        """Tear the stream down (idempotent); returns completed results
        that were never yielded, keyed by job index."""
        raise NotImplementedError


class Executor:
    """Abstract execution backend of :class:`BatchCompiler`.

    An executor decides *where* a batch's cache misses run; the engine
    owns everything else (digests, dedup, caching, salvage, failure
    attribution).  Implementations: :class:`InlineExecutor` (the
    calling process), :class:`LocalPoolExecutor` (a process pool), and
    :class:`~repro.batch.cluster.ClusterExecutor` (a multi-host worker
    fleet behind a job server).  Construct one directly or from a spec
    string via :func:`open_executor`.

    Example::

        >>> from repro.batch.engine import BatchCompiler, open_executor
        >>> compiler = BatchCompiler(executor=open_executor("local:2"))
    """

    #: Best-effort parallelism width, for reports.  The cluster
    #: executor updates it per run from the server's connected-worker
    #: count; local executors pin it at construction.
    n_workers: int = 1

    def run(self, jobs: Sequence) -> ExecutionStream:
        """Start executing ``jobs``; returns the result stream."""
        raise NotImplementedError


class _InlineStream(ExecutionStream):
    """Serial execution on the calling process; nothing is ever in
    flight between results, so teardown salvage is always empty."""

    def __init__(self, jobs: Sequence):
        self._jobs = list(jobs)

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        for index, job in enumerate(self._jobs):
            try:
                result = execute_any(job)
            except Exception as error:
                raise JobFailure(index, error) from error
            yield index, result

    def shutdown(self) -> dict[int, Any]:
        return {}


class InlineExecutor(Executor):
    """Run every job serially on the calling process.

    The ``n_workers=1`` backend: deterministic ordering, no fork cost,
    and exceptions keep their original tracebacks.

    Example::

        >>> from repro.batch.engine import BatchCompiler, InlineExecutor
        >>> compiler = BatchCompiler(executor=InlineExecutor())
    """

    def run(self, jobs: Sequence) -> ExecutionStream:
        """Start executing ``jobs`` serially; returns the inline
        stream."""
        return _InlineStream(jobs)


class _PoolStream(ExecutionStream):
    """A batch fanned out over a ``ProcessPoolExecutor``."""

    def __init__(self, jobs: Sequence, max_workers: int):
        self._pool = ProcessPoolExecutor(
            max_workers=min(max_workers, len(jobs)))
        self._index = {self._pool.submit(execute_any, job): position
                       for position, job in enumerate(jobs)}
        self._delivered: set[int] = set()
        self._shut = False

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        for future in _futures_as_completed(self._index):
            position = self._index[future]
            try:
                result = future.result()
            except Exception as error:
                raise JobFailure(position, error) from error
            self._delivered.add(position)
            yield position, result

    def shutdown(self) -> dict[int, Any]:
        if self._shut:
            return {}
        self._shut = True
        # Stop paying for what never started, let in-flight jobs
        # finish, and hand their drained completions to the engine.
        self._pool.shutdown(wait=True, cancel_futures=True)
        return {position: future.result()
                for future, position in self._index.items()
                if position not in self._delivered
                and future.done() and not future.cancelled()
                and future.exception() is None}


class LocalPoolExecutor(Executor):
    """Fan jobs out over a local ``concurrent.futures`` process pool.

    Batches of one job short-circuit to inline execution -- a pool
    would only add fork cost.

    Example::

        >>> from repro.batch.engine import BatchCompiler, LocalPoolExecutor
        >>> compiler = BatchCompiler(executor=LocalPoolExecutor(4))
    """

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise BatchError(
                f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers

    def run(self, jobs: Sequence) -> ExecutionStream:
        """Fan ``jobs`` out over the pool (single-job batches run
        inline)."""
        if self.n_workers == 1 or len(jobs) <= 1:
            return _InlineStream(jobs)
        return _PoolStream(jobs, self.n_workers)


#: The spec schemes :func:`open_executor` understands.  Like
#: :data:`~repro.batch.cache.KNOWN_CACHE_SCHEMES`, matching is
#: restricted so unknown specs fail loudly instead of silently
#: executing somewhere unintended.
KNOWN_EXECUTOR_SCHEMES = ("inline", "local", "tcp")

_EXECUTOR_URL_LIKE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.-]*)://")


def open_executor(spec) -> Executor:
    """Open an execution backend from a spec string.

    * ``inline`` -- run jobs serially on the calling process;
    * ``local`` or ``local:N`` -- a process pool of ``N`` workers
      (``local`` alone uses every CPU);
    * ``tcp://HOST:PORT`` -- a
      :class:`~repro.batch.cluster.ClusterExecutor` client against a
      running ``repro-agu job-serve`` (the multi-host choice).

    An :class:`Executor` instance passes through unchanged, so APIs
    can accept either form.  Unknown schemes and malformed specs are
    rejected loudly, mirroring :func:`~repro.batch.cache.open_cache`.

    Example::

        >>> open_executor("inline")            # doctest: +ELLIPSIS
        <repro.batch.engine.InlineExecutor object at ...>
        >>> open_executor("local:2").n_workers
        2
    """
    if isinstance(spec, Executor):
        return spec
    text = str(spec)
    match = _EXECUTOR_URL_LIKE.match(text)
    if match is not None:
        scheme = match["scheme"].lower()
        if scheme == "tcp":
            from repro.batch.cluster import cluster_executor_from_spec

            return cluster_executor_from_spec(text)
        raise BatchError(
            f"unknown executor scheme {match['scheme']!r} in spec "
            f"{text!r} (known schemes: "
            f"{', '.join(KNOWN_EXECUTOR_SCHEMES)})")
    if text == "inline":
        return InlineExecutor()
    if text == "local":
        return LocalPoolExecutor(os.cpu_count() or 1)
    if text.startswith("local:"):
        try:
            width = int(text[len("local:"):])
        except ValueError:
            raise BatchError(
                f"invalid worker count in executor spec {text!r}")
        return LocalPoolExecutor(width)
    raise BatchError(
        f"unknown executor spec {text!r} (expected inline, local[:N], "
        f"or tcp://HOST:PORT)")


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one :meth:`BatchCompiler.compile` run."""

    results: tuple[JobResult, ...]
    n_workers: int
    elapsed_seconds: float

    @property
    def n_jobs(self) -> int:
        """Number of job slots in the report."""
        return len(self.results)

    @property
    def n_cache_hits(self) -> int:
        """Jobs served from the result cache."""
        return sum(result.from_cache for result in self.results)

    @property
    def n_compiled(self) -> int:
        """Jobs that actually ran the pipeline (non-hits)."""
        return self.n_jobs - self.n_cache_hits

    @property
    def total_cost(self) -> int:
        """Summed modelled cost per iteration over all jobs."""
        return sum(result.total_cost for result in self.results)

    @property
    def total_accesses(self) -> int:
        """Summed pattern sizes over all jobs."""
        return sum(result.n_accesses for result in self.results)

    @property
    def mean_overhead_per_iteration(self) -> float:
        """Mean generated overhead per iteration (0.0 when empty)."""
        if not self.results:
            return 0.0
        return sum(result.overhead_per_iteration
                   for result in self.results) / self.n_jobs

    @property
    def all_audits_ok(self) -> bool:
        """Whether every simulated job agreed with the cost model."""
        return all(result.audit_ok for result in self.results)

    @property
    def jobs_per_second(self) -> float:
        """Batch throughput (0.0 when no time elapsed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.n_jobs / self.elapsed_seconds

    def result(self, name: str) -> JobResult:
        """The named job's summary."""
        for entry in self.results:
            if entry.name == name:
                return entry
        raise BatchError(f"no job named {name!r} in this report")

    def render(self, title: str = "batch compilation") -> str:
        """Fixed-width table of the per-job rows."""
        from repro.analysis.tables import Column, Table

        table = Table([
            Column("kernel", "kernel", align="<"),
            Column("N", "n"), Column("K", "k"), Column("M", "m"),
            Column("K~", "k_tilde"), Column("used", "used"),
            Column("cost/iter", "cost"),
            Column("base/iter", "baseline"),
            Column("sim", "sim", align="<"),
            Column("cached", "cached", align="<"),
            Column("ms", "ms", fmt=".1f"),
        ], title=title)
        for result in self.results:
            table.add_row(
                kernel=result.name, n=result.n_accesses,
                k=result.n_registers, m=result.modify_range,
                k_tilde=result.k_tilde, used=result.n_registers_used,
                cost=result.total_cost,
                baseline=result.baseline_overhead,
                sim="ok" if result.simulated and result.audit_ok
                else ("FAIL" if result.simulated else "-"),
                cached="hit" if result.from_cache else "-",
                ms=1000 * result.wall_seconds)
        return table.render()

    def summary(self) -> str:
        """One-line account: volume, cache effectiveness, throughput."""
        return (f"{self.n_jobs} job(s): {self.n_compiled} compiled, "
                f"{self.n_cache_hits} cache hit(s); total cost/iter "
                f"{self.total_cost}; {self.elapsed_seconds:.3f} s on "
                f"{self.n_workers} worker(s) "
                f"({self.jobs_per_second:.1f} jobs/s)")


class BatchCompiler:
    """Compile many kernels at once, with caching and parallelism.

    Parameters
    ----------
    cache:
        Any object with ``get(digest) -> dict | None`` and
        ``put(digest, dict)`` (see :mod:`repro.batch.cache`).  Defaults
        to a fresh :class:`InMemoryLRUCache`, so repeated calls on one
        compiler already skip recompilation.  Pass a
        :class:`~repro.batch.cache.JsonFileCache` to persist across
        process restarts.
    n_workers:
        Process-pool width for cache misses; ``1`` compiles inline on
        the calling process (deterministic ordering, no fork cost).
        Shorthand for the matching local :class:`Executor`.
    executor:
        An explicit execution backend -- an :class:`Executor` instance
        or an :func:`open_executor` spec string such as
        ``"tcp://host:port"`` for a multi-host worker fleet.  Mutually
        exclusive with a non-default ``n_workers`` (an executor carries
        its own width).
    trace:
        Trace sink (path, stream, or a shared
        :class:`~repro.batch.trace.Tracer`): the engine emits
        ``cache_hit``/``enqueue``/``finish`` events per job, so
        "where did the wall-clock go" is answerable for local runs
        too, not just cluster ones.  ``None`` (the default) disables
        tracing at zero cost.
    """

    def __init__(self, *, cache=None, n_workers: int = 1,
                 executor: Executor | str | None = None,
                 trace=None):
        if n_workers < 1:
            raise BatchError(f"n_workers must be >= 1, got {n_workers}")
        if executor is not None and n_workers != 1:
            raise BatchError(
                "pass either n_workers or executor, not both (an "
                "executor carries its own parallelism width)")
        self.cache = cache if cache is not None else InMemoryLRUCache()
        if executor is None:
            executor = InlineExecutor() if n_workers == 1 \
                else LocalPoolExecutor(n_workers)
        self.executor = open_executor(executor)
        self.trace = open_tracer(trace, source="engine")

    @property
    def n_workers(self) -> int:
        """The executor's parallelism width (best effort, for reports)."""
        return self.executor.n_workers

    def _trace_job(self, kind: str, index: int, job,
                   **extra) -> None:
        """Emit one engine-side trace event for a job slot."""
        if not self.trace.enabled:
            return
        fields: dict = {"index": index}
        name = getattr(job, "name", None)
        if name is not None:
            fields["name"] = str(name)
        size = job_size_hint(job)
        if size is not None and kind == "enqueue":
            fields["size"] = size
        fields.update({key: value for key, value in extra.items()
                       if value is not None})
        self.trace.emit(kind, **fields)

    def _scan(self, jobs: Sequence) -> list[tuple[str, Any]]:
        """Per-job ``(digest, cached result | None)``, the batch's
        initial cache pass.

        Backends offering ``get_many`` (the remote client) answer the
        whole scan in one batched lookup round rather than one round
        trip per job; the rest are probed digest by digest.
        Duplicate digests are looked up once -- later slots get a
        defensive copy, matching the per-``get`` copy semantics of the
        local stores.
        """
        digests = [job_digest(job) for job in jobs]
        unique = list(dict.fromkeys(digests))
        fetch_many = getattr(self.cache, "get_many", None)
        if fetch_many is not None:
            payloads = dict(fetch_many(unique))
        else:
            payloads = {}
            for digest in unique:
                payload = self.cache.get(digest)
                if payload is not None:
                    payloads[digest] = payload
        scanned: list[tuple[str, Any]] = []
        served: set[str] = set()
        for job, digest in zip(jobs, digests):
            payload = payloads.get(digest)
            if payload is not None and digest in served:
                payload = copy.deepcopy(payload)
            result = _result_type(job).from_payload(payload, job) \
                if payload is not None else None
            if result is not None:
                served.add(digest)
            scanned.append((digest, result))
        return scanned

    def compile(self, jobs: Iterable[BatchJob]) -> BatchReport:
        """Run a batch; results come back in job order."""
        jobs = list(jobs)
        started = time.perf_counter()
        slots: list[JobResult | None] = [None] * len(jobs)

        # Digest-deduplicated work list: cache hits are served
        # immediately, identical misses compile once.
        pending: dict[str, list[int]] = {}
        pending_jobs: dict[str, BatchJob] = {}
        for index, (digest, result) in enumerate(self._scan(jobs)):
            if result is not None:
                slots[index] = result
                self._trace_job("cache_hit", index, jobs[index],
                                digest=digest)
                continue
            pending.setdefault(digest, []).append(index)
            pending_jobs.setdefault(digest, jobs[index])

        digests = list(pending)
        compiled = self._run([pending_jobs[digest] for digest in digests])
        self._store({digest: result.payload()
                     for digest, result in zip(digests, compiled)})
        for digest, result in zip(digests, compiled):
            first, *duplicates = pending[digest]
            slots[first] = result
            for index in duplicates:
                slots[index] = dataclasses.replace(
                    result, name=jobs[index].name, from_cache=True)

        assert all(slot is not None for slot in slots)
        return BatchReport(
            results=tuple(slots),  # type: ignore[arg-type]
            n_workers=self.n_workers,
            elapsed_seconds=time.perf_counter() - started)

    def _store(self, entries: dict[str, dict]) -> None:
        """Persist payloads, with one batched write when the backend
        offers ``put_many`` (per-entry puts otherwise)."""
        if not entries:
            return
        store_batch = getattr(self.cache, "put_many", None)
        if store_batch is not None:
            store_batch(entries)
            return
        for digest, payload in entries.items():
            self.cache.put(digest, payload)

    def _persist(self, jobs: Sequence[BatchJob], results) -> None:
        """Best-effort store of completed results for ``jobs`` (a
        failing batch's salvage path -- :meth:`compile` only persists
        after ``_run`` returns whole, so completed work must be saved
        before the failure propagates or a re-run would recompute it).

        Best-effort because it only ever runs while a job failure or
        interrupt is already propagating: a cache write error here
        (disk full, dead server) must cost the salvage, never displace
        the primary error and its culprit attribution.
        """
        try:
            self._store({job_digest(job): result.payload()
                         for job, result in zip(jobs, results)
                         if result is not None})
        # repro-lint: disable=BROAD-EXCEPT -- best-effort persist while a batch failure is already propagating; logged, and the primary error keeps its attribution
        except Exception:
            _LOGGER.warning(
                "failed to persist completed results while a batch "
                "failure was propagating; the re-run will recompute "
                "them", exc_info=True)

    def _run(self, jobs: Sequence[BatchJob]) -> list[JobResult]:
        """Execute ``jobs`` on the configured executor, results in
        job order.

        The failure contract, uniform across executors: a job failure
        (or a died worker) first drains and persists everything that
        completed, then raises a :class:`~repro.errors.BatchError`
        naming the culprit; a ``KeyboardInterrupt`` gets the same
        salvage but propagates as itself.
        """
        slots: list[JobResult | None] = [None] * len(jobs)
        for position, job in enumerate(jobs):
            self._trace_job("enqueue", position, job)
        stream = self.executor.run(jobs)
        try:
            for position, result in stream:
                slots[position] = result
                self._trace_job(
                    "finish", position, jobs[position], outcome="ok",
                    seconds=getattr(result, "wall_seconds", None))
        except BaseException as error:
            # Stop paying for what never started, persist everything
            # that did complete (including in-flight completions the
            # shutdown drains), and -- for a job failure, as opposed
            # to a KeyboardInterrupt -- name the culprit.
            for position, result in stream.shutdown().items():
                slots[position] = result
            self._persist(jobs, slots)
            if isinstance(error, JobFailure):
                failing = jobs[error.index]
                self._trace_job("finish", error.index, failing,
                                outcome="failed")
                raise _job_failure(failing, job_digest(failing),
                                   error.cause) from error.cause
            raise
        stream.shutdown()  # release executor resources (no-op salvage)
        assert all(slot is not None for slot in slots)
        return slots  # type: ignore[return-value]

    def as_completed(self, jobs: Iterable) -> Iterator[tuple[int, Any]]:
        """Stream ``(index, result)`` pairs in completion order.

        The streaming counterpart of :meth:`compile`: cache hits are
        yielded immediately during the initial scan; misses fan out
        (over the process pool when ``n_workers > 1``) and are yielded
        as workers finish.  Identical jobs inside the batch (same
        digest) compute once -- the duplicate slots are yielded as
        cache hits when the first copy lands.

        Every computed result is stored back into the cache the moment
        it exists, so an interrupted run keeps its partial progress and
        a re-run against the same cache only computes what is still
        missing.

        Failure semantics: a job that raises (or a worker process that
        dies, surfacing as ``BrokenProcessPool``) aborts the stream
        with a :class:`BatchError` whose ``job_name``/``digest`` name
        the failing work unit.  The pool is shut down -- never
        orphaned -- and results that completed before (or in flight
        with) the failure are persisted first, so the cache stays
        consistent and the surviving points resume on the next run.
        The same teardown runs when the consumer abandons the stream
        or a ``KeyboardInterrupt`` lands mid-wait.
        """
        jobs = list(jobs)
        pending: dict[str, list[int]] = {}
        pending_jobs: dict[str, Any] = {}
        for index, (digest, result) in enumerate(self._scan(jobs)):
            if result is not None:
                self._trace_job("cache_hit", index, jobs[index],
                                digest=digest)
                yield index, result
                continue
            pending.setdefault(digest, []).append(index)
            pending_jobs.setdefault(digest, jobs[index])
        if not pending:
            return

        persisted: set[str] = set()

        def fan_out(digest: str, result: Any) -> Iterator[tuple[int, Any]]:
            self.cache.put(digest, result.payload())
            persisted.add(digest)
            first, *duplicates = pending[digest]
            yield first, result
            for index in duplicates:
                yield index, dataclasses.replace(
                    result, name=jobs[index].name, from_cache=True)

        digests = list(pending)
        for position, digest in enumerate(digests):
            self._trace_job("enqueue", position, pending_jobs[digest],
                            digest=digest)
        stream = self.executor.run([pending_jobs[digest]
                                    for digest in digests])
        try:
            for position, result in stream:
                self._trace_job(
                    "finish", position, pending_jobs[digests[position]],
                    outcome="ok",
                    seconds=getattr(result, "wall_seconds", None))
                yield from fan_out(digests[position], result)
        except JobFailure as failure:
            digest = digests[failure.index]
            self._trace_job("finish", failure.index,
                            pending_jobs[digest], outcome="failed")
            raise _job_failure(pending_jobs[digest], digest,
                               failure.cause) from failure.cause
        finally:
            # Torn down mid-stream -- abandoned, interrupted, or a
            # job failure above: drop what never started, let
            # in-flight jobs finish, and persist everything that
            # completed.  Compute is cached, never thrown away, so
            # a re-run against the same cache resumes exactly where
            # this one stopped.  (A clean finish passes through here
            # too; its salvage is empty by construction.)
            salvage = {
                digests[position]: result.payload()
                for position, result in stream.shutdown().items()
                if digests[position] not in persisted}
            try:
                self._store(salvage)
            # repro-lint: disable=BROAD-EXCEPT -- teardown salvage is best-effort; a cache write error must not displace what is propagating
            except Exception:
                # Teardown salvage is best-effort: a cache write
                # error must not displace whatever is already
                # propagating.
                _LOGGER.warning(
                    "failed to persist %d completed result(s) "
                    "during stream teardown", len(salvage),
                    exc_info=True)

    def run_iter(self, jobs: Iterable) -> Iterator[Any]:
        """Stream results in job order, each as soon as it is ready.

        A reorder buffer over :meth:`as_completed`: result ``i`` is
        held back until every result before it has been yielded, so
        callers get streaming delivery with deterministic ordering.
        """
        buffered: dict[int, Any] = {}
        next_index = 0
        for index, result in self.as_completed(jobs):
            buffered[index] = result
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1

    def compile_suite(self, suite: str, spec: AguSpec,
                      config: AllocatorConfig | None = None, *,
                      run_simulation: bool = True,
                      n_iterations: int | None = None,
                      include_baseline: bool = False) -> BatchReport:
        """Compile a named kernel suite in one batch."""
        return self.compile(jobs_from_suite(
            suite, spec, config, run_simulation=run_simulation,
            n_iterations=n_iterations, include_baseline=include_baseline))
