"""Compile-as-a-service: a persistent TCP front door for the compiler.

Everything below :mod:`repro.batch` is batch-shaped -- submit a list,
wait for the report.  This module is the request/response layer on
top: :class:`CompileService` answers *one kernel at a time* over the
same length-prefixed JSON framing as the cache and job services
(:mod:`repro.batch.service`), and :class:`ServeClient` is the matching
pooled client.  ``repro-agu serve`` runs the service from the CLI.

The service is three thin layers over machinery that already exists:

1. **Front door** -- admission control and backpressure.  Requests
   that miss the cache enter a bounded in-flight queue; when it is
   full the client gets an explicit ``busy`` error frame immediately
   instead of the server growing an unbounded thread pile.  Stalled
   connections are closed after an idle timeout, like every other
   server in the batch layer.
2. **Micro-batcher** -- one dispatcher thread collects the requests
   that arrive within a small window (``batch_window`` seconds, up to
   ``max_batch`` requests) and runs them as *one*
   :class:`~repro.batch.engine.BatchCompiler` batch through the
   existing :class:`~repro.batch.engine.Executor` seam.  Concurrent
   load therefore reuses the digest dedup, the cache orchestration,
   and -- with a ``tcp://`` executor -- the whole worker fleet,
   unchanged.
3. **Warm tier** -- the service's cache is a
   :class:`~repro.batch.cache.TieredCache`: a process-local LRU in
   front of whatever ``open_cache()`` backend the operator configured,
   so hot kernels are answered from memory without touching the
   backing store (or the wire, for a remote store).

Wire protocol (one JSON object per frame, shared framing limits):
requests carry ``op`` = ``ping`` | ``stats`` | ``compile``; a compile
request names its kernel either inline (``source``: frontend text) or
from the bundled library (``kernel``: a library name), plus the spec
knobs ``registers`` / ``modify_range`` and the execution options
``simulate`` / ``iterations`` / ``baseline`` / ``listing``.  A
successful response carries the content ``digest``, the ``cached``
flag, the :class:`~repro.batch.engine.JobResult` payload under
``result``, and -- when asked -- the generated AGU code under
``listing``.  Failures are ``ok: false`` error frames; an admission
rejection additionally sets ``busy: true`` so clients can distinguish
"overloaded, retry" from "wrong, don't".

Served output is bit-identical to what a direct
:class:`~repro.batch.engine.BatchCompiler` run produces for the same
request: the service adds routing, not semantics.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
import time
from dataclasses import dataclass

from repro.agu.model import AguSpec
from repro.batch.cache import CacheBackend, TieredCache, open_cache
from repro.batch.digest import job_digest
from repro.batch.engine import BatchCompiler, Executor, JobResult
from repro.batch.jobs import BatchJob
from repro.batch.service import (
    FrameTooLargeError,
    _close_socket,
    format_endpoint,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.core.pipeline import compile_kernel
from repro.errors import BatchError
from repro.workloads.kernels import get_kernel


class ServerBusyError(BatchError):
    """The serve endpoint rejected a request for lack of capacity.

    The explicit backpressure signal: the server's bounded in-flight
    queue was full, so it answered a ``busy`` error frame instead of
    queueing without limit.  Unlike other request failures this one is
    *retryable by construction* -- the same request succeeds once load
    drains -- which is why :meth:`ServeClient.compile` can be told to
    retry it (``busy_retries``) while genuine errors keep failing
    fast.
    """


@dataclass
class ServeStats:
    """Request counters over one :class:`CompileService` lifetime."""

    #: Compile requests accepted off the wire (valid or not).
    requests: int = 0
    #: Compile requests answered straight from the cache's warm path,
    #: without entering the in-flight queue.
    served_warm: int = 0
    #: Compile requests rejected with a ``busy`` frame (queue full).
    busy_rejections: int = 0
    #: Micro-batches run through the engine.
    batches: int = 0
    #: Jobs that actually compiled (batch slots minus cache hits).
    compiled: int = 0
    #: Requests that ended in an error response (invalid request,
    #: failed compile, or shutdown while queued).
    failures: int = 0

    def __str__(self) -> str:
        return (f"{self.requests} request(s): {self.served_warm} warm, "
                f"{self.compiled} compiled, {self.busy_rejections} "
                f"busy-rejected, {self.failures} failed; "
                f"{self.batches} micro-batch(es)")


@dataclass(frozen=True)
class ServeResult:
    """One answered compile request, as :class:`ServeClient` sees it."""

    #: Content digest of the compiled job (the cache key).
    digest: str
    #: Whether the server answered from its cache (warm tier or
    #: backing store) rather than compiling.
    cached: bool
    #: The per-kernel summary, rebuilt with ``from_cache`` mirroring
    #: :attr:`cached` -- the same record a direct batch run returns.
    result: JobResult
    #: The generated AGU code, when the request asked for it.
    listing: str | None = None


class _PendingCompile:
    """One admitted compile request, in flight between a handler
    thread (which waits on ``ready``) and the dispatcher (which sets
    the outcome, then ``ready``)."""

    __slots__ = ("job", "digest", "payload", "cached", "error", "ready")

    def __init__(self, job: BatchJob, digest: str):
        self.job = job
        self.digest = digest
        self.payload: dict | None = None
        self.cached = False
        self.error: str | None = None
        self.ready = threading.Event()

    def resolve(self, payload: dict, cached: bool) -> None:
        """Hand the handler thread its answer."""
        self.payload = payload
        self.cached = cached
        self.ready.set()

    def fail(self, error: str) -> None:
        """Hand the handler thread an error outcome."""
        self.error = error
        self.ready.set()


class _ServeRequestHandler(socketserver.BaseRequestHandler):
    """One connection: frames in, frames out, until the client hangs
    up (or goes idle past the server's idle timeout)."""

    def handle(self) -> None:
        server: CompileService = self.server.compile_service  # type: ignore
        server.track_connection(self.request, alive=True)
        if server.idle_timeout is not None:
            # Same rationale as the cache/job servers: a stalled or
            # half-open client must not pin this thread forever.
            self.request.settimeout(server.idle_timeout)
        try:
            while True:
                try:
                    request = recv_frame(self.request)
                except (BatchError, OSError):
                    return
                if request is None:
                    return
                try:
                    response = server.handle_request(request)
                # repro-lint: disable=BROAD-EXCEPT -- not swallowed: the error goes back to the client as an error frame, keeping the connection alive
                except Exception as error:
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}"}
                try:
                    send_frame(self.request, response)
                except FrameTooLargeError as error:
                    # The response outgrew a frame (a giant listing):
                    # answer an error frame so the client sees a
                    # request failure on a live connection, not a
                    # dropped one.
                    try:
                        send_frame(self.request,
                                   {"ok": False, "error": str(error)})
                    except (BatchError, OSError):
                        return
                except (BatchError, OSError):
                    return
        finally:
            server.track_connection(self.request, alive=False)


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _TcpServer6(_TcpServer):
    address_family = socket.AF_INET6


class CompileService:
    """Serve single-kernel compile requests over TCP.

    Parameters
    ----------
    cache:
        The result store behind the warm tier: a
        :class:`~repro.batch.cache.CacheBackend` or an ``open_cache``
        spec string (``dir:PATH``, ``tcp://HOST:PORT``, ...).  ``None``
        serves from the warm LRU alone.  Whatever is given is wrapped
        in a :class:`~repro.batch.cache.TieredCache` of
        ``warm_capacity`` entries, so hot kernels never touch the
        backing store.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` / :attr:`endpoint`).
    executor, n_workers:
        Where cache misses compile -- the same seam as
        :class:`~repro.batch.engine.BatchCompiler` (which is what runs
        underneath): inline, a local process pool, or a
        ``tcp://HOST:PORT`` worker fleet.  Mutually exclusive, like
        the engine's own arguments.
    batch_window:
        Seconds the dispatcher waits, after the first queued request,
        for more requests to coalesce into one engine batch.  Bounds
        the latency cost of micro-batching; ``0`` batches only what
        is already queued.
    max_batch:
        Upper bound on requests per micro-batch.
    max_pending:
        Bound of the in-flight queue -- admission control.  A request
        arriving with ``max_pending`` compiles already queued is
        answered with a ``busy`` error frame instead of queueing.
    warm_capacity:
        Entry bound of the warm in-process LRU tier.
    idle_timeout:
        Seconds a connection may sit idle between frames before the
        server closes it (``None`` disables the timeout), mirroring
        :class:`~repro.batch.service.CacheServer`.

    Run blocking with :meth:`serve_forever` (the CLI does) or on a
    background thread via :meth:`start` / the context-manager form
    (tests and benchmarks do)::

        >>> from repro.batch.serving import CompileService, ServeClient
        >>> with CompileService() as service:      # doctest: +SKIP
        ...     client = ServeClient(service.endpoint)
        ...     answer = client.compile(kernel="fir")
    """

    def __init__(self, cache: CacheBackend | str | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 executor: Executor | str | None = None,
                 n_workers: int = 1,
                 batch_window: float = 0.005, max_batch: int = 16,
                 max_pending: int = 64, warm_capacity: int = 4096,
                 idle_timeout: float | None = 300.0):
        if batch_window < 0:
            raise BatchError(
                f"batch_window must be >= 0 seconds, got {batch_window}")
        if max_batch < 1:
            raise BatchError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise BatchError(
                f"max_pending must be >= 1, got {max_pending}")
        if idle_timeout is not None and not idle_timeout > 0:
            raise BatchError(
                f"idle_timeout must be > 0 seconds or None, got "
                f"{idle_timeout}")
        backend = open_cache(cache) if isinstance(cache, str) else cache
        self.cache = TieredCache(backend, capacity=warm_capacity)
        # The compiler is driven only by the dispatcher thread; the
        # (thread-safe) tiered cache is what handler threads share.
        self._compiler = BatchCompiler(cache=self.cache,
                                       n_workers=n_workers,
                                       executor=executor)
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.idle_timeout = idle_timeout
        self.stats = ServeStats()
        self._stats_lock = threading.Lock()
        self._queue: queue.Queue[_PendingCompile] = queue.Queue(
            maxsize=max_pending)
        self._stop = threading.Event()
        server_class = _TcpServer6 if ":" in host else _TcpServer
        self._server = server_class((host, port), _ServeRequestHandler)
        self._server.compile_service = self  # type: ignore[attr-defined]
        # Only after the bind succeeded -- a failed construction must
        # not leak a dispatcher thread.
        self._dispatcher = threading.Thread(
            target=self._dispatch_forever, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        self._thread: threading.Thread | None = None
        # An Event, not a bool: shutdown() consults it from whatever
        # thread tears the server down while serve_forever runs
        # elsewhere.
        self._serving = threading.Event()
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._closing = False

    # -- addressing ----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The ``tcp://host:port`` spec clients should connect to."""
        return format_endpoint(*self.address)

    @property
    def n_workers(self) -> int:
        """The underlying executor's parallelism width."""
        return self._compiler.n_workers

    # -- connection bookkeeping (mirrors CacheServer) ------------------
    def track_connection(self, sock: socket.socket, alive: bool) -> None:
        """Handler bookkeeping so :meth:`shutdown` can close live
        connections; a connection registering after shutdown started
        is closed on the spot."""
        with self._connections_lock:
            if not alive:
                self._connections.discard(sock)
                return
            if not self._closing:
                self._connections.add(sock)
                return
        _close_socket(sock)

    # -- request handling (handler threads) ----------------------------
    def handle_request(self, request: dict) -> dict:
        """Answer one protocol request (exposed for protocol tests)."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "server": "repro-agu serve",
                    "workers": self.n_workers}
        if op == "stats":
            with self._stats_lock:
                counters = {
                    "requests": self.stats.requests,
                    "served_warm": self.stats.served_warm,
                    "busy_rejections": self.stats.busy_rejections,
                    "batches": self.stats.batches,
                    "compiled": self.stats.compiled,
                    "failures": self.stats.failures}
            cache = self.cache.stats
            return {"ok": True, **counters,
                    "cache": {"hits": cache.hits, "misses": cache.misses,
                              "stores": cache.stores}}
        if op == "compile":
            return self._handle_compile(request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_compile(self, request: dict) -> dict:
        with self._stats_lock:
            self.stats.requests += 1
        try:
            job = self._job_from_request(request)
        # repro-lint: disable=BROAD-EXCEPT -- not swallowed: every request-shaping error (missing fields, unknown library kernels, frontend syntax errors) is this request's error frame, never a batch failure that could fail other clients' work
        except Exception as error:
            with self._stats_lock:
                self.stats.failures += 1
            return {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}
        digest = job_digest(job)
        want_listing = bool(request.get("listing", False))

        payload = self.cache.get(digest)
        result = JobResult.from_payload(payload, job) \
            if payload is not None else None
        if result is not None:
            with self._stats_lock:
                self.stats.served_warm += 1
            return self._answer(job, digest, result.payload(),
                                cached=True, want_listing=want_listing)

        pending = _PendingCompile(job, digest)
        if self._stop.is_set():
            with self._stats_lock:
                self.stats.failures += 1
            return {"ok": False,
                    "error": "compile service is shutting down"}
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._stats_lock:
                self.stats.busy_rejections += 1
            return {"ok": False, "busy": True,
                    "error": f"server busy: {self.max_pending} "
                             f"compile(s) already in flight"}
        self._await(pending)
        if pending.error is not None or pending.payload is None:
            with self._stats_lock:
                self.stats.failures += 1
            return {"ok": False,
                    "error": pending.error or "compile produced no "
                                              "result"}
        return self._answer(job, digest, pending.payload,
                            cached=pending.cached,
                            want_listing=want_listing)

    def _await(self, pending: _PendingCompile) -> None:
        """Block until the dispatcher resolves ``pending`` (with a
        shutdown escape hatch so a request admitted in the teardown
        race window cannot strand its handler thread)."""
        while not pending.ready.wait(timeout=0.5):
            if self._stop.is_set() \
                    and not pending.ready.wait(timeout=1.0):
                pending.error = "compile service shut down before the "\
                                "request was compiled"
                return

    def _answer(self, job: BatchJob, digest: str, payload: dict, *,
                cached: bool, want_listing: bool) -> dict:
        # Display metadata follows the request being served, not
        # whoever stored the cache entry -- engine semantics.
        response = {"ok": True, "digest": digest, "cached": cached,
                    "result": {**payload, "name": job.name}}
        if want_listing:
            response["listing"] = self._listing_for(job, digest)
        return response

    def _listing_for(self, job: BatchJob, digest: str) -> str:
        """The job's generated AGU code, cached under its own key.

        Batch results are small summaries by design, so the listing is
        produced on demand -- an allocation-only rerun of the pipeline
        (no simulation), deterministic and therefore cacheable next to
        the result payload.
        """
        key = f"{digest}/listing"
        stored = self.cache.get(key)
        if stored is not None and isinstance(stored.get("listing"), str):
            return stored["listing"]
        artifacts = compile_kernel(job.kernel(), job.spec, job.config,
                                   run_simulation=False)
        self.cache.put(key, {"listing": artifacts.listing})
        return artifacts.listing

    def _job_from_request(self, request: dict) -> BatchJob:
        """Shape and *validate* one compile request into a job.

        The kernel is parsed here, on the handler thread, so a syntax
        error is this request's error frame -- by the time a job
        reaches the dispatcher it is known to at least parse.
        """
        source = request.get("source")
        library = request.get("kernel")
        if (source is None) == (library is None):
            raise BatchError("'compile' needs exactly one of 'source' "
                             "(frontend text) and 'kernel' (a library "
                             "kernel name)")
        if library is not None:
            if not isinstance(library, str):
                raise BatchError("'kernel' must be a string kernel name")
            source = get_kernel(library).source
        if not isinstance(source, str) or not source.strip():
            raise BatchError("'source' must be non-empty frontend text")
        name = request.get("name") or library or "served-kernel"
        if not isinstance(name, str):
            raise BatchError("'name' must be a string")
        registers = request.get("registers", 4)
        modify_range = request.get("modify_range", 1)
        if not isinstance(registers, int) or isinstance(registers, bool):
            raise BatchError("'registers' must be an integer")
        if not isinstance(modify_range, int) \
                or isinstance(modify_range, bool):
            raise BatchError("'modify_range' must be an integer")
        iterations = request.get("iterations")
        if iterations is not None and (
                not isinstance(iterations, int)
                or isinstance(iterations, bool) or iterations < 1):
            raise BatchError("'iterations' must be a positive integer "
                             "or null")
        job = BatchJob(
            name=name,
            spec=AguSpec(n_registers=registers,
                         modify_range=modify_range),
            source=source,
            run_simulation=bool(request.get("simulate", True)),
            n_iterations=iterations,
            include_baseline=bool(request.get("baseline", False)))
        job.kernel()  # surface syntax errors per-request, pre-batch
        return job

    # -- the micro-batcher (dispatcher thread) -------------------------
    def _dispatch_forever(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stop.is_set():
                    break
                continue
            batch = [first]
            deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._run_batch(batch)
        # Shutdown drain: everything still queued gets an error
        # outcome so no handler thread is left waiting.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.fail("compile service is shutting down")

    def _run_batch(self, batch: list[_PendingCompile]) -> None:
        """One micro-batch through the engine, with per-culprit
        failure isolation.

        The engine's failure contract does the heavy lifting: when a
        job fails, everything that completed is already persisted to
        the cache and the raised error names the culprit's digest.  So
        the culprit's requests are failed, and the survivors are
        simply *rerun* -- which the cache answers as hits, costing one
        scan, not a recompile.  Each round removes at least one
        request, so the loop terminates.
        """
        with self._stats_lock:
            self.stats.batches += 1
        pending = list(batch)
        while pending:
            try:
                report = self._compiler.compile(
                    [entry.job for entry in pending])
            except BatchError as error:
                digest = getattr(error, "digest", None)
                culprits = [entry for entry in pending
                            if entry.digest == digest]
                if not culprits:
                    # No (matching) attribution -- e.g. a dead process
                    # pool that cannot name its killer: fail the whole
                    # round rather than retry-loop forever.
                    culprits = list(pending)
                # The handler thread counts the failure when it sees
                # the error outcome -- counting here too would double.
                for entry in culprits:
                    entry.fail(str(error))
                survivors = [entry for entry in pending
                             if entry not in culprits]
                pending = survivors
                continue
            # repro-lint: disable=BROAD-EXCEPT -- dispatcher last resort: an unexpected error resolves every waiting request instead of stranding its handler thread
            except Exception as error:
                for entry in pending:
                    entry.fail(f"{type(error).__name__}: {error}")
                return
            with self._stats_lock:
                self.stats.compiled += report.n_compiled
            for entry, result in zip(pending, report.results):
                entry.resolve(result.payload(), result.from_cache)
            return

    # -- lifecycle (mirrors CacheServer) -------------------------------
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving.set()
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "CompileService":
        """Serve on a daemon background thread; returns ``self``."""
        self._serving.set()
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; start/shutdown run on one controlling thread
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-compile-service", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving (idempotent): close the listener and every
        live connection first (no new work can arrive), then stop the
        dispatcher.  Admission is a promise: requests already in the
        bounded queue are compiled and resolved before the dispatcher
        exits; only a request that slips in after its final pass is
        failed with a shutdown error."""
        if self._serving.is_set():
            self._server.shutdown()
            self._serving.clear()
        self._server.server_close()
        with self._connections_lock:
            self._closing = True
            live, self._connections = self._connections, set()
        for sock in live:
            _close_socket(sock)
        self._stop.set()
        self._dispatcher.join(timeout=10.0)
        # repro-lint: disable=LOCK-DISCIPLINE -- _thread is a lifecycle attr; joining under a lock handlers take would deadlock
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServeClient:
    """Pooled client for a :class:`CompileService`.

    Connections are pooled (up to ``pool_size``) and reused across
    requests, so concurrent callers -- the client is thread-safe --
    pay connection setup once, not per compile.  A connection the
    server closed in the meantime (idle timeout, restart) is detected
    on use and the request retried once on a fresh connection; every
    request is idempotent (compiles are deterministic and cached), so
    the retry is safe.

    Unlike the cache client, a compile client never degrades: the
    compile *is* the point, so transport failures raise
    :class:`~repro.errors.BatchError` and a ``busy`` rejection raises
    :class:`ServerBusyError` -- optionally after ``busy_retries``
    back-off retries.

    Example::

        >>> client = ServeClient("tcp://127.0.0.1:8743")  # doctest: +SKIP
        >>> client.compile(kernel="fir").result.total_cost  # doctest: +SKIP
    """

    def __init__(self, endpoint: str, *, timeout: float = 60.0,
                 pool_size: int = 4, busy_retries: int = 0,
                 busy_backoff: float = 0.05):
        host, port, _ = parse_endpoint(endpoint)
        if not timeout > 0:
            raise BatchError(
                f"timeout must be > 0 seconds, got {timeout}")
        if pool_size < 1:
            raise BatchError(
                f"pool_size must be >= 1, got {pool_size}")
        if busy_retries < 0:
            raise BatchError(
                f"busy_retries must be >= 0, got {busy_retries}")
        if busy_backoff < 0:
            raise BatchError(
                f"busy_backoff must be >= 0 seconds, got {busy_backoff}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.pool_size = int(pool_size)
        self.busy_retries = int(busy_retries)
        self.busy_backoff = float(busy_backoff)
        self._pool: list[socket.socket] = []
        self._lock = threading.Lock()

    @property
    def endpoint(self) -> str:
        """The ``tcp://...`` spec of this client's server."""
        return format_endpoint(self.host, self.port)

    def __repr__(self) -> str:
        return f"ServeClient({self.endpoint!r})"

    # -- transport ------------------------------------------------------
    def _acquire(self) -> socket.socket:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        _close_socket(sock)

    def close(self) -> None:
        """Close every pooled connection (the next request reconnects).
        """
        with self._lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            _close_socket(sock)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, message: dict) -> dict:
        """One round trip on a pooled connection, retried once on a
        fresh connection if the pooled one turned out dead."""
        last_error: Exception | None = None
        for attempt in (0, 1):
            sock = self._acquire()
            try:
                send_frame(sock, message)
                response = recv_frame(sock)
                if response is None:
                    raise BatchError(
                        "serve endpoint closed the connection")
            except (OSError, BatchError) as error:
                _close_socket(sock)
                last_error = error
                continue
            self._release(sock)
            return response
        raise BatchError(
            f"serve endpoint {self.endpoint} unreachable: "
            f"{last_error}") from last_error

    # -- the serve protocol --------------------------------------------
    def compile(self, source: str | None = None, *,
                kernel: str | None = None, name: str | None = None,
                registers: int = 4, modify_range: int = 1,
                simulate: bool = True, iterations: int | None = None,
                baseline: bool = False,
                listing: bool = False) -> ServeResult:
        """Compile one kernel on the server; returns the summary (and
        the generated AGU code, with ``listing=True``).

        Exactly one of ``source`` (frontend text) and ``kernel`` (a
        bundled library kernel name) names the kernel;
        ``registers``/``modify_range`` are the target AGU spec, the
        rest are the execution options of
        :class:`~repro.batch.jobs.BatchJob`.  A ``busy`` rejection
        raises :class:`ServerBusyError` after exhausting
        ``busy_retries``; any other rejection raises
        :class:`~repro.errors.BatchError` with the server's error.
        """
        request: dict = {"op": "compile", "registers": registers,
                         "modify_range": modify_range,
                         "simulate": simulate, "baseline": baseline,
                         "listing": listing}
        if source is not None:
            request["source"] = source
        if kernel is not None:
            request["kernel"] = kernel
        if name is not None:
            request["name"] = name
        if iterations is not None:
            request["iterations"] = iterations
        for attempt in range(self.busy_retries + 1):
            response = self._request(request)
            if response.get("ok"):
                break
            if response.get("busy"):
                if attempt < self.busy_retries:
                    time.sleep(self.busy_backoff * (attempt + 1))
                    continue
                raise ServerBusyError(
                    f"serve endpoint {self.endpoint} is at capacity: "
                    f"{response.get('error')}")
            raise BatchError(
                f"serve endpoint {self.endpoint} rejected the "
                f"request: {response.get('error')}")
        payload = response.get("result")
        digest = response.get("digest")
        if not isinstance(payload, dict) or not isinstance(digest, str):
            raise BatchError(
                f"serve endpoint {self.endpoint} answered a malformed "
                f"response (missing result/digest)")
        cached = bool(response.get("cached"))
        try:
            result = JobResult(**{**payload, "from_cache": cached})
        except TypeError as error:
            raise BatchError(
                f"serve endpoint {self.endpoint} answered an "
                f"incompatible result payload: {error}") from error
        text = response.get("listing")
        return ServeResult(digest=digest, cached=cached, result=result,
                           listing=text if isinstance(text, str)
                           else None)

    # -- niceties -------------------------------------------------------
    def ping(self) -> bool:
        """Whether the serve endpoint answers at all right now."""
        try:
            response = self._request({"op": "ping"})
        except BatchError:
            return False
        return bool(response.get("ok"))

    def server_stats(self) -> dict:
        """The server-side counters (see :class:`ServeStats`, plus the
        tiered cache's ``hits``/``misses``/``stores`` under
        ``cache``)."""
        response = self._request({"op": "stats"})
        if not response.get("ok"):
            raise BatchError(
                f"serve endpoint {self.endpoint} rejected the stats "
                f"request: {response.get('error')}")
        return {key: value for key, value in response.items()
                if key != "ok"}
