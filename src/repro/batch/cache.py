"""Result caches for the batch compilation engine.

Three stores share one tiny mapping-style protocol (``get``/``put``
plus hit/miss statistics; see :class:`CacheBackend`):

* :class:`InMemoryLRUCache` -- bounded, process-local; the default of
  :class:`~repro.batch.engine.BatchCompiler`, good for repeated runs
  inside one experiment process.
* :class:`JsonFileCache` -- an on-disk JSON store, so benchmark and
  experiment re-runs across process restarts skip recompilation.
  Writes are atomic (temp file + rename) and a corrupt or missing
  store degrades to empty instead of failing the batch.
* :class:`ShardedDirectoryCache` -- one file per entry under sharded
  subdirectories; because every write is an independent atomic rename,
  many processes (or many hosts over a shared mounted path) can work
  against one store concurrently without coordination.

A store may additionally offer ``put_many(entries)`` to persist a
whole batch in one write; the engine prefers it when present, so a
large batch costs one file rewrite instead of one per job.

Payloads are plain JSON-able dicts (the lowered
:class:`~repro.batch.engine.JobResult`); keys are the content digests
of :mod:`repro.batch.digest`.  Stores hand out and keep *defensive
copies*: mutating a payload after ``put`` or a dict returned by
``get`` never reaches the cached state.

:func:`open_cache` maps a CLI-style spec string (``mem``,
``json:PATH``, ``dir:PATH``, or a bare path) to a backend.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import re
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import BatchError


@dataclass
class CacheStats:
    """Hit/miss/store counters, reset with the cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)")


@runtime_checkable
class CacheBackend(Protocol):
    """What the engine needs from a result store.

    Any object with these two methods (plus a ``stats`` attribute for
    reporting) plugs into :class:`~repro.batch.engine.BatchCompiler`;
    ``put_many`` is optional and only an optimization.
    """

    def get(self, digest: str) -> dict | None: ...

    def put(self, digest: str, payload: dict) -> None: ...


def _atomic_write_json(target: Path, payload) -> None:
    """Write ``payload`` as JSON via temp file + rename.

    A failed write cleans up its temp file, but a cleanup failure must
    never mask the original error -- that is what callers need to see.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=target.parent, prefix=target.name + ".",
        suffix=".tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass
class InMemoryLRUCache:
    """A bounded in-memory result cache with LRU eviction."""

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise BatchError(
                f"cache capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        """A copy of the payload under ``digest``, or ``None`` on a miss."""
        try:
            payload = self._entries[digest]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return copy.deepcopy(payload)

    def put(self, digest: str, payload: dict) -> None:
        """Store a copy of ``payload``; evicts the least recently used."""
        self._entries[digest] = copy.deepcopy(payload)
        self._entries.move_to_end(digest)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class JsonFileCache:
    """A persistent result cache backed by one JSON file.

    The whole store is loaded on construction and rewritten atomically
    on every :meth:`put`, which is plenty for suite-sized batches (tens
    of entries) and keeps concurrent readers consistent.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.stats = CacheStats()
        self._entries: dict[str, dict] = self._load()

    def _load(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or not all(
                isinstance(value, dict) for value in raw.values()):
            return {}
        return raw

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        payload = self._entries.get(digest)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return copy.deepcopy(payload)

    def put(self, digest: str, payload: dict) -> None:
        self._entries[digest] = copy.deepcopy(payload)
        self.stats.stores += 1
        self._flush()

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a whole batch with a single atomic file rewrite."""
        if not entries:
            return
        self._entries.update(copy.deepcopy(entries))
        self.stats.stores += len(entries)
        self._flush()

    def _flush(self) -> None:
        _atomic_write_json(self.path, self._entries)


#: Digests that can be used verbatim as file names; anything else is
#: re-hashed (the mapping only has to be deterministic, not readable).
#: The leading character must not be a dot: a ``..``-prefixed name
#: would shard into ``root/../`` and escape the store.
_FILENAME_SAFE = re.compile(r"[A-Za-z0-9_-][A-Za-z0-9_.-]{2,199}")


class ShardedDirectoryCache:
    """A shareable result cache: one file per entry, sharded directories.

    Entries live at ``root/<digest[:2]>/<digest>.json`` -- 256-way
    sharding keeps any one directory small even for grid-scale stores.
    Every write is an independent atomic rename, so any number of
    workers, processes, or hosts (over a mounted shared path) can read
    and write one store concurrently without locks: a reader sees a
    complete entry or none.  Unreadable or corrupt entries degrade to
    misses and are recompiled.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.stats = CacheStats()

    def _entry_path(self, digest: str) -> Path:
        name = digest if _FILENAME_SAFE.fullmatch(digest) else \
            hashlib.sha256(digest.encode("utf-8")).hexdigest()
        return self.root / name[:2] / f"{name}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, digest: str) -> dict | None:
        try:
            payload = json.loads(self._entry_path(digest).read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        _atomic_write_json(self._entry_path(digest), payload)
        self.stats.stores += 1

    def put_many(self, entries: dict[str, dict]) -> None:
        for digest, payload in entries.items():
            self.put(digest, payload)


def open_cache(spec: str | Path) -> CacheBackend:
    """Open a cache backend from a spec string.

    * ``mem`` or ``mem:CAPACITY`` -- process-local LRU;
    * ``json:PATH``, or any path ending in ``.json`` -- single-file
      :class:`JsonFileCache`;
    * ``dir:PATH``, or any other path -- :class:`ShardedDirectoryCache`
      (the multi-host choice).
    """
    text = str(spec)
    if text == "mem":
        return InMemoryLRUCache()
    if text.startswith("mem:"):
        try:
            capacity = int(text[len("mem:"):])
        except ValueError:
            raise BatchError(f"invalid cache capacity in spec {text!r}")
        return InMemoryLRUCache(capacity=capacity)
    if text.startswith("json:"):
        return JsonFileCache(text[len("json:"):])
    if text.startswith("dir:"):
        return ShardedDirectoryCache(text[len("dir:"):])
    if text.endswith(".json"):
        return JsonFileCache(text)
    return ShardedDirectoryCache(text)
