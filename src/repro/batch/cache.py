"""Result caches for the batch compilation engine.

Two stores share one tiny mapping-style protocol (``get``/``put`` plus
hit/miss statistics):

* :class:`InMemoryLRUCache` -- bounded, process-local; the default of
  :class:`~repro.batch.engine.BatchCompiler`, good for repeated runs
  inside one experiment process.
* :class:`JsonFileCache` -- an on-disk JSON store, so benchmark and
  experiment re-runs across process restarts skip recompilation.
  Writes are atomic (temp file + rename) and a corrupt or missing
  store degrades to empty instead of failing the batch.

A store may additionally offer ``put_many(entries)`` to persist a
whole batch in one write; the engine prefers it when present, so a
large batch costs one file rewrite instead of one per job.

Payloads are plain JSON-able dicts (the lowered
:class:`~repro.batch.engine.JobResult`); keys are the content digests
of :mod:`repro.batch.digest`.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import BatchError


@dataclass
class CacheStats:
    """Hit/miss/store counters, reset with the cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)")


@dataclass
class InMemoryLRUCache:
    """A bounded in-memory result cache with LRU eviction."""

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise BatchError(
                f"cache capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        """The payload stored under ``digest``, or ``None`` on a miss."""
        try:
            payload = self._entries[digest]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload``; evicts the least recently used entry."""
        self._entries[digest] = payload
        self._entries.move_to_end(digest)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class JsonFileCache:
    """A persistent result cache backed by one JSON file.

    The whole store is loaded on construction and rewritten atomically
    on every :meth:`put`, which is plenty for suite-sized batches (tens
    of entries) and keeps concurrent readers consistent.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.stats = CacheStats()
        self._entries: dict[str, dict] = self._load()

    def _load(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or not all(
                isinstance(value, dict) for value in raw.values()):
            return {}
        return raw

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        payload = self._entries.get(digest)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        self._entries[digest] = payload
        self.stats.stores += 1
        self._flush()

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a whole batch with a single atomic file rewrite."""
        if not entries:
            return
        self._entries.update(entries)
        self.stats.stores += len(entries)
        self._flush()

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.path.parent, prefix=self.path.name + ".",
            suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(self._entries, handle, sort_keys=True)
            os.replace(handle.name, self.path)
        except BaseException:
            os.unlink(handle.name)
            raise
