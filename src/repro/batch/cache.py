"""Result caches for the batch compilation engine.

Three stores share one tiny mapping-style protocol (``get``/``put``
plus hit/miss statistics; see :class:`CacheBackend`):

* :class:`InMemoryLRUCache` -- bounded, process-local; the default of
  :class:`~repro.batch.engine.BatchCompiler`, good for repeated runs
  inside one experiment process.
* :class:`JsonFileCache` -- an on-disk JSON store, so benchmark and
  experiment re-runs across process restarts skip recompilation.
  Writes are atomic (temp file + rename) and a corrupt or missing
  store degrades to empty instead of failing the batch.
* :class:`ShardedDirectoryCache` -- one file per entry under sharded
  subdirectories; because every write is an independent atomic rename,
  many processes (or many hosts over a shared mounted path) can work
  against one store concurrently without coordination.

A store may additionally offer ``put_many(entries)`` to persist a
whole batch in one write; the engine prefers it when present, so a
large batch costs one file rewrite instead of one per job.

Payloads are plain JSON-able dicts (the lowered
:class:`~repro.batch.engine.JobResult`); keys are the content digests
of :mod:`repro.batch.digest`.  Stores hand out and keep *defensive
copies*: mutating a payload after ``put`` or a dict returned by
``get`` never reaches the cached state.

:func:`open_cache` maps a CLI-style spec string (``mem``,
``json:PATH``, ``dir:PATH``, ``tcp://HOST:PORT``, or a bare path) to a
backend.  Only *known* schemes are treated as schemes, so bare paths
containing a colon (``C:\\cache``, ``./odd:name``) open as paths.

Stats accounting is uniform across backends: every ``get`` counts
exactly one hit or one miss (``hits + misses == lookups``), every
entry actually persisted counts one store (``put_many`` counts per
entry, not per call), and a corrupt or unreadable on-disk entry counts
a miss instead of raising into the batch -- provably corrupt entries
are additionally removed so the recompiled result can take their
place (transient read errors are not, to protect shared stores).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import re
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import BatchError


@dataclass
class CacheStats:
    """Hit/miss/store counters, reset with the cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s)")


@runtime_checkable
class CacheBackend(Protocol):
    """What the engine needs from a result store.

    Any object with these two methods (plus a ``stats`` attribute for
    reporting) plugs into :class:`~repro.batch.engine.BatchCompiler`;
    ``put_many(entries)`` and ``get_many(digests) -> dict`` are
    optional batching optimizations the engine prefers when present.
    """

    def get(self, digest: str) -> dict | None: ...

    def put(self, digest: str, payload: dict) -> None: ...


def _atomic_write_json(target: Path, payload) -> None:
    """Write ``payload`` as JSON via temp file + rename.

    A failed write cleans up its temp file, but a cleanup failure must
    never mask the original error -- that is what callers need to see.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=target.parent,
        prefix=target.name + ".", suffix=".tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass
class InMemoryLRUCache:
    """A bounded in-memory result cache with LRU eviction."""

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise BatchError(
                f"cache capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        """A copy of the payload under ``digest``, or ``None`` on a miss."""
        try:
            payload = self._entries[digest]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return copy.deepcopy(payload)

    def put(self, digest: str, payload: dict) -> None:
        """Store a copy of ``payload``; evicts the least recently used."""
        self._entries[digest] = copy.deepcopy(payload)
        self._entries.move_to_end(digest)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a batch; counts one store per entry, like every backend."""
        for digest, payload in entries.items():
            self.put(digest, payload)


class JsonFileCache:
    """A persistent result cache backed by one JSON file.

    The whole store is loaded on construction and rewritten atomically
    on every :meth:`put`, which is plenty for suite-sized batches (tens
    of entries) and keeps concurrent readers consistent.
    """

    def __init__(self, path: str | Path, *,
                 entries: dict[str, dict] | None = None):
        self.path = Path(path)
        self.stats = CacheStats()
        # ``entries``: pre-parsed store content (open_cache's
        # existing-file adoption path), so the file is not read and
        # parsed a second time.  Same per-entry salvage as _load.
        self._entries: dict[str, dict] = self._load() \
            if entries is None else {
                digest: value for digest, value in entries.items()
                if isinstance(value, dict)}

    def _load(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        # Per-entry salvage: one corrupt value (a crashed writer, a
        # hand-edited store) must cost that entry a recompile, not the
        # whole store.
        return {digest: value for digest, value in raw.items()
                if isinstance(value, dict)}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        """A copy of the payload under ``digest``, or ``None`` on a
        miss."""
        payload = self._entries.get(digest)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return copy.deepcopy(payload)

    def put(self, digest: str, payload: dict) -> None:
        """Store a copy of ``payload`` and rewrite the file atomically.
        """
        self._entries[digest] = copy.deepcopy(payload)
        self.stats.stores += 1
        self._flush()

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a whole batch with a single atomic file rewrite."""
        if not entries:
            return
        self._entries.update(copy.deepcopy(entries))
        self.stats.stores += len(entries)
        self._flush()

    def _flush(self) -> None:
        _atomic_write_json(self.path, self._entries)


#: Digests that can be used verbatim as file names; anything else is
#: re-hashed (the mapping only has to be deterministic, not readable).
#: The leading character must not be a dot: a ``..``-prefixed name
#: would shard into ``root/../`` and escape the store.
_FILENAME_SAFE = re.compile(r"[A-Za-z0-9_-][A-Za-z0-9_.-]{2,199}")


class ShardedDirectoryCache:
    """A shareable result cache: one file per entry, sharded directories.

    Entries live at ``root/<digest[:2]>/<digest>.json`` -- 256-way
    sharding keeps any one directory small even for grid-scale stores.
    Every write is an independent atomic rename, so any number of
    workers, processes, or hosts (over a mounted shared path) can read
    and write one store concurrently without locks: a reader sees a
    complete entry or none.  Unreadable or corrupt entries degrade to
    misses and are recompiled.
    """

    def __init__(self, root: str | Path, *,
                 discard_corrupt: bool = True):
        self.root = Path(root)
        self.stats = CacheStats()
        #: Whether a provably corrupt entry found by ``get`` is
        #: unlinked so the recompiled result can take its place.  A
        #: read-only server turns this off: serving must then never
        #: write to the store at all.
        self.discard_corrupt = discard_corrupt

    def _entry_path(self, digest: str) -> Path:
        name = digest if _FILENAME_SAFE.fullmatch(digest) else \
            hashlib.sha256(digest.encode("utf-8")).hexdigest()
        return self.root / name[:2] / f"{name}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, digest: str) -> dict | None:
        """The payload under ``digest``; unreadable or corrupt entries
        count a miss (see the discard rules above)."""
        path = self._entry_path(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            # Missing or unreadable: a miss, but never a discard -- a
            # transient EIO/ESTALE on a shared mount must not destroy
            # another host's perfectly good entry.
            self.stats.misses += 1
            return None
        except ValueError:
            # Provably corrupt content (atomic renames guarantee full
            # writes, so this is real damage, not a torn write):
            # discard it so the recompiled result can take its place.
            if self.discard_corrupt:
                self._discard(path)
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            if self.discard_corrupt:
                self._discard(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    @staticmethod
    def _discard(path: Path) -> None:
        """Remove a corrupt entry -- after re-checking that it still
        *is* corrupt, so a concurrent writer's fresh atomic rename onto
        the same path is (almost) never the thing unlinked.  The re-read
        narrows the race to unlink-after-verify; losing that one costs a
        recompile, never a wrong result."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return
        except ValueError:
            payload = None
        if isinstance(payload, dict):
            return
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, digest: str, payload: dict) -> None:
        """Write ``payload`` to its own entry file with an atomic
        rename."""
        _atomic_write_json(self._entry_path(digest), payload)
        self.stats.stores += 1

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a batch; counts one store per entry via :meth:`put`."""
        for digest, payload in entries.items():
            self.put(digest, payload)


class TieredCache:
    """A warm in-process LRU tier in front of any other backend.

    The serving front end's cache: hot digests are answered from a
    process-local :class:`InMemoryLRUCache` without touching the
    backing store at all (for a ``tcp://`` backend that means hot
    kernels never touch the wire), while misses fall through to the
    backend and *promote* -- a payload fetched once is warm from then
    on.  Writes go to both tiers.  ``backend=None`` degrades to a
    plain bounded LRU, which makes the tier usable as the serve
    endpoint's default cache with no store configured.

    Unlike the single-process backends, this one is thread-safe: the
    warm tier and the stats sit behind one lock, backend access behind
    another, so concurrent warm hits are never stuck behind one slow
    backend round trip.  Backends without their own thread safety are
    fine -- all backend calls are serialized.

    Stats follow the uniform accounting: one hit or miss per ``get``
    (a hit whichever tier answered), one store per entry written.  The
    backend keeps its own counters, which is what lets callers tell
    warm hits from backend hits (the difference never reaches the
    backend's ``lookups``).
    """

    def __init__(self, backend: CacheBackend | None = None, *,
                 capacity: int = 4096):
        if isinstance(backend, TieredCache):
            raise BatchError(
                "a TieredCache cannot front another TieredCache")
        self.backend = backend
        self.stats = CacheStats()
        self._warm = InMemoryLRUCache(capacity=capacity)
        self._warm_lock = threading.RLock()
        self._backend_lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._warm)

    def __repr__(self) -> str:
        return (f"TieredCache(capacity={self._warm.capacity}, "
                f"backend={self.backend!r})")

    def get(self, digest: str) -> dict | None:
        """The payload under ``digest``: warm tier first, then the
        backend (promoting the payload into the warm tier on a hit)."""
        with self._warm_lock:
            payload = self._warm.get(digest)
            if payload is not None:
                self.stats.hits += 1
                return payload
        payload = None
        if self.backend is not None:
            with self._backend_lock:
                payload = self.backend.get(digest)
        with self._warm_lock:
            if not isinstance(payload, dict):
                self.stats.misses += 1
                return None
            self._warm.put(digest, payload)
            self.stats.hits += 1
        return payload

    def get_many(self, digests) -> dict[str, dict]:
        """Payloads for every cached digest: the warm tier answers
        what it can, one batched backend fetch covers the rest (found
        entries are promoted).  Counts one hit or miss per digest."""
        digests = list(dict.fromkeys(digests))
        found: dict[str, dict] = {}
        missing: list[str] = []
        with self._warm_lock:
            for digest in digests:
                payload = self._warm.get(digest)
                if payload is not None:
                    found[digest] = payload
                else:
                    missing.append(digest)
        if missing and self.backend is not None:
            with self._backend_lock:
                get_many = getattr(self.backend, "get_many", None)
                if get_many is not None:
                    fetched = get_many(missing)
                else:
                    fetched = {digest: payload for digest in missing
                               if (payload := self.backend.get(digest))
                               is not None}
            with self._warm_lock:
                for digest, payload in fetched.items():
                    if isinstance(payload, dict):
                        self._warm.put(digest, payload)
                        found[digest] = payload
        with self._warm_lock:
            self.stats.hits += len(found)
            self.stats.misses += len(digests) - len(found)
        return found

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload`` in both tiers."""
        with self._warm_lock:
            self._warm.put(digest, payload)
            self.stats.stores += 1
        if self.backend is not None:
            with self._backend_lock:
                self.backend.put(digest, payload)

    def put_many(self, entries: dict[str, dict]) -> None:
        """Store a batch in both tiers (one backend batch write when
        the backend supports it); counts one store per entry."""
        if not entries:
            return
        with self._warm_lock:
            for digest, payload in entries.items():
                self._warm.put(digest, payload)
            self.stats.stores += len(entries)
        if self.backend is not None:
            with self._backend_lock:
                put_many = getattr(self.backend, "put_many", None)
                if put_many is not None:
                    put_many(entries)
                else:
                    for digest, payload in entries.items():
                        self.backend.put(digest, payload)


#: The spec schemes :func:`open_cache` understands.  Matching is
#: restricted to this set on purpose: a bare path that happens to
#: contain a colon (``C:\cache``, ``./odd:name``) must open as a path,
#: not be misparsed as a scheme-prefixed spec.
KNOWN_CACHE_SCHEMES = ("mem", "json", "dir", "tcp")

#: Anything shaped like ``scheme://...``; used only to *reject* unknown
#: schemes loudly (a typo like ``redis://...`` should not silently
#: become a directory store named "redis:").
_URL_LIKE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.-]*)://")

#: ``?key=value`` options ``tcp://`` specs may carry, mapped to
#: :class:`~repro.batch.service.RemoteCache` constructor arguments.
_TCP_OPTIONS = {"timeout": float, "retry_interval": float,
                "batch_size": int}


def _open_remote(text: str) -> CacheBackend:
    """``tcp://HOST:PORT[?options]`` -> a connected-on-demand client.

    The spec grammar (incl. bracketed IPv6 hosts and the option
    allowlist mechanics) is the batch layer's shared
    :func:`~repro.batch.service.parse_endpoint`.
    """
    from repro.batch.service import RemoteCache, parse_endpoint

    host, port, options = parse_endpoint(text, _TCP_OPTIONS)
    return RemoteCache(host, port, **options)


def _open_file_store(path: Path, text: str, *,
                     salvage_corrupt: bool) -> JsonFileCache:
    """Open a bare-path single-file store, refusing to adopt a file
    that is provably someone else's data.

    A store is a JSON object whose values are all payload objects;
    anything that parses to something else -- a list, a scalar, or an
    object with scalar values like a ``package.json`` -- is refused
    rather than silently rewritten on the first ``put``.  That
    deliberately also refuses a *store* whose file grew non-dict
    values (hand edits): the two are indistinguishable, data loss is
    the worse failure, and the error points at the ``json:PATH``
    escape hatch, which skips this check and salvages per entry.
    Unparseable content is a corrupt store only for ``.json``-suffixed
    paths (``salvage_corrupt``, the documented degrade-to-empty
    behavior); for suffix-less files it is refused too.  The single
    read+parse here is handed to the store, so an adopted file is not
    parsed twice per open.
    """
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return JsonFileCache(text)  # the common new-store case
    except OSError as error:
        # Exists but unreadable (permissions, I/O error): adopting it
        # would let the first put rename cache JSON over data we could
        # not even inspect.
        raise BatchError(
            f"cache spec {text!r} is an existing file that cannot be "
            f"read ({error}); refusing to touch it")
    try:
        existing = json.loads(raw)
    except ValueError:
        if salvage_corrupt:
            return JsonFileCache(text)
        raise _refuse_overwrite(text)
    if isinstance(existing, dict) and all(
            isinstance(value, dict) for value in existing.values()):
        return JsonFileCache(text, entries=existing)
    raise _refuse_overwrite(text)


def _refuse_overwrite(text: str) -> BatchError:
    return BatchError(
        f"cache spec {text!r} is an existing file that does not look "
        f"like a JSON store; refusing to touch it (if it really is "
        f"one -- e.g. a store with damaged entries -- pass "
        f"json:{text} to open it anyway with per-entry salvage)")


def open_cache(spec: str | Path) -> CacheBackend:
    """Open a cache backend from a spec string.

    * ``mem`` or ``mem:CAPACITY`` -- process-local LRU;
    * ``json:PATH``, or any path ending in ``.json`` -- single-file
      :class:`JsonFileCache`;
    * ``dir:PATH``, or any other path -- :class:`ShardedDirectoryCache`
      (the shared-filesystem choice);
    * ``tcp://HOST:PORT`` -- a :class:`~repro.batch.service.RemoteCache`
      client against a running ``repro-agu cache-serve`` (the
      multi-process / multi-host choice).

    Only the schemes above are treated as schemes; any other spec is a
    bare path, even when it contains a colon.  An unknown
    ``scheme://...`` spec is rejected loudly instead of being opened as
    an oddly named directory store.
    """
    text = str(spec)
    if text == "mem":
        return InMemoryLRUCache()
    # URL-style specs first: only tcp:// is a URL.  This also catches
    # URL-style typos of the *known* schemes (json://PATH would
    # otherwise slip through the json: prefix check below and open a
    # store at //PATH -- the filesystem root).
    match = _URL_LIKE.match(text)
    if match is not None:
        scheme = match["scheme"].lower()
        if scheme == "tcp":
            return _open_remote(text)
        if scheme in KNOWN_CACHE_SCHEMES:
            raise BatchError(
                f"malformed cache spec {text!r}: {scheme} specs use "
                f"the single-colon form ({scheme}:...); only tcp:// "
                f"is a URL")
        raise BatchError(
            f"unknown cache scheme {match['scheme']!r} in spec "
            f"{text!r} (known schemes: "
            f"{', '.join(KNOWN_CACHE_SCHEMES)}; bare paths need no "
            f"scheme)")
    if text.startswith("mem:"):
        try:
            capacity = int(text[len("mem:"):])
        except ValueError:
            raise BatchError(f"invalid cache capacity in spec {text!r}")
        return InMemoryLRUCache(capacity=capacity)
    if text.startswith("json:"):
        return JsonFileCache(text[len("json:"):])
    if text.startswith("dir:"):
        return ShardedDirectoryCache(text[len("dir:"):])
    if text.startswith("tcp:"):
        return _open_remote(text)
    # Bare path heuristics.  A ``.json`` suffix means a single-file
    # store; an existing file *without* the suffix opens as one only
    # if it already is one (e.g. written before the suffix
    # convention).  Either way an existing file that is provably not a
    # store -- someone's data -- is refused rather than overwritten
    # (see _open_file_store).  Everything else is a sharded directory.
    path = Path(text)
    if text.endswith(".json"):
        return _open_file_store(path, text, salvage_corrupt=True)
    if path.is_file():
        return _open_file_store(path, text, salvage_corrupt=False)
    return ShardedDirectoryCache(text)
