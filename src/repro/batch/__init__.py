"""Batch compilation: suites in, cached per-kernel summaries out.

The scaling layer on top of :func:`repro.core.pipeline.compile_kernel`:

* :mod:`repro.batch.jobs` -- picklable :class:`BatchJob` units, the
  factories that mass-produce them (suites, kernel lists, random
  families, spec/config matrices), and :class:`StatisticalGridJob`
  (one EXP-S1 grid point as a cacheable work unit);
* :mod:`repro.batch.registry` -- the experiment registry:
  :class:`ExperimentDefinition` contracts that let any experiment
  shard as :class:`ExperimentPointJob` points;
* :mod:`repro.batch.digest` -- stable content digests that key the
  result cache;
* :mod:`repro.batch.cache` -- in-memory LRU, on-disk JSON, and sharded
  multi-host directory stores behind one backend protocol;
* :mod:`repro.batch.service` -- the remote cache service:
  :class:`CacheServer` fronts any store over TCP (the ``repro-agu
  cache-serve`` subcommand) and :class:`RemoteCache` is the matching
  ``tcp://host:port`` client backend;
* :mod:`repro.batch.engine` -- :class:`BatchCompiler` (cache
  orchestration, streaming ``as_completed``/``run_iter`` delivery),
  the aggregated :class:`BatchReport`, and the :class:`Executor` seam
  (:class:`InlineExecutor`, :class:`LocalPoolExecutor`,
  :func:`open_executor`) that decides where cache misses run;
* :mod:`repro.batch.cluster` -- the distributed execution service:
  :class:`JobServer` (the ``repro-agu job-serve`` subcommand) leases
  jobs to :class:`Worker` processes (``repro-agu worker``) on any
  number of hosts, and :class:`ClusterExecutor` is the matching
  ``tcp://host:port`` execution backend;
* :mod:`repro.batch.serving` -- compile-as-a-service:
  :class:`CompileService` (the ``repro-agu serve`` subcommand) answers
  single-kernel compile requests over TCP -- admission-controlled,
  micro-batched through the engine, fronted by a warm
  :class:`TieredCache` -- and :class:`ServeClient` is the matching
  pooled client.
"""

from repro.batch.cache import (
    CacheBackend,
    CacheStats,
    InMemoryLRUCache,
    JsonFileCache,
    ShardedDirectoryCache,
    TieredCache,
    open_cache,
)
from repro.batch.digest import DIGEST_VERSION, job_digest
from repro.batch.registry import (
    ExperimentDefinition,
    experiment_point_jobs,
    get_experiment,
    register_experiment,
    registered_experiments,
)
from repro.batch.engine import (
    BatchCompiler,
    BatchReport,
    Executor,
    InlineExecutor,
    JobResult,
    LocalPoolExecutor,
    execute_any,
    execute_job,
    open_executor,
)
from repro.batch.cluster import ClusterExecutor, JobServer, Worker
from repro.batch.service import CacheServer, RemoteCache
from repro.batch.serving import (
    CompileService,
    ServeClient,
    ServeResult,
    ServeStats,
    ServerBusyError,
)
from repro.batch.jobs import (
    BatchJob,
    ExperimentPointJob,
    ExperimentPointResult,
    GridPointResult,
    StatisticalGridJob,
    job_matrix,
    jobs_from_kernels,
    jobs_from_random,
    jobs_from_suite,
    naive_baseline_seed,
)

__all__ = [
    "BatchCompiler",
    "BatchJob",
    "BatchReport",
    "CacheBackend",
    "CacheServer",
    "CacheStats",
    "ClusterExecutor",
    "CompileService",
    "DIGEST_VERSION",
    "Executor",
    "ExperimentDefinition",
    "ExperimentPointJob",
    "ExperimentPointResult",
    "GridPointResult",
    "InMemoryLRUCache",
    "InlineExecutor",
    "JobResult",
    "JobServer",
    "JsonFileCache",
    "LocalPoolExecutor",
    "RemoteCache",
    "ServeClient",
    "ServeResult",
    "ServeStats",
    "ServerBusyError",
    "ShardedDirectoryCache",
    "StatisticalGridJob",
    "TieredCache",
    "Worker",
    "execute_any",
    "experiment_point_jobs",
    "get_experiment",
    "execute_job",
    "job_digest",
    "job_matrix",
    "jobs_from_kernels",
    "jobs_from_random",
    "jobs_from_suite",
    "naive_baseline_seed",
    "register_experiment",
    "registered_experiments",
    "open_cache",
    "open_executor",
]
