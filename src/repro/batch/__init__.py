"""Batch compilation: suites in, cached per-kernel summaries out.

The scaling layer on top of :func:`repro.core.pipeline.compile_kernel`:

* :mod:`repro.batch.jobs` -- picklable :class:`BatchJob` units and the
  factories that mass-produce them (suites, kernel lists, random
  families, spec/config matrices);
* :mod:`repro.batch.digest` -- stable content digests that key the
  result cache;
* :mod:`repro.batch.cache` -- in-memory LRU and on-disk JSON stores;
* :mod:`repro.batch.engine` -- :class:`BatchCompiler` (process-pool
  fan-out, cache orchestration) and the aggregated
  :class:`BatchReport`.
"""

from repro.batch.cache import CacheStats, InMemoryLRUCache, JsonFileCache
from repro.batch.digest import DIGEST_VERSION, job_digest
from repro.batch.engine import (
    BatchCompiler,
    BatchReport,
    JobResult,
    execute_job,
)
from repro.batch.jobs import (
    BatchJob,
    job_matrix,
    jobs_from_kernels,
    jobs_from_random,
    jobs_from_suite,
)

__all__ = [
    "BatchCompiler",
    "BatchJob",
    "BatchReport",
    "CacheStats",
    "DIGEST_VERSION",
    "InMemoryLRUCache",
    "JobResult",
    "JsonFileCache",
    "execute_job",
    "job_digest",
    "job_matrix",
    "jobs_from_kernels",
    "jobs_from_random",
    "jobs_from_suite",
]
