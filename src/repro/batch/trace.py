"""Structured execution traces for the batch and cluster layers.

The cluster distributes paper experiments bit-identically but, until
this module, could not answer "where did the wall-clock go".  Three
pieces close that gap, following the trace-collect -> analyze -> act
model:

* :class:`Tracer` -- a thread-safe JSONL event writer.  A trace file
  starts with one schema-versioned *header* line carrying a wall-clock
  anchor and the monotonic-clock origin, followed by one compact JSON
  *event* per line whose ``t`` is seconds since that origin (monotonic,
  so durations are immune to wall-clock steps).  Writes are a single
  ``write()`` call per event (atomic for line-sized appends on POSIX)
  so concurrent emitters never interleave partial lines.  The disabled
  form (:data:`NULL_TRACER`) makes every emit a no-op attribute check,
  so instrumented code costs nothing when tracing is off.
* :func:`read_trace` -- load and validate a trace back into a
  :class:`Trace` (the JSONL round-trip contract the property tests
  pin).
* :func:`analyze_trace` -- lower a trace to a :class:`TraceReport`:
  per-worker utilization with idle-gap attribution, straggler
  detection, the self-timed critical path, cache-hit and
  requeue/speculation accounting, rendered as text, timeline, or JSON.

Event vocabulary (producers annotate; unknown *fields* are carried
through, unknown *kinds* are rejected at read time so schema drift is
loud): ``enqueue``, ``lease``, ``start``, ``finish``, ``requeue``,
``expire``, ``speculate``, ``stale_result``, ``cache_hit``, ``drop``,
``heartbeat``, ``worker_join``, ``worker_leave``.  The lease-lifecycle
invariant -- every ``lease`` gets exactly one terminal ``finish`` /
``expire`` / ``requeue`` -- is what the analyzer's interval model and
the property tests in ``tests/test_trace_events.py`` rely on.
"""

from __future__ import annotations

import io
import json
import math
import os
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import BatchError

#: Schema tag written into every trace header; bump on layout breaks.
TRACE_SCHEMA = "repro.batch.trace/1"

#: Every event kind a schema-1 trace may contain.
EVENT_KINDS = frozenset({
    "enqueue", "lease", "start", "finish", "requeue", "expire",
    "speculate", "stale_result", "cache_hit", "drop", "heartbeat",
    "worker_join", "worker_leave",
})

#: Kinds that terminate a lease (exactly one per ``lease`` event).
LEASE_TERMINAL_KINDS = frozenset({"finish", "expire", "requeue"})


class TraceError(BatchError):
    """A trace file is malformed or does not speak :data:`TRACE_SCHEMA`."""


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (``pct`` in 0..100).

    The same estimator the adaptive-lease and speculation policies use
    server-side, exposed so analyzer output matches policy decisions.
    Raises :class:`ValueError` on an empty sequence.
    """
    if not values:
        raise ValueError("percentile() of an empty sequence")
    ordered = sorted(values)
    rank = max(1, math.ceil((pct / 100.0) * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Tracer:
    """Append schema-versioned JSONL trace events to a stream.

    Parameters
    ----------
    sink:
        A path (opened for append, line-buffered intent) or any
        ``.write()``-able text stream (tests pass ``io.StringIO``).
    source:
        Which subsystem is emitting (``job-server`` / ``engine`` /
        ``worker``); recorded in the header.
    clock:
        Monotonic-clock callable; injectable so virtual-clock tests
        produce deterministic timestamps.
    meta:
        Free-form JSON-able annotations for the header.

    The header line is written eagerly at construction, so even an
    empty run leaves a valid, attributable trace artifact.
    """

    #: Instrumented code may branch on this to skip building event
    #: fields entirely; the null tracer reports ``False``.
    enabled = True

    def __init__(self, sink: Any, *, source: str = "unknown",
                 clock: Callable[[], float] = time.monotonic,
                 meta: dict | None = None):
        self._clock = clock
        self._lock = threading.Lock()
        self._owns_sink = isinstance(sink, (str, Path))
        if self._owns_sink:
            path = Path(sink)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(path, "a", encoding="utf-8")
        else:
            self._stream = sink
        self._origin = clock()
        header = {
            "schema": TRACE_SCHEMA,
            "source": source,
            "wall": time.time(),
            "monotonic": self._origin,
            "pid": os.getpid(),
        }
        if meta:
            header["meta"] = meta
        self._write_line(header)

    def _write_line(self, record: dict) -> None:
        text = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        with self._lock:
            self._stream.write(text)
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event; ``t`` is seconds since the header origin."""
        record = {"t": round(self._clock() - self._origin, 9),
                  "kind": kind}
        record.update(fields)
        self._write_line(record)

    def close(self) -> None:
        """Close the sink if this tracer opened it (idempotent)."""
        with self._lock:
            if self._owns_sink and self._stream is not None:
                self._stream.close()
                self._owns_sink = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def emit(self, kind: str, **fields: Any) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "_NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


#: The shared disabled tracer instrumented code defaults to.
NULL_TRACER = _NullTracer()


def open_tracer(spec: Any, *, source: str,
                clock: Callable[[], float] = time.monotonic,
                meta: dict | None = None) -> Tracer | _NullTracer:
    """Build a :class:`Tracer` from a configuration value.

    ``None`` (tracing off) returns :data:`NULL_TRACER`; an existing
    :class:`Tracer` (or anything with an ``emit``) passes through so
    layers can share one sink; a path or stream opens a new tracer.
    """
    if spec is None:
        return NULL_TRACER
    if hasattr(spec, "emit"):
        return spec
    return Tracer(spec, source=source, clock=clock, meta=meta)


@dataclass
class Trace:
    """One parsed trace: its header line and its event lines."""

    #: The schema-versioned header record.
    header: dict
    #: Every event record, in file order.
    events: list[dict]

    @property
    def source(self) -> str:
        """The emitting subsystem named in the header."""
        return str(self.header.get("source", "unknown"))


def _iter_lines(source: Any) -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            yield from stream
        return
    if isinstance(source, io.StringIO):
        yield from source.getvalue().splitlines()
        return
    yield from source


def read_trace(source: Any) -> Trace:
    """Parse and validate a JSONL trace from a path, stream, or lines.

    Validation is the round-trip contract: the header must carry
    :data:`TRACE_SCHEMA`, every event needs a known ``kind`` and a
    non-negative numeric ``t``.  Raises :class:`TraceError` otherwise.
    """
    header: dict | None = None
    events: list[dict] = []
    for lineno, line in enumerate(_iter_lines(source), start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise TraceError(
                f"trace line {lineno} is not JSON: {error}") from error
        if not isinstance(record, dict):
            raise TraceError(
                f"trace line {lineno} is not a JSON object")
        if header is None:
            schema = record.get("schema")
            if schema != TRACE_SCHEMA:
                raise TraceError(
                    f"trace header speaks schema {schema!r}; this "
                    f"reader speaks {TRACE_SCHEMA!r}")
            header = record
            continue
        kind = record.get("kind")
        if kind not in EVENT_KINDS:
            raise TraceError(
                f"trace line {lineno}: unknown event kind {kind!r}")
        t = record.get("t")
        if not isinstance(t, (int, float)) or t < 0 or not \
                math.isfinite(t):
            raise TraceError(
                f"trace line {lineno}: event needs a finite "
                f"non-negative 't', got {t!r}")
        events.append(record)
    if header is None:
        raise TraceError("trace is empty (no header line)")
    return Trace(header=header, events=events)


def job_label(batch: Any, index: Any, name: Any = None) -> str:
    """Human-readable identity of one job, e.g. ``b1[3] grid-n20``."""
    base = f"{batch}[{index}]" if batch is not None else f"[{index}]"
    return f"{base} {name}" if name else base


@dataclass
class _Attempt:
    """One lease lifetime reconstructed from the event stream."""

    lease_id: str
    job: tuple
    worker: str | None
    start_t: float
    end_t: float | None = None
    terminal: str | None = None
    outcome: str | None = None
    seconds: float | None = None


@dataclass
class WorkerReport:
    """Utilization and idle-gap attribution of one worker lane."""

    #: The worker's identity (server-assigned id or wire name).
    name: str
    #: Seconds inside merged lease intervals.
    busy_seconds: float = 0.0
    #: Seconds from the lane's first to last observed activity.
    span_seconds: float = 0.0
    #: ``busy / span`` clamped to [0, 1] (1.0 for a zero-width span).
    utilization: float = 0.0
    #: Lease attempts observed on this lane.
    n_attempts: int = 0
    #: Results the server accepted from this lane.
    n_completed: int = 0
    #: Idle seconds while the ready queue was empty (no work existed).
    idle_no_work_seconds: float = 0.0
    #: Idle seconds while work was queued (scheduling/transit gap).
    idle_starved_seconds: float = 0.0


@dataclass
class TraceReport:
    """The analyzed form of one trace (see :func:`analyze_trace`)."""

    #: The emitting subsystem (header ``source``).
    source: str
    #: Wall-clock anchor of the trace origin (header ``wall``).
    wall: float
    #: First and last event timestamps (trace-relative seconds).
    t0: float = 0.0
    t1: float = 0.0
    #: Jobs enqueued / accepted-complete / accepted-failed.
    n_jobs: int = 0
    n_completed: int = 0
    n_failed: int = 0
    #: Scheduling churn counters.
    n_requeued: int = 0
    n_expired: int = 0
    n_speculated: int = 0
    n_stale: int = 0
    n_dropped: int = 0
    n_cache_hits: int = 0
    #: Median accepted execution seconds (0.0 with no completions).
    median_seconds: float = 0.0
    #: Per-worker lanes keyed by worker name.
    workers: dict[str, WorkerReport] = field(default_factory=dict)
    #: Stragglers: ``(label, worker, seconds, ratio_to_median)``.
    stragglers: list[tuple[str, str, float, float]] = \
        field(default_factory=list)
    #: Critical-path seconds and its job labels, last-finisher first.
    critical_path_seconds: float = 0.0
    critical_path_jobs: list[str] = field(default_factory=list)
    #: Internal: completed attempts for the timeline renderer.
    _attempts: list[_Attempt] = field(default_factory=list, repr=False)

    @property
    def makespan(self) -> float:
        """Seconds from the first to the last event in the trace."""
        return max(0.0, self.t1 - self.t0)

    def to_json(self) -> dict:
        """The report as a JSON-able dict (schema-tagged)."""
        return {
            "schema": "repro.batch.trace-report/1",
            "source": self.source,
            "wall": self.wall,
            "makespan_seconds": round(self.makespan, 6),
            "jobs": {
                "enqueued": self.n_jobs,
                "completed": self.n_completed,
                "failed": self.n_failed,
                "requeued": self.n_requeued,
                "expired": self.n_expired,
                "speculated": self.n_speculated,
                "stale_results": self.n_stale,
                "dropped": self.n_dropped,
                "cache_hits": self.n_cache_hits,
            },
            "median_exec_seconds": round(self.median_seconds, 6),
            "workers": {
                name: {
                    "utilization": round(w.utilization, 4),
                    "busy_seconds": round(w.busy_seconds, 6),
                    "span_seconds": round(w.span_seconds, 6),
                    "attempts": w.n_attempts,
                    "completed": w.n_completed,
                    "idle_no_work_seconds":
                        round(w.idle_no_work_seconds, 6),
                    "idle_starved_seconds":
                        round(w.idle_starved_seconds, 6),
                } for name, w in sorted(self.workers.items())
            },
            "stragglers": [
                {"job": label, "worker": worker,
                 "seconds": round(seconds, 6),
                 "ratio_to_median": round(ratio, 3)}
                for label, worker, seconds, ratio in self.stragglers
            ],
            "critical_path": {
                "seconds": round(self.critical_path_seconds, 6),
                "jobs": list(self.critical_path_jobs),
            },
        }

    def render(self, *, top: int = 5) -> str:
        """The report as a human-readable text block."""
        lines = [f"trace report ({TRACE_SCHEMA}, source {self.source})"]
        lines.append(
            f"  span {self.makespan:9.3f} s   jobs: {self.n_jobs} "
            f"enqueued, {self.n_completed} completed, "
            f"{self.n_failed} failed")
        lines.append(
            f"  churn: {self.n_requeued} requeued "
            f"({self.n_expired} expired), {self.n_speculated} "
            f"speculated, {self.n_stale} stale result(s), "
            f"{self.n_dropped} dropped, {self.n_cache_hits} "
            f"cache hit(s)")
        pct = (100.0 * self.critical_path_seconds / self.makespan
               if self.makespan > 0 else 0.0)
        lines.append(
            f"  critical path {self.critical_path_seconds:9.3f} s "
            f"over {len(self.critical_path_jobs)} job(s) "
            f"({pct:.0f}% of span)")
        for label in self.critical_path_jobs[:top]:
            lines.append(f"    {label}")
        if len(self.critical_path_jobs) > top:
            lines.append(
                f"    ... {len(self.critical_path_jobs) - top} more")
        if self.workers:
            lines.append("  per-worker utilization")
            for name, w in sorted(self.workers.items()):
                lines.append(
                    f"    {name:<8} util {100 * w.utilization:5.1f}%  "
                    f"busy {w.busy_seconds:8.3f} s / "
                    f"{w.span_seconds:8.3f} s  "
                    f"jobs {w.n_completed}/{w.n_attempts}  "
                    f"idle {w.idle_no_work_seconds:.3f} s no-work + "
                    f"{w.idle_starved_seconds:.3f} s starved")
        if self.stragglers:
            lines.append(
                f"  stragglers (vs median {self.median_seconds:.3f} s)")
            for label, worker, seconds, ratio in self.stragglers[:top]:
                lines.append(
                    f"    {label}  {seconds:.3f} s on {worker} "
                    f"({ratio:.1f}x median)")
        else:
            lines.append("  stragglers: none")
        return "\n".join(lines)

    def render_timeline(self, *, width: int = 64) -> str:
        """ASCII per-worker lanes over the trace span.

        ``#`` marks time inside a lease, ``.`` idle time inside the
        lane's span, space outside it; one column spans
        ``makespan / width`` seconds.
        """
        if not self.workers or self.makespan <= 0:
            return "timeline: no worker activity recorded"
        scale = self.makespan / width
        lines = [f"timeline ({self.makespan:.3f} s, one column = "
                 f"{scale * 1000:.1f} ms)"]
        for name in sorted(self.workers):
            lane = [" "] * width
            spans = [a for a in self._attempts
                     if a.worker == name and a.end_t is not None]
            if spans:
                lo = min(a.start_t for a in spans)
                hi = max(a.end_t for a in spans)
                for col in range(width):
                    t = self.t0 + (col + 0.5) * scale
                    if lo <= t <= hi:
                        lane[col] = "."
            for a in spans:
                first = int((a.start_t - self.t0) / scale)
                last = int((a.end_t - self.t0) / scale)
                for col in range(max(0, first),
                                 min(width - 1, last) + 1):
                    lane[col] = "#"
            lines.append(f"  {name:<8} |{''.join(lane)}|")
        return "\n".join(lines)


def _merged_intervals(
        spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0],
                          max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def analyze_trace(trace: Trace, *,
                  straggler_factor: float = 2.0) -> TraceReport:
    """Lower a parsed trace to a :class:`TraceReport`.

    The analysis is tolerant of truncated traces (a lease with no
    terminal yet simply contributes no interval) and of engine-side
    traces that carry no worker attribution (the worker and
    critical-path sections come back empty).

    Critical path: starting from the last accepted completion, each
    hop follows the chain "this job ran on worker *w* right after the
    previous job on *w* finished, and was already enqueued by then" --
    i.e. the job was waiting on the *worker*, not on its own arrival.
    The chain's intervals are disjoint on one timeline, so its length
    is provably <= the makespan (a property test pins this).
    """
    report = TraceReport(
        source=trace.source,
        wall=float(trace.header.get("wall", 0.0)))
    events = trace.events
    if not events:
        return report
    report.t0 = min(e["t"] for e in events)
    report.t1 = max(e["t"] for e in events)

    enqueue_t: dict[tuple, float] = {}
    names: dict[tuple, Any] = {}
    open_attempts: dict[str, _Attempt] = {}
    attempts: list[_Attempt] = []
    depth_deltas: list[tuple[float, int]] = []

    def job_key(event: dict) -> tuple:
        return (event.get("batch"), event.get("index"))

    for event in events:
        kind = event["kind"]
        t = float(event["t"])
        key = job_key(event)
        if kind == "enqueue":
            report.n_jobs += 1
            enqueue_t.setdefault(key, t)
            if event.get("name") is not None:
                names[key] = event["name"]
            depth_deltas.append((t, +1))
        elif kind in ("lease", "start"):
            lease_id = str(event.get("lease", f"anon{len(attempts)}"))
            worker = event.get("worker")
            attempt = _Attempt(
                lease_id=lease_id, job=key,
                worker=str(worker) if worker is not None else None,
                start_t=t)
            open_attempts[lease_id] = attempt
            attempts.append(attempt)
            if kind == "lease":
                depth_deltas.append((t, -1))
        elif kind in LEASE_TERMINAL_KINDS:
            lease_id = str(event.get("lease", ""))
            attempt = open_attempts.pop(lease_id, None)
            if attempt is None:
                # An engine-side finish (no lease lifecycle): count
                # the outcome, but there is no interval to close.
                attempt = _Attempt(lease_id=lease_id, job=key,
                                   worker=None, start_t=t)
                attempts.append(attempt)
            attempt.end_t = t
            attempt.terminal = kind
            attempt.outcome = event.get("outcome")
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)) and seconds >= 0:
                attempt.seconds = float(seconds)
            if kind == "finish":
                if event.get("outcome") == "failed":
                    report.n_failed += 1
                else:
                    report.n_completed += 1
            else:
                if kind == "expire":
                    report.n_expired += 1
                report.n_requeued += 1
                if event.get("requeued", True):
                    depth_deltas.append((t, +1))
        elif kind == "speculate":
            report.n_speculated += 1
            depth_deltas.append((t, +1))
        elif kind == "stale_result":
            report.n_stale += 1
        elif kind == "drop":
            report.n_dropped += 1
        elif kind == "cache_hit":
            report.n_cache_hits += 1

    # -- per-worker lanes ----------------------------------------------
    closed = [a for a in attempts
              if a.worker is not None and a.end_t is not None]
    report._attempts = closed
    by_worker: dict[str, list[_Attempt]] = {}
    for attempt in closed:
        by_worker.setdefault(attempt.worker, []).append(attempt)

    depth_deltas.sort(key=lambda pair: pair[0])
    depth_times = [t for t, _ in depth_deltas]
    depth_sums: list[int] = []
    running = 0
    for _, delta in depth_deltas:
        running += delta
        depth_sums.append(running)

    def queued_at(t: float) -> int:
        pos = bisect_right(depth_times, t)
        return depth_sums[pos - 1] if pos else 0

    for name, lane in by_worker.items():
        worker = WorkerReport(name=name)
        worker.n_attempts = len(lane)
        worker.n_completed = sum(
            1 for a in lane
            if a.terminal == "finish" and a.outcome != "failed")
        merged = _merged_intervals(
            [(a.start_t, a.end_t) for a in lane])
        worker.busy_seconds = sum(end - start for start, end in merged)
        span_start = merged[0][0]
        span_end = merged[-1][1]
        worker.span_seconds = span_end - span_start
        worker.utilization = (
            min(1.0, worker.busy_seconds / worker.span_seconds)
            if worker.span_seconds > 0 else 1.0)
        previous_end = span_start
        for start, end in merged:
            gap = start - previous_end
            if gap > 0:
                midpoint = previous_end + gap / 2
                if queued_at(midpoint) > 0:
                    worker.idle_starved_seconds += gap
                else:
                    worker.idle_no_work_seconds += gap
            previous_end = end
        report.workers[name] = worker

    # -- stragglers ----------------------------------------------------
    def exec_seconds(attempt: _Attempt) -> float:
        if attempt.seconds is not None:
            return attempt.seconds
        return attempt.end_t - attempt.start_t

    completions = [a for a in closed
                   if a.terminal == "finish" and a.outcome != "failed"]
    durations = [exec_seconds(a) for a in completions]
    if durations:
        report.median_seconds = percentile(durations, 50.0)
    if len(durations) >= 3 and report.median_seconds > 0:
        for attempt in completions:
            seconds = exec_seconds(attempt)
            ratio = seconds / report.median_seconds
            if ratio > straggler_factor:
                report.stragglers.append((
                    job_label(attempt.job[0], attempt.job[1],
                              names.get(attempt.job)),
                    attempt.worker, seconds, ratio))
        report.stragglers.sort(key=lambda item: -item[2])

    # -- critical path -------------------------------------------------
    if completions:
        lanes_sorted = {
            worker: sorted(
                (a for a in lane if a.end_t is not None),
                key=lambda a: a.end_t)
            for worker, lane in by_worker.items()}
        current = max(completions, key=lambda a: a.end_t)
        chain: list[_Attempt] = []
        while current is not None and current not in chain:
            chain.append(current)
            lane = lanes_sorted[current.worker]
            predecessor = None
            for candidate in reversed(lane):
                if candidate.end_t <= current.start_t:
                    predecessor = candidate
                    break
            arrived = enqueue_t.get(current.job, report.t0)
            if predecessor is not None \
                    and predecessor.end_t >= arrived:
                current = predecessor
            else:
                current = None
        report.critical_path_seconds = sum(
            a.end_t - a.start_t for a in chain)
        report.critical_path_jobs = [
            job_label(a.job[0], a.job[1], names.get(a.job))
            for a in chain]
    return report
