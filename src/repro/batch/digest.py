"""Stable content digests for batch compilation jobs.

The result cache is *content-addressed*: a job's cache key is a SHA-256
digest of everything that determines its compilation outcome -- the
kernel (source text or lowered access pattern), the target
:class:`~repro.agu.model.AguSpec`, the
:class:`~repro.core.config.AllocatorConfig`, and the execution options
(simulation on/off, iteration count, baseline generation).  The job's
display *name* is deliberately excluded, so the same kernel compiled
under two labels shares one cache entry.

Digests must be byte-stable across process restarts and machines, so
the payload is lowered to canonical JSON (sorted keys, fixed
separators) by hand -- no reliance on ``hash()``, ``repr()`` or dict
ordering.  Bump :data:`DIGEST_VERSION` whenever the payload layout (or
the meaning of any compiled artifact) changes; old cache entries then
miss instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from operator import itemgetter
from typing import Any

#: Version tag mixed into every digest; bump to invalidate all caches.
#:
#: v2: dict keys are type-disambiguated (``{1: x}`` no longer collides
#: with ``{"1": x}``, mixed-type keys no longer raise), and set items
#: sort by a structural key instead of their JSON encoding -- both
#: change digest bytes for payloads containing such containers.
DIGEST_VERSION = 2

#: String prefix marking an encoded non-``str`` dict key (see
#: :func:`_encode_key`).  No ordinary payload string starts with NUL.
_KEY_ESCAPE = "\x00"


def _encode_key(key: Any) -> str:
    """Encode a dict key as a collision-free string.

    ``str`` keys pass through unchanged (escaped only in the
    pathological NUL-prefixed case); scalar non-``str`` keys embed
    their type name, so ``1``, ``1.5``, ``True`` and ``None`` keys
    stay distinct from each other and from their ``str()`` forms.
    Anything else is rejected loudly -- silently stringifying a tuple
    or dataclass key would invite exactly the collision class this
    function exists to rule out.
    """
    if isinstance(key, str):
        if key.startswith(_KEY_ESCAPE):
            return f"{_KEY_ESCAPE}str:{key}"
        return key
    if key is None or isinstance(key, (bool, int, float)):
        return f"{_KEY_ESCAPE}{type(key).__name__}:{key!r}"
    raise TypeError(
        f"cannot digest dict key {key!r} of type "
        f"{type(key).__name__}: digest payload keys must be str or "
        f"scalar (int, float, bool, None)")


def _sort_key(value: Any) -> tuple:
    """Total, deterministic order over *canonical* values.

    Ranks by type first (``None`` < numbers < strings < lists <
    dicts), then compares within the rank; mixed-type set contents
    therefore sort without ever comparing unlike values.  Purely
    structural -- no per-item JSON serialisation.
    """
    if value is None:
        return (0, "", 0)
    if isinstance(value, (bool, int, float)):
        return (1, type(value).__name__, value)
    if isinstance(value, str):
        return (2, "", value)
    if isinstance(value, list):
        return (3, "", tuple(_sort_key(item) for item in value))
    return (4, "", tuple((key, _sort_key(item))
                         for key, item in value.items()))


def canonical(value: Any) -> Any:
    """Lower a value to JSON-able types, deterministically.

    Handles the frozen dataclasses the job is built from (specs,
    configs, IR nodes), enums (by value), and the usual containers.
    Dict keys must be ``str`` or scalar; they are encoded via
    :func:`_encode_key` so differently-typed keys can never produce
    colliding digests.
    """
    # Exact-type scalar fast path: leaves dominate real payloads, and
    # exact matching keeps Enum / str subclasses on their slow paths.
    if value is None or type(value) in (str, int, float, bool):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: canonical(getattr(value, field.name))
                for field in dataclasses.fields(value) if field.init}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        # Encoded keys are pairwise distinct (distinct dict keys never
        # encode alike), so sorting on the key alone is total.
        items = sorted(((_encode_key(key), item)
                        for key, item in value.items()),
                       key=itemgetter(0))
        return {key: canonical(item) for key, item in items}
    if isinstance(value, (set, frozenset)):
        # Sets iterate in hash order, which varies across interpreter
        # runs; sort canonical items structurally to stay byte-stable.
        return sorted((canonical(item) for item in value), key=_sort_key)
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)):
        return value  # subclasses of the scalar types
    return str(value)


def digest_payload(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    text = json.dumps(canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def job_digest(job) -> str:
    """The content-addressed cache key of a batch job.

    A job class may define its own key payload via a ``cache_key()``
    method (e.g. :class:`~repro.batch.jobs.StatisticalGridJob`, whose
    outcome is determined by grid parameters and seeds rather than a
    kernel); plain :class:`~repro.batch.jobs.BatchJob` compilation
    units digest the kernel + spec + config + options layout below.
    """
    cache_key = getattr(job, "cache_key", None)
    if cache_key is not None:
        return digest_payload(cache_key())
    return digest_payload({
        "v": DIGEST_VERSION,
        "kernel": job.source if job.source is not None else job.pattern,
        "spec": job.spec,
        "config": job.config,
        "options": {
            "run_simulation": job.run_simulation,
            "n_iterations": job.n_iterations,
            "include_baseline": job.include_baseline,
        },
    })
