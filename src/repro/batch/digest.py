"""Stable content digests for batch compilation jobs.

The result cache is *content-addressed*: a job's cache key is a SHA-256
digest of everything that determines its compilation outcome -- the
kernel (source text or lowered access pattern), the target
:class:`~repro.agu.model.AguSpec`, the
:class:`~repro.core.config.AllocatorConfig`, and the execution options
(simulation on/off, iteration count, baseline generation).  The job's
display *name* is deliberately excluded, so the same kernel compiled
under two labels shares one cache entry.

Digests must be byte-stable across process restarts and machines, so
the payload is lowered to canonical JSON (sorted keys, fixed
separators) by hand -- no reliance on ``hash()``, ``repr()`` or dict
ordering.  Bump :data:`DIGEST_VERSION` whenever the payload layout (or
the meaning of any compiled artifact) changes; old cache entries then
miss instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

#: Version tag mixed into every digest; bump to invalidate all caches.
DIGEST_VERSION = 1


def canonical(value: Any) -> Any:
    """Lower a value to JSON-able types, deterministically.

    Handles the frozen dataclasses the job is built from (specs,
    configs, IR nodes), enums (by value), and the usual containers.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: canonical(getattr(value, field.name))
                for field in dataclasses.fields(value) if field.init}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): canonical(item)
                for key, item in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        # Sets iterate in hash order, which varies across interpreter
        # runs; sort by canonical JSON encoding to stay byte-stable.
        return sorted((canonical(item) for item in value),
                      key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def digest_payload(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    text = json.dumps(canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def job_digest(job) -> str:
    """The content-addressed cache key of a batch job.

    A job class may define its own key payload via a ``cache_key()``
    method (e.g. :class:`~repro.batch.jobs.StatisticalGridJob`, whose
    outcome is determined by grid parameters and seeds rather than a
    kernel); plain :class:`~repro.batch.jobs.BatchJob` compilation
    units digest the kernel + spec + config + options layout below.
    """
    cache_key = getattr(job, "cache_key", None)
    if cache_key is not None:
        return digest_payload(cache_key())
    return digest_payload({
        "v": DIGEST_VERSION,
        "kernel": job.source if job.source is not None else job.pattern,
        "spec": job.spec,
        "config": job.config,
        "options": {
            "run_simulation": job.run_simulation,
            "n_iterations": job.n_iterations,
            "include_baseline": job.include_baseline,
        },
    })
