"""The experiment registry: named per-point experiment definitions.

An :class:`ExperimentDefinition` is the contract that lets the batch
engine shard an experiment without knowing anything about it:

* ``enumerate_points(config)`` lowers a config to an ordered list of
  JSON-able parameter dicts -- one per independently computable,
  cacheable point.  Everything a point's outcome depends on (grid
  coordinates, *derived seeds*, allocator/solver settings) must appear
  in its params, because the params are the point's cache identity
  (see :meth:`~repro.batch.jobs.ExperimentPointJob.cache_key`).
* ``run_point(params)`` computes one point and returns its measured
  values as a JSON-able dict.  It must be a pure function of its
  params: no hidden config, no shared RNG state.
* ``assemble(config, results)`` rebuilds the experiment's summary
  dataclass from the streamed
  :class:`~repro.batch.jobs.ExperimentPointResult`s (in enumeration
  order) -- bit-identically, whatever mix of workers and cache hits
  produced them.

Definitions register themselves by id via :func:`register_experiment`
(the standard ones live in :mod:`repro.analysis.points`, imported on
first lookup, so worker processes resolve ids without any setup), and
:func:`experiment_point_jobs` turns (definition, config) into the
picklable jobs :class:`~repro.batch.engine.BatchCompiler` runs.

Adding a new experiment is: write the three functions above, wrap them
in an :class:`ExperimentDefinition`, call :func:`register_experiment`
at module import, and make sure that module is reachable from the
autoload list.  The generic runner
(:func:`repro.analysis.experiments.run_experiment`), the ``repro-agu
ablate`` CLI, worker fan-out, and every cache backend then work
unchanged.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import BatchError

#: Modules imported on first registry lookup.  This is what lets a
#: freshly spawned worker process (which only unpickles an
#: :class:`~repro.batch.jobs.ExperimentPointJob`) resolve experiment
#: ids without explicit registration calls.
AUTOLOAD_MODULES = ("repro.analysis.points",)


@dataclass(frozen=True)
class ExperimentDefinition:
    """Everything the engine and CLI need to shard one experiment."""

    #: Stable registry id (also the CLI name); enters every point
    #: digest, so renaming an experiment invalidates its cache entries.
    experiment: str
    #: One-line human description (CLI listings).
    title: str
    #: The frozen config dataclass this experiment is parameterized by.
    config_type: type
    #: The experiment's full-size default configuration.
    default_config: Callable[[], Any]
    #: A scaled-down configuration for smokes, tests, and CI.
    quick_config: Callable[[], Any]
    #: config -> ordered JSON-able params dicts, one per point.
    enumerate_points: Callable[[Any], Sequence[dict]]
    #: params -> JSON-able measured values for one point.
    run_point: Callable[[dict], dict]
    #: (config, results in enumeration order) -> summary dataclass.
    assemble: Callable[[Any, Sequence[Any]], Any]
    #: summary -> display label per point params (optional).
    point_label: Callable[[dict], str] | None = None
    #: summary -> renderable tables (optional; used by the CLI).
    render: Callable[[Any], tuple] | None = None
    #: summary -> one-line headline (optional; used by the CLI).
    headline: Callable[[Any], str] | None = None
    #: params -> advisory size estimate (bigger = slower) for
    #: size-aware cluster scheduling (optional; see
    #: :meth:`repro.batch.jobs.ExperimentPointJob.size_hint` for the
    #: generic fallback used when this is ``None``).
    size_hint: Callable[[dict], float | None] | None = None


_REGISTRY: dict[str, ExperimentDefinition] = {}
_autoloaded = False


def _autoload() -> None:
    global _autoloaded
    if _autoloaded:
        return
    for module in AUTOLOAD_MODULES:
        importlib.import_module(module)
    # Only mark success once every module imported: a failed import
    # must surface its real error again on the next lookup instead of
    # being cached as an empty registry.
    _autoloaded = True


def register_experiment(
        definition: ExperimentDefinition) -> ExperimentDefinition:
    """Add a definition to the registry.

    Re-registering an id overwrites the previous definition (latest
    wins), so re-imports -- a reloaded notebook module, or an autoload
    retry after a partially failed import -- stay harmless.
    """
    _REGISTRY[definition.experiment] = definition
    return definition


def registered_experiments() -> tuple[str, ...]:
    """All registered experiment ids, sorted."""
    _autoload()
    return tuple(sorted(_REGISTRY))


def get_experiment(experiment: str) -> ExperimentDefinition:
    """Look an experiment up by id (imports the standard set first)."""
    _autoload()
    try:
        return _REGISTRY[experiment]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise BatchError(
            f"unknown experiment {experiment!r} (registered: {known})")


def experiment_point_jobs(experiment: str | ExperimentDefinition,
                          config: Any = None) -> list:
    """The experiment's points as picklable, cacheable batch jobs.

    ``config`` defaults to the definition's full-size configuration.
    Job order is enumeration order; summaries are reassembled in it.
    """
    from repro.batch.jobs import ExperimentPointJob

    definition = experiment if isinstance(experiment,
                                          ExperimentDefinition) \
        else get_experiment(experiment)
    if config is None:
        config = definition.default_config()
    if not isinstance(config, definition.config_type):
        raise BatchError(
            f"experiment {definition.experiment!r} expects a "
            f"{definition.config_type.__name__}, got "
            f"{type(config).__name__}")
    jobs = []
    for index, params in enumerate(definition.enumerate_points(config)):
        # Catch empty-work configs up front with the offending knob
        # named, instead of dying mid-experiment on an empty mean.
        for count_key in ("patterns", "sequences"):
            if count_key in params and params[count_key] < 1:
                raise BatchError(
                    f"experiment {definition.experiment!r}: "
                    f"{count_key} per point must be >= 1, got "
                    f"{params[count_key]}")
        label = definition.point_label(params) \
            if definition.point_label is not None else f"p{index:03d}"
        jobs.append(ExperimentPointJob(
            name=f"{definition.experiment}-{label}",
            experiment=definition.experiment, index=index,
            params=params))
    if not jobs:
        raise BatchError(
            f"experiment {definition.experiment!r}: the configuration "
            f"enumerates zero points -- check the grid axes")
    return jobs
